"""Benchmark regenerating Figure 19: all-reduce (double binary tree) background traffic."""


def test_bench_fig19(run_figure):
    """Regenerate Figure 19 at bench scale and sanity-check its shape."""
    result = run_figure("fig19")
    assert all(row["avg_qct_slowdown"] > 0 for row in result.rows)
