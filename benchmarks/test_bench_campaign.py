"""Micro-benchmark for the campaign executor: serial vs parallel sweeps.

Times the same 4-run sweep (fig13 at ``bench`` scale, occamy vs dt over two
seeds) executed serially and on a 2-worker pool, so ``pytest benchmarks/
--benchmark-only`` reports the orchestration speedup (and its process-pool
overhead floor) alongside the per-figure numbers.  On a single-core host the
pooled variant measures pure orchestration overhead rather than a speedup;
with >= 2 cores it approaches the per-run maximum.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignExecutor, RunSpec

SWEEP = [
    RunSpec("fig13", scale="bench", seed=seed, params={"schemes": [scheme]})
    for seed in (0, 1)
    for scheme in ("occamy", "dt")
]


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "jobs2"])
def test_bench_campaign_sweep(benchmark, jobs):
    def sweep():
        return CampaignExecutor(jobs=jobs).run(list(SWEEP))

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(outcomes) == len(SWEEP)
    assert all(o.status == "ok" for o in outcomes)
    benchmark.extra_info["runs"] = len(outcomes)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["sim_elapsed_total"] = round(
        sum(o.elapsed for o in outcomes), 3
    )
