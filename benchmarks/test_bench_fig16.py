"""Benchmark regenerating Figure 16: impact of the alpha parameter on DT and Occamy."""


def test_bench_fig16(run_figure):
    """Regenerate Figure 16 at bench scale and sanity-check its shape."""
    result = run_figure("fig16")
    assert {row["scheme"] for row in result.rows} == {"dt", "occamy"}
