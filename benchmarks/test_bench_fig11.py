"""Benchmark regenerating Figure 11: queue-length evolution, Occamy vs DT."""


def test_bench_fig11(run_figure):
    """Regenerate Figure 11 at bench scale and sanity-check its shape."""
    result = run_figure("fig11")
    occamy_rows = result.filter(scheme="occamy")
    assert all(row["burst_drops"] == 0 for row in occamy_rows)
