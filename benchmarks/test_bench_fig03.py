"""Benchmark regenerating Figure 3: DT healthy vs anomalous queue/threshold dynamics."""


def test_bench_fig03(run_figure):
    """Regenerate Figure 3 at bench scale and sanity-check its shape."""
    result = run_figure("fig03")
    by_case = {row["case"]: row for row in result.rows}
    assert by_case["anomalous"]["q2_drops"] > by_case["healthy"]["q2_drops"]
