"""Benchmark regenerating Figure 21: round-robin vs longest-queue drop ablation."""


def test_bench_fig21(run_figure):
    """Regenerate Figure 21 at bench scale and sanity-check its shape."""
    result = run_figure("fig21")
    policies = {row["victim_policy"] for row in result.rows}
    assert policies == {"round_robin", "longest"}
