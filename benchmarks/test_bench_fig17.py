"""Benchmark regenerating Figure 17: leaf-spine web-search QCT/FCT slowdowns."""


def test_bench_fig17(run_figure):
    """Regenerate Figure 17 at bench scale and sanity-check its shape."""
    result = run_figure("fig17")
    assert all(row["avg_qct_slowdown"] >= 1.0 for row in result.rows)
