"""Benchmark regenerating Figure 14: performance isolation across DRR service queues."""


def test_bench_fig14(run_figure):
    """Regenerate Figure 14 at bench scale and sanity-check its shape."""
    result = run_figure("fig14")
    assert all(row["avg_qct_ms"] > 0 for row in result.rows)
