"""Benchmark regenerating Figure 12: burst absorption loss rate vs burst size."""


def test_bench_fig12(run_figure):
    """Regenerate Figure 12 at bench scale and sanity-check its shape."""
    result = run_figure("fig12")
    for row in result.filter(scheme="occamy"):
        dt = result.filter(scheme="dt", alpha=row["alpha"], burst_kb=row["burst_kb"])[0]
        assert row["loss_rate"] <= dt["loss_rate"] + 1e-9
