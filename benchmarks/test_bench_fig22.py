"""Benchmark regenerating Figure 22: heavy (120%) network load."""


def test_bench_fig22(run_figure):
    """Regenerate Figure 22 at bench scale and sanity-check its shape."""
    result = run_figure("fig22")
    assert all(row["avg_qct_slowdown"] > 0 for row in result.rows)
