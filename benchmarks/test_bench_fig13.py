"""Benchmark regenerating Figure 13: QCT/FCT vs query size on the software-switch testbed."""


def test_bench_fig13(run_figure):
    """Regenerate Figure 13 at bench scale and sanity-check its shape."""
    result = run_figure("fig13")
    assert {row["scheme"] for row in result.rows} >= {"occamy", "dt"}
