"""Benchmark regenerating Figure 23: buffer-size sweep (KB per port per Gbps)."""


def test_bench_fig23(run_figure):
    """Regenerate Figure 23 at bench scale and sanity-check its shape."""
    result = run_figure("fig23")
    assert all(row["avg_qct_slowdown"] > 0 for row in result.rows)
