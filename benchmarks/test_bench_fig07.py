"""Benchmark regenerating Figure 7: buffer / memory-bandwidth utilization CDFs under DT."""


def test_bench_fig07(run_figure):
    """Regenerate Figure 7 at bench scale and sanity-check its shape."""
    result = run_figure("fig07")
    assert all(0.0 <= row["p99_util"] <= 1.0 for row in result.rows)
