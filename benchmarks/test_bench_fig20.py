"""Benchmark regenerating Figure 20: higher query-traffic load sweep."""


def test_bench_fig20(run_figure):
    """Regenerate Figure 20 at bench scale and sanity-check its shape."""
    result = run_figure("fig20")
    assert all(row["avg_qct_slowdown"] > 0 for row in result.rows)
