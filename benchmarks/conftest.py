"""Shared helpers for the benchmark harness.

Each ``test_bench_*.py`` file regenerates one table or figure of the paper at
the ``bench`` scale (the smallest parameter grid) and reports the wall-clock
cost through pytest-benchmark.  The resulting rows are attached to the
benchmark's ``extra_info`` so `pytest benchmarks/ --benchmark-only` output can
be inspected for the reproduced series.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment once under pytest-benchmark and sanity-check it."""

    def _run(name: str, scale: str = "bench", seed: int = 0):
        result = benchmark.pedantic(
            lambda: run_experiment(name, scale=scale, seed=seed),
            rounds=1, iterations=1,
        )
        assert result.rows, f"{name} produced no rows"
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["table"] = result.format_table()
        return result

    return _run
