"""Benchmark regenerating Figure 15: buffer-choking mitigation under strict priority."""


def test_bench_fig15(run_figure):
    """Regenerate Figure 15 at bench scale and sanity-check its shape."""
    result = run_figure("fig15")
    assert all(row["qct_without_bg_ms"] > 0 for row in result.rows)
