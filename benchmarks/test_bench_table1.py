"""Benchmark regenerating Table 1: hardware cost of the Occamy components."""


def test_bench_table1(run_figure):
    """Regenerate Table 1 at bench scale and sanity-check its shape."""
    result = run_figure("table1")
    modules = {row["module"] for row in result.rows}
    assert {"selector", "arbiter", "executor"} <= modules
