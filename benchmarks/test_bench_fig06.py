"""Benchmark regenerating Figure 6: QCT degradation from DT anomalous behaviour."""


def test_bench_fig06(run_figure):
    """Regenerate Figure 6 at bench scale and sanity-check its shape."""
    result = run_figure("fig06")
    assert all(row["qct_with_competitor_ms"] >= 0 for row in result.rows)
