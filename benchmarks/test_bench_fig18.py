"""Benchmark regenerating Figure 18: all-to-all background traffic."""


def test_bench_fig18(run_figure):
    """Regenerate Figure 18 at bench scale and sanity-check its shape."""
    result = run_figure("fig18")
    assert all(row["avg_qct_slowdown"] > 0 for row in result.rows)
