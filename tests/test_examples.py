"""Every example spec under ``examples/`` must parse and validate.

Mirrors the CI ``examples-smoke`` job (``python -m repro.scenario validate
examples/*.json``): scenario documents load through :class:`ScenarioSpec`
plus registry validation, campaign documents through ``SweepSpec`` expansion
with every embedded scenario validated -- so example drift (renamed schemes,
removed workloads, stale fabric endpoints) fails the test suite.
"""

from pathlib import Path

import pytest

from repro.scenario.experiment import validate_spec_file

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SPECS = sorted(EXAMPLES_DIR.glob("*.json"))


def test_examples_directory_has_specs():
    assert EXAMPLE_SPECS, f"no example JSON documents under {EXAMPLES_DIR}"


@pytest.mark.parametrize("path", EXAMPLE_SPECS, ids=lambda p: p.name)
def test_example_spec_validates(path):
    kind = validate_spec_file(str(path))
    assert kind.startswith(("scenario", "campaign"))


def test_validate_cli_reports_failures(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "scheme": {"name": "nope"}, '
                   '"topology": {"kind": "single_switch"}}')
    with pytest.raises(Exception):
        validate_spec_file(str(bad))


def test_validate_resolves_fabric_endpoints_and_tiers(tmp_path):
    # Fabric contents are resolved against the actual topology: a renamed
    # switch or tier in a document fails validation, not the eventual run.
    import json

    base = {
        "name": "stale", "scheme": {"name": "dt"},
        "topology": {"kind": "fat_tree", "params": {"k": 4}},
        "fabric": {"failures": [["agg0_0", "core99"]]},
        "duration": 0.001,
    }
    doc = tmp_path / "stale.json"
    doc.write_text(json.dumps(base))
    with pytest.raises(ValueError, match="no link between"):
        validate_spec_file(str(doc))
    base["fabric"] = {"tier_rates": {"corr": 2e10}}
    doc.write_text(json.dumps(base))
    with pytest.raises(ValueError, match="unknown link tier"):
        validate_spec_file(str(doc))
