"""Tests for the Occamy scheme and its expulsion machinery."""

import pytest

from repro.core import DynamicThreshold, Occamy
from repro.core.expulsion import HeadDropSelector, RoundRobinPointer, TokenBucket
from repro.core.occamy import OccamyLongestDrop
from repro.sim import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig


def make_switch(manager, num_ports=2, buffer_bytes=500 * KB, memory_bandwidth_bps=None):
    sim = Simulator()
    config = SwitchConfig(
        num_ports=num_ports,
        port_rate_bps=10 * GBPS,
        buffer_bytes=buffer_bytes,
        memory_bandwidth_bps=memory_bandwidth_bps,
    )
    return SharedMemorySwitch(config, manager, sim), sim


class TestOccamyConfig:
    def test_defaults_match_paper(self):
        occ = Occamy()
        assert occ.alpha == 8.0
        assert occ.victim_policy == "round_robin"
        assert occ.uses_expulsion_engine

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Occamy(victim_policy="bogus")
        with pytest.raises(ValueError):
            Occamy(expulsion_bandwidth_fraction=0)
        with pytest.raises(ValueError):
            Occamy(max_drops_per_run=0)

    def test_longest_drop_variant(self):
        variant = OccamyLongestDrop()
        assert variant.victim_policy == "longest"
        assert variant.alpha == 8.0

    def test_fairness_bounds_eq3_eq4(self):
        occ = Occamy(alpha=8.0)
        # Eq. 3 with N=1, M=1: R/V <= 1 + (1+alpha)/alpha = 2.125.
        assert occ.max_fair_arrival_ratio(1, 1) == pytest.approx(1 + 9 / 8)
        # Eq. 4: when V >= R/2 any alpha works (bound <= 0).
        assert occ.min_alpha_inverse(arrival_rate=2.0, expulsion_rate=1.0,
                                     n_bursting=1, n_over_allocated=1) <= 0
        with pytest.raises(ValueError):
            occ.max_fair_arrival_ratio(1, 0)
        with pytest.raises(ValueError):
            occ.min_alpha_inverse(1.0, 0.0, 1, 1)

    def test_admission_is_dt_with_same_alpha(self):
        occ = Occamy(alpha=4.0)
        dt = DynamicThreshold(alpha=4.0)
        switch_occ, _ = make_switch(occ)
        switch_dt, _ = make_switch(dt)
        q_occ = switch_occ.queue_for(0)
        q_dt = switch_dt.queue_for(0)
        assert occ.threshold(q_occ, 0.0) == pytest.approx(dt.threshold(q_dt, 0.0))


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 10)
        with pytest.raises(ValueError):
            TokenBucket(10, 0)

    def test_tokens_accumulate_up_to_capacity(self):
        bucket = TokenBucket(rate_cells_per_sec=100, capacity_cells=50)
        assert bucket.available(0.0) == 50
        bucket.consume_forwarding(50, 0.0)
        assert bucket.available(0.0) == 0
        assert bucket.available(0.25) == pytest.approx(25)
        assert bucket.available(10.0) == 50  # capped at capacity

    def test_forwarding_can_go_negative_expulsion_cannot(self):
        bucket = TokenBucket(rate_cells_per_sec=100, capacity_cells=10)
        bucket.consume_forwarding(25, 0.0)
        assert bucket.available(0.0) < 0
        assert not bucket.try_consume_expulsion(1, 0.0)

    def test_expulsion_consumes_only_when_available(self):
        bucket = TokenBucket(rate_cells_per_sec=100, capacity_cells=10)
        assert bucket.try_consume_expulsion(8, 0.0)
        assert not bucket.try_consume_expulsion(8, 0.0)
        assert bucket.expel_cells_consumed == 8

    def test_time_until(self):
        bucket = TokenBucket(rate_cells_per_sec=100, capacity_cells=10)
        bucket.consume_forwarding(10, 0.0)
        assert bucket.time_until(5, 0.0) == pytest.approx(0.05)
        assert bucket.time_until(0, 0.0) == 0.0

    def test_negative_consumption_rejected(self):
        bucket = TokenBucket(100, 10)
        with pytest.raises(ValueError):
            bucket.consume_forwarding(-1, 0.0)
        with pytest.raises(ValueError):
            bucket.try_consume_expulsion(-1, 0.0)


class TestHeadDropSelector:
    def test_round_robin_pointer_cycles(self):
        rr = RoundRobinPointer()
        bitmap = [True, False, True, True]
        grants = [rr.grant(bitmap) for _ in range(4)]
        assert grants == [0, 2, 3, 0]

    def test_grant_none_when_empty(self):
        rr = RoundRobinPointer()
        assert rr.grant([False, False]) is None
        assert rr.grant([]) is None

    def test_selector_update_validates_length(self):
        selector = HeadDropSelector(num_queues=4)
        with pytest.raises(ValueError):
            selector.update([True, False])

    def test_selector_round_robin_over_set_bits(self):
        selector = HeadDropSelector(num_queues=4)
        selector.update([True, True, False, True])
        picks = [selector.select() for _ in range(3)]
        assert picks == [0, 1, 3]

    def test_select_longest(self):
        selector = HeadDropSelector(num_queues=4)
        selector.update([True, False, True, False])
        assert selector.select_longest([10, 99, 50, 99]) == 2

    def test_invalid_queue_count(self):
        with pytest.raises(ValueError):
            HeadDropSelector(num_queues=0)


class TestOccamyExpulsionEndToEnd:
    def test_expels_over_allocated_queue_when_burst_arrives(self):
        """The core Occamy behaviour: buffer held by q0 is reclaimed for q1."""
        occ = Occamy(alpha=8.0)
        # Model a chip with lots of spare memory bandwidth.
        switch, sim = make_switch(occ, buffer_bytes=500 * KB,
                                  memory_bandwidth_bps=64 * 10 * GBPS)
        # Saturate queue 0: arrivals at 40 Gbps onto a 10 Gbps port.
        for i in range(400):
            sim.schedule(i * 3e-7, lambda: switch.receive(Packet(size_bytes=1500), 0))
        sim.run(until=400 * 3e-7)
        q0_before = switch.queue_for(0).length_bytes
        assert q0_before > 0.5 * switch.buffer_size_bytes
        # Burst arrives at queue 1 at 100 Gbps.
        start = sim.now
        for i in range(200):
            sim.at(start + i * 1.2e-7,
                   lambda: switch.receive(Packet(size_bytes=1500), 1))
        sim.run(until=start + 300e-6)
        assert switch.stats.expelled_packets > 0
        # Occamy's guarantee: the burst is not dropped *before* reaching its
        # fair share (with 2 congested queues at alpha=8: 8B/17 each).  Drops
        # beyond the fair share are expected and correct.
        fair_share = 8 * switch.buffer_size_bytes / 17
        first_drop = switch.stats.first_drop_queue_length.get(1)
        if switch.queue_for(1).dropped_packets:
            assert first_drop is not None and first_drop >= 0.85 * fair_share

    def test_dt_without_expulsion_has_no_engine(self):
        dt = DynamicThreshold(alpha=8.0)
        switch, _ = make_switch(dt)
        assert switch.expulsion_engine is None

    def test_occamy_switch_has_engine_with_policy(self):
        occ = OccamyLongestDrop(alpha=8.0)
        switch, _ = make_switch(occ)
        assert switch.expulsion_engine is not None
        assert switch.expulsion_engine.victim_policy == "longest"
