"""Tests for the declarative scenario layer.

Covers the five registries (schemes, topologies, workloads, transport
profiles, load balancers), ScenarioSpec JSON round-trips and hash
stability, the runner on
custom scheme x topology x workload combinations, the campaign layer's
``"scenario"`` grid type, and -- via golden files captured from the original
hand-wired harnesses -- row-for-row equivalence of the ported figure
experiments.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.campaign import RunSpec, ScenarioGridSpec, SweepSpec, set_by_path
from repro.campaign.cli import main as campaign_main
from repro.core.registry import (
    make_buffer_manager,
    register_scheme,
    scheme_defaults,
    unregister_scheme,
)
from repro.core.dt import DynamicThreshold
from repro.experiments.common import ExperimentResult
from repro.scenario import (
    ScenarioRunner,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TransportSpec,
    WorkloadSpec,
    available_topologies,
    available_workloads,
    fat_tree_scenario,
    leaf_spine_scenario,
    register_topology,
    register_transport_profile,
    register_workload,
    run_scenario,
    single_switch_scenario,
    unregister_topology,
    unregister_transport_profile,
    unregister_workload,
)
from repro.scenario.scales import get_scale
from repro.workloads import reset_workload_ids

DATA_DIR = Path(__file__).parent / "data"
EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _dumbbell_burst_spec() -> ScenarioSpec:
    return ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")


# ----------------------------------------------------------------------
# Scheme registry: defaults, collision protection
# ----------------------------------------------------------------------
class TestSchemeRegistry:
    def test_paper_defaults(self):
        assert scheme_defaults("dt") == {"alpha": 1.0}
        assert scheme_defaults("abm") == {"alpha": 2.0}
        assert scheme_defaults("occamy") == {"alpha": 8.0}
        assert make_buffer_manager("occamy").alpha == 8.0
        assert make_buffer_manager("abm").alpha == 2.0

    def test_kwargs_override_defaults(self):
        assert make_buffer_manager("occamy", alpha=2.5).alpha == 2.5

    def test_collision_raises(self):
        register_scheme("collision_probe", DynamicThreshold)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheme("collision_probe", DynamicThreshold)
        finally:
            unregister_scheme("collision_probe")

    def test_override_allows_replacement(self):
        register_scheme("override_probe", DynamicThreshold,
                        defaults={"alpha": 1.0})
        try:
            register_scheme("override_probe", DynamicThreshold,
                            defaults={"alpha": 3.0}, override=True)
            assert make_buffer_manager("override_probe").alpha == 3.0
        finally:
            unregister_scheme("override_probe")

    def test_defaults_unknown_scheme(self):
        with pytest.raises(KeyError):
            scheme_defaults("not_a_scheme")


# ----------------------------------------------------------------------
# Topology / workload / transport-profile registries
# ----------------------------------------------------------------------
class TestScenarioRegistries:
    def test_topology_collision(self):
        register_topology("topo_probe", lambda factory, **kw: None)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_topology("topo_probe", lambda factory, **kw: None)
            register_topology("topo_probe", lambda factory, **kw: None,
                              override=True)
        finally:
            unregister_topology("topo_probe")

    def test_workload_collision(self):
        register_workload("wl_probe", lambda ctx, **kw: [])
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_workload("wl_probe", lambda ctx, **kw: [])
        finally:
            unregister_workload("wl_probe")

    def test_transport_profile_collision_and_validation(self):
        register_transport_profile("tp_probe", {"min_rto": 1e-3})
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_transport_profile("tp_probe", {})
        finally:
            unregister_transport_profile("tp_probe")
        with pytest.raises(TypeError):
            register_transport_profile("tp_bogus", {"not_a_field": 1})

    def test_scenario_zoo_entries_registered(self):
        # The zoo additions must be visible to sweeps and the CLI for free.
        assert "fat_tree" in available_topologies()
        for kind in ("permutation", "hotspot", "trace_replay"):
            assert kind in available_workloads()

    def test_load_balancer_registry_is_fifth(self):
        # The lb registry rides the same rails as the other four: built-in
        # entries present, collision protection, unknown-name KeyError.
        from repro.lb import (
            available_load_balancers,
            make_load_balancer,
            register_load_balancer,
            unregister_load_balancer,
        )

        assert available_load_balancers() == [
            "drill", "ecmp", "flowlet", "spray"]
        register_load_balancer("lb_probe", lambda: None)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_load_balancer("lb_probe", lambda: None)
        finally:
            unregister_load_balancer("lb_probe")
        with pytest.raises(KeyError, match="bogus"):
            make_load_balancer("bogus")

    def test_runner_validates_names(self):
        spec = _dumbbell_burst_spec()
        bad = ScenarioSpec.from_dict(
            {**spec.to_dict(), "scheme": {"name": "bogus", "kwargs": {}}})
        with pytest.raises(KeyError, match="bogus"):
            ScenarioRunner().validate(bad)
        bad = ScenarioSpec.from_dict(
            {**spec.to_dict(), "topology": {"kind": "torus", "params": {}}})
        with pytest.raises(KeyError, match="torus"):
            ScenarioRunner().validate(bad)


# ----------------------------------------------------------------------
# ScenarioSpec serialization
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_json_round_trip(self):
        spec = single_switch_scenario(
            scheme="occamy", config=get_scale("bench"), query_size_bytes=40_000,
            seed=3, alpha_overrides={0: 8.0, 1: 1.0},
            extra_flows=[dict(src=1, dst=0, size_bytes=5000, start_time=0.0,
                              priority=1)],
        )
        rebuilt = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
        assert rebuilt == spec
        assert rebuilt.config_hash() == spec.config_hash()
        # alpha override keys survive the str->int round trip
        assert rebuilt.alpha_overrides == {0: 8.0, 1: 1.0}

    def test_config_hash_pinned(self):
        # Canonical-encoding stability: if this hash moves, every stored
        # campaign artifact of a scenario sweep silently misses on resume.
        assert _dumbbell_burst_spec().config_hash() == "22be1795e8c548bf"

    def test_hash_sensitivity(self):
        spec = _dumbbell_burst_spec()
        bumped = ScenarioSpec.from_dict({**spec.to_dict(), "seed": spec.seed + 1})
        assert bumped.config_hash() != spec.config_hash()

    def test_scheme_shorthand(self):
        assert SchemeSpec.from_dict("dt") == SchemeSpec(name="dt")
        assert TopologySpec.from_dict("dumbbell") == TopologySpec(kind="dumbbell")


# ----------------------------------------------------------------------
# Runner on combinations no figure covers
# ----------------------------------------------------------------------
class TestScenarioRunner:
    def test_dumbbell_burst_runs(self):
        reset_workload_ids()
        result = run_scenario(_dumbbell_burst_spec())
        assert result.flow_stats is not None
        assert result.flow_stats.completion_fraction() > 0.9
        assert len(result.switches()) == 2  # dumbbell: left + right
        row = result.summary_row()
        assert row["scheme"] == "occamy" and row["topology"] == "dumbbell"
        assert "avg_fct_ms" in row

    def test_leaf_spine_all_reduce_scenario(self):
        reset_workload_ids()
        spec = leaf_spine_scenario(
            scheme="dt", config=get_scale("bench"), query_size_bytes=60_000,
            background_kind="all_reduce", background_flow_size=16_384,
        )
        result = run_scenario(spec)
        assert result.flow_stats.completed_queries()

    def test_fat_tree_builder_round_trips_and_runs(self):
        reset_workload_ids()
        config = replace(get_scale("bench"), fabric_duration=0.001)
        spec = fat_tree_scenario(
            scheme="occamy", config=config, query_size_bytes=60_000,
            background_kind="permutation", background_flow_size=8_192,
        )
        assert spec.topology.kind == "fat_tree"
        assert spec.topology.params["k"] == config.fattree_k
        rebuilt = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
        assert rebuilt.config_hash() == spec.config_hash()
        result = run_scenario(spec)
        assert result.flow_stats.completed_queries()
        # permutation background: one flow per host rode along
        background = [f for f in result.topology.network.injected_flows
                      if f.query_id is None]
        assert len(background) == result.topology.num_hosts

    def test_hotspot_workload_concentrates_on_receiver(self):
        reset_workload_ids()
        spec = ScenarioSpec(
            name="hotspot-single-switch",
            scheme=SchemeSpec("dt"),
            topology=TopologySpec("single_switch", {"num_hosts": 6}),
            workloads=[WorkloadSpec("hotspot", params={
                "flows_per_second": 20_000,
                "hotspot_fraction": 0.9,
                "num_hotspots": 1,
                "flow_size_bytes": 4000,
            })],
            duration=0.003,
        )
        result = run_scenario(spec)
        flows = result.topology.network.injected_flows
        assert flows
        # Host 5 (the default hotspot: the last host) receives the bulk.
        hot = sum(1 for f in flows if f.dst == 5)
        assert hot / len(flows) > 0.6

    def test_packet_and_network_workloads_do_not_mix(self):
        spec = _dumbbell_burst_spec()
        mixed = ScenarioSpec.from_dict(spec.to_dict())
        mixed.workloads.append(WorkloadSpec(
            kind="packet_burst",
            params={"burst_bytes": 3000, "rate_bps": 1e9, "port": 0}))
        with pytest.raises(ValueError, match="packet-level topology"):
            run_scenario(mixed)

    def test_pinned_id_collision_rejected(self):
        # A 'fixed' workload with pinned ids replayed after the id counter
        # was reset collides with freshly assigned ids; FlowStats would
        # silently overwrite records, so the runner must refuse loudly.
        reset_workload_ids()
        spec = ScenarioSpec(
            name="id-collision",
            scheme=SchemeSpec("dt"),
            topology=TopologySpec("single_switch", {"num_hosts": 3}),
            workloads=[
                WorkloadSpec("burst", {"burst_bytes": 4000, "receiver_index": 0}),
                WorkloadSpec("fixed", {"flows": [
                    {"src": 1, "dst": 0, "size_bytes": 4000, "start_time": 0.0,
                     "flow_id": 1}]}),
            ],
            duration=0.001,
        )
        with pytest.raises(ValueError, match="duplicate flow_id"):
            run_scenario(spec)

    def test_fixed_workload_pins_ids(self):
        reset_workload_ids()
        spec = ScenarioSpec(
            name="fixed-ids",
            scheme=SchemeSpec("dt"),
            topology=TopologySpec("single_switch", {"num_hosts": 2}),
            workloads=[WorkloadSpec("fixed", {"flows": [
                {"src": 0, "dst": 1, "size_bytes": 4000, "start_time": 0.0,
                 "flow_id": 77}]})],
            transport=TransportSpec(),
            duration=0.001,
        )
        result = run_scenario(spec)
        flows = result.topology.network.injected_flows
        assert [f.flow_id for f in flows] == [77]


# ----------------------------------------------------------------------
# Campaign integration: the "scenario" grid type
# ----------------------------------------------------------------------
class TestScenarioGrid:
    def test_set_by_path(self):
        doc = {"scheme": {"kwargs": {"alpha": 1.0}},
               "workloads": [{"params": {"load": 0.1}}]}
        set_by_path(doc, "scheme.kwargs.alpha", 4.0)
        set_by_path(doc, "workloads[0].params.load", 0.7)
        set_by_path(doc, "topology.params.num_spines", 2)
        assert doc["scheme"]["kwargs"]["alpha"] == 4.0
        assert doc["workloads"][0]["params"]["load"] == 0.7
        assert doc["topology"]["params"]["num_spines"] == 2
        with pytest.raises(ValueError, match="out of range"):
            set_by_path(doc, "workloads[3].params.load", 0.5)

    def test_expansion_and_hash_identity(self):
        sweep = SweepSpec.from_file(
            EXAMPLES_DIR / "campaign_scenario_alpha_fabric.json")
        runs = sweep.expand()
        assert len(runs) == 4  # 2 alphas x 2 spine counts
        assert all(r.experiment == "scenario" for r in runs)
        assert len({r.config_hash() for r in runs}) == 4
        alphas = sorted(r.params["scenario"]["scheme"]["kwargs"]["alpha"]
                        for r in runs)
        assert alphas == [1.0, 1.0, 8.0, 8.0]
        # Axes mutate copies, never the base document.
        grid = sweep.grids[0]
        assert grid.scenario["scheme"]["kwargs"]["alpha"] == 8.0

    def test_grid_round_trip(self):
        grid = ScenarioGridSpec(
            scenario={"name": "t", "scheme": {"name": "dt", "kwargs": {}},
                      "topology": {"kind": "dumbbell", "params": {}}},
            axes={"scheme.kwargs.alpha": [1.0, 2.0]},
            seeds=[0, 1],
        )
        sweep = SweepSpec(name="round", grids=[grid])
        rebuilt = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert [r.config_hash() for r in rebuilt.expand()] == \
               [r.config_hash() for r in sweep.expand()]

    def test_omitted_seeds_default_to_document_seed(self):
        sweep = SweepSpec.from_dict({
            "name": "seedless",
            "grids": [{
                "type": "scenario",
                "scenario": {"name": "t", "seed": 42,
                             "scheme": {"name": "dt", "kwargs": {}},
                             "topology": {"kind": "dumbbell", "params": {}}},
            }],
        })
        runs = sweep.expand()
        assert [r.seed for r in runs] == [42]
        # An explicit seeds list still overrides the embedded seed.
        sweep = SweepSpec.from_dict({
            "name": "seeded",
            "grids": [{
                "type": "scenario",
                "seeds": [1, 2],
                "scenario": {"name": "t", "seed": 42,
                             "scheme": {"name": "dt", "kwargs": {}},
                             "topology": {"kind": "dumbbell", "params": {}}},
            }],
        })
        assert sorted(r.seed for r in sweep.expand()) == [1, 2]

    def test_unknown_grid_type(self):
        with pytest.raises(ValueError, match="unknown grid type"):
            SweepSpec.from_dict({"name": "x", "grids": [{"type": "wat"}]})

    def test_label_summarizes_scenario_dict(self):
        run = RunSpec(experiment="scenario", scale="-", seed=0,
                      params={"scenario": {"name": "fabric-incast"}})
        assert "scenario=fabric-incast" in run.label()

    def test_scenario_sweep_end_to_end(self, tmp_path):
        spec_path = tmp_path / "sweep.json"
        store = tmp_path / "store"
        document = _dumbbell_burst_spec().to_dict()
        document["duration"] = 0.002
        spec_path.write_text(json.dumps({
            "name": "mini-scenario-sweep",
            "grids": [{
                "type": "scenario",
                "scenario": document,
                "axes": {"scheme.kwargs.alpha": [1.0, 8.0]},
            }],
        }))
        assert campaign_main(["run", str(spec_path), "--store", str(store)]) == 0
        assert campaign_main(["report", "--store", str(store),
                              "--metric", "avg_fct_ms", "--group-by", "alpha",
                              "--format", "csv"]) == 0
        # Resume serves both runs from the cache.
        assert campaign_main(["run", str(spec_path), "--store", str(store),
                              "--resume"]) == 0


# ----------------------------------------------------------------------
# CSV rendering
# ----------------------------------------------------------------------
class TestExperimentResultCsv:
    def test_to_csv(self):
        result = ExperimentResult("demo")
        result.add_row(scheme="dt", value=1.5)
        result.add_row(scheme="occamy", other="x,y")
        lines = result.to_csv().splitlines()
        assert lines[0] == "scheme,value,other"
        assert lines[1] == "dt,1.5,"
        assert lines[2] == 'occamy,,"x,y"'


# ----------------------------------------------------------------------
# Golden equivalence: ported figures == original hand-wired harnesses
# ----------------------------------------------------------------------
def _golden(name: str) -> dict:
    return json.loads((DATA_DIR / f"{name}_bench_golden.json").read_text())


class TestLegacyEquivalence:
    """The goldens were captured from the pre-scenario hand-wired code.

    fig06/fig13/fig17 were re-captured when the kernel gained
    content-keyed same-timestamp ordering (``Link.event_priority``, the
    sharded-engine determinism prerequisite): equal-time arrival
    arbitration changed, which shifts outcomes in synchronized-start
    scenarios.  fig03 survived the transition byte-identical.
    """

    def test_fig13_bench_row_for_row(self):
        from repro.experiments import fig13_qct_fct

        reset_workload_ids()
        result = fig13_qct_fct.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig13")

    def test_fig17_bench_row_for_row(self):
        from repro.experiments import fig17_websearch

        reset_workload_ids()
        result = fig17_websearch.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig17")

    def test_fig06_bench_row_for_row(self):
        from repro.experiments import fig06_anomalous

        reset_workload_ids()
        result = fig06_anomalous.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig06")

    def test_fig03_bench_row_for_row(self):
        from repro.experiments import fig03_dt_behavior

        reset_workload_ids()
        result = fig03_dt_behavior.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig03")


class TestHotPathEquivalence:
    """Goldens captured before the PR-3 hot-path optimizations.

    Together with :class:`TestLegacyEquivalence` these pin seven figures
    spanning every optimized layer: the packet-level switch pipeline and
    expulsion engine (fig11/fig12), the single-switch transport stack
    (fig03/fig06/fig13), and the ECMP leaf-spine fabric (fig17/fig19).  Any
    behaviour change in the simulation core shows up as a row diff here.
    (fig19 was re-captured with the content-keyed same-timestamp ordering
    -- see :class:`TestLegacyEquivalence`; fig11/fig12 survived it
    byte-identical.)
    """

    def test_fig11_bench_row_for_row(self):
        from repro.experiments import fig11_queue_evolution

        reset_workload_ids()
        result = fig11_queue_evolution.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig11")

    def test_fig12_bench_row_for_row(self):
        from repro.experiments import fig12_burst_absorption

        reset_workload_ids()
        result = fig12_burst_absorption.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig12")

    def test_fig19_bench_row_for_row(self):
        from repro.experiments import fig19_all_reduce

        reset_workload_ids()
        result = fig19_all_reduce.run(scale="bench", seed=0)
        assert result.to_dict() == _golden("fig19")
