"""Round-trip: campaign flow records -> trace file -> trace_replay scenario.

The ROADMAP's regression-workload loop: run a scenario (the shape the
campaign store executes), dump its per-flow records -- both the CSV trace
format and the ``ScenarioResult.to_dict()`` JSON document itself -- and
replay them through the ``trace_replay`` workload.  The replayed scenario
must reproduce the original flow population exactly: same flow count, same
per-flow sizes/sources/destinations/start times, same total bytes.
"""

import csv
import json

import pytest

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.scenario.spec import ScenarioSpec
from repro.scenario.runner import run_scenario
from repro.workloads import reset_workload_ids

BASE_DOC = {
    "name": "roundtrip-source",
    "scheme": {"name": "dt"},
    "topology": {"kind": "single_switch",
                 "params": {"num_hosts": 6, "ecn_threshold_bytes": 30000}},
    "workloads": [
        {"kind": "incast", "rng_label": "query",
         "params": {"query_size_bytes": 120000, "fanout": 4,
                    "arrival": "poisson", "queries_per_second": 800.0}},
        {"kind": "websearch", "rng_label": "bg",
         "params": {"load": 0.4, "load_scope": "aggregate"}},
    ],
    "duration": 0.004,
    "seed": 3,
}


@pytest.fixture(scope="module")
def source_result():
    reset_workload_ids()
    return run_scenario(ScenarioSpec.from_dict(BASE_DOC))


def _replay_spec(trace_path):
    return ScenarioSpec.from_dict({
        "name": "roundtrip-replay",
        "scheme": {"name": "dt"},
        "topology": {"kind": "single_switch",
                     "params": {"num_hosts": 6,
                                "ecn_threshold_bytes": 30000}},
        "workloads": [
            {"kind": "trace_replay", "params": {"path": str(trace_path)}}
        ],
        "duration": 0.004,
    })


def _flow_identity(flows):
    """Order-independent multiset of (src, dst, size, start) tuples."""
    return sorted((f.src, f.dst, f.size_bytes, round(f.start_time, 12))
                  for f in flows)


class TestTraceRoundTrip:
    def test_result_document_is_a_replayable_json_trace(self, source_result,
                                                        tmp_path):
        # The result document doubles as a flow trace (flows carry full
        # identity, not just timing).
        trace = tmp_path / "flows.json"
        trace.write_text(json.dumps(source_result.to_dict()))
        reset_workload_ids()
        replayed = run_scenario(_replay_spec(trace))
        original = source_result.topology.network.injected_flows
        replay = replayed.topology.network.injected_flows
        assert len(replay) == len(original)
        assert _flow_identity(replay) == _flow_identity(original)
        assert (sum(f.size_bytes for f in replay)
                == sum(f.size_bytes for f in original))

    def test_csv_trace_round_trip(self, source_result, tmp_path):
        trace = tmp_path / "flows.csv"
        records = sorted(source_result.flow_stats.flows.values(),
                         key=lambda r: r.flow_id)
        with trace.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["src", "dst", "size_bytes", "start_time",
                             "priority"])
            for record in records:
                writer.writerow([record.src, record.dst, record.size_bytes,
                                 repr(record.start_time), record.priority])
        reset_workload_ids()
        replayed = run_scenario(_replay_spec(trace))
        replay = replayed.topology.network.injected_flows
        assert len(replay) == len(records)
        assert (sum(f.size_bytes for f in replay)
                == sum(r.size_bytes for r in records))
        # Replay completes: the fabric can actually carry the trace again.
        assert replayed.flow_stats.completion_fraction() == 1.0

    def test_campaign_store_payload_round_trips(self, tmp_path):
        # The full loop through the campaign executor: run the scenario as a
        # campaign would, then replay the flow log of the in-process result.
        reset_workload_ids()
        outcome = CampaignExecutor(jobs=1).run(
            [RunSpec(experiment="scenario", scale="-", seed=3,
                     params={"scenario": BASE_DOC})])[0]
        assert outcome.ok
        reset_workload_ids()
        source = run_scenario(ScenarioSpec.from_dict(BASE_DOC))
        trace = tmp_path / "campaign_flows.json"
        trace.write_text(json.dumps(source.to_dict()))
        reset_workload_ids()
        replayed = run_scenario(_replay_spec(trace))
        # The campaign's summary row and the replayed population agree on
        # the flow count -- the store's headline metric matches the trace.
        assert outcome.result.rows[0]["flows"] >= 1
        assert (len(replayed.topology.network.injected_flows)
                == len(source.topology.network.injected_flows))
