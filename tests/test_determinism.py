"""Determinism regression tests.

Same ScenarioSpec + seed must produce byte-identical
``json.dumps(ScenarioResult.to_dict())`` output:

* across repeated runs in one process (guarded by ``reset_workload_ids`` --
  flow ids feed the ECMP path hash, so the id-counter reset from PR 1 is
  load-bearing here);
* across serial vs ``--jobs 2`` campaign execution (worker processes must
  not leak state into results);
* across two fresh interpreter processes (no hidden dependence on hash
  randomization, import order or allocator state).
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


def _spec() -> ScenarioSpec:
    # The dumbbell-burst example exercises two switches, ECMP-free routing,
    # two transports and the occamy expulsion engine in ~100 ms of wall time.
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    spec.duration = 0.002
    return spec


def _run_to_json() -> str:
    reset_workload_ids()
    return json.dumps(run_scenario(_spec()).to_dict(), sort_keys=True)


def test_same_spec_same_seed_byte_identical_in_process():
    assert _run_to_json() == _run_to_json()


def test_result_to_dict_round_trips_through_json():
    document = json.loads(_run_to_json())
    assert document["level"] == "network"
    assert document["spec"]["seed"] == _spec().seed
    assert document["flows"], "expected per-flow records"


def test_serial_vs_parallel_campaign_identical():
    document = _spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True) for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


_CHILD_SCRIPT = """
import json, sys
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.002
reset_workload_ids()
print(json.dumps(run_scenario(spec).to_dict(), sort_keys=True))
"""


def test_two_fresh_processes_byte_identical():
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_dumbbell_burst.json")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    # The fresh processes also agree with an in-process run.
    assert first.strip() == _run_to_json()
