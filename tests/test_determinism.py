"""Determinism regression tests.

Same ScenarioSpec + seed must produce byte-identical
``json.dumps(ScenarioResult.to_dict())`` output:

* across repeated runs in one process (guarded by ``reset_workload_ids`` --
  flow ids feed the ECMP path hash, so the id-counter reset from PR 1 is
  load-bearing here);
* across serial vs ``--jobs 2`` campaign execution (worker processes must
  not leak state into results);
* across two fresh interpreter processes (no hidden dependence on hash
  randomization, import order or allocator state).
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


def _spec() -> ScenarioSpec:
    # The dumbbell-burst example exercises two switches, ECMP-free routing,
    # two transports and the occamy expulsion engine in ~100 ms of wall time.
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    spec.duration = 0.002
    return spec


def _run_to_json() -> str:
    reset_workload_ids()
    return json.dumps(run_scenario(_spec()).to_dict(), sort_keys=True)


def test_same_spec_same_seed_byte_identical_in_process():
    assert _run_to_json() == _run_to_json()


def test_result_to_dict_round_trips_through_json():
    document = json.loads(_run_to_json())
    assert document["level"] == "network"
    assert document["spec"]["seed"] == _spec().seed
    assert document["flows"], "expected per-flow records"


def test_serial_vs_parallel_campaign_identical():
    document = _spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True) for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


_CHILD_SCRIPT = """
import json, sys
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.002
reset_workload_ids()
print(json.dumps(run_scenario(spec).to_dict(), sort_keys=True))
"""


def test_two_fresh_processes_byte_identical():
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_dumbbell_burst.json")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    # The fresh processes also agree with an in-process run.
    assert first.strip() == _run_to_json()


# ----------------------------------------------------------------------
# Fat-tree: multi-stage ECMP path choice must be deterministic everywhere
# ----------------------------------------------------------------------
def _fat_tree_spec() -> ScenarioSpec:
    # The fat-tree example exercises two ECMP stages (edge->agg, agg->core)
    # across 20 switches with three workload families; a shortened window
    # keeps each run around a second.
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_fattree_websearch.json")
    spec.duration = 0.0015
    return spec


def _run_fat_tree_to_json() -> str:
    """Result document plus the ECMP-resolved path of every injected flow."""
    reset_workload_ids()
    result = run_scenario(_fat_tree_spec())
    topology = result.topology
    document = result.to_dict()
    document["paths"] = {
        str(flow.flow_id): list(topology.path_of_flow(flow.src, flow.dst,
                                                      flow.flow_id))
        for flow in topology.network.injected_flows
    }
    return json.dumps(document, sort_keys=True)


def test_fat_tree_same_spec_same_seed_byte_identical_in_process():
    assert _run_fat_tree_to_json() == _run_fat_tree_to_json()


def test_fat_tree_serial_vs_parallel_campaign_identical():
    document = _fat_tree_spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True) for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


_FAT_TREE_CHILD_SCRIPT = """
import json, sys
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.0015
reset_workload_ids()
result = run_scenario(spec)
topology = result.topology
document = result.to_dict()
document["paths"] = {
    str(f.flow_id): list(topology.path_of_flow(f.src, f.dst, f.flow_id))
    for f in topology.network.injected_flows
}
print(json.dumps(document, sort_keys=True))
"""


def test_fat_tree_two_fresh_processes_byte_identical():
    """ECMP path choice (and everything downstream) across interpreters."""
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _FAT_TREE_CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_fattree_websearch.json")],
            capture_output=True, text=True, timeout=240,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    assert first.strip() == _run_fat_tree_to_json()
    # Sanity: the document really carries multi-stage (5-hop) paths.
    paths = json.loads(first)["paths"]
    assert any(len(path) == 5 for path in paths.values())
