"""Determinism regression tests.

Same ScenarioSpec + seed must produce byte-identical
``json.dumps(ScenarioResult.to_dict())`` output:

* across repeated runs in one process (guarded by ``reset_workload_ids`` --
  flow ids feed the ECMP path hash, so the id-counter reset from PR 1 is
  load-bearing here);
* across serial vs ``--jobs 2`` campaign execution (worker processes must
  not leak state into results);
* across two fresh interpreter processes (no hidden dependence on hash
  randomization, import order or allocator state).
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


def _spec() -> ScenarioSpec:
    # The dumbbell-burst example exercises two switches, ECMP-free routing,
    # two transports and the occamy expulsion engine in ~100 ms of wall time.
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    spec.duration = 0.002
    return spec


def _run_to_json() -> str:
    reset_workload_ids()
    return json.dumps(run_scenario(_spec()).to_dict(), sort_keys=True)


def test_same_spec_same_seed_byte_identical_in_process():
    assert _run_to_json() == _run_to_json()


def test_result_to_dict_round_trips_through_json():
    document = json.loads(_run_to_json())
    assert document["level"] == "network"
    assert document["spec"]["seed"] == _spec().seed
    assert document["flows"], "expected per-flow records"


def test_serial_vs_parallel_campaign_identical():
    document = _spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True) for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


_CHILD_SCRIPT = """
import json, sys
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.002
reset_workload_ids()
print(json.dumps(run_scenario(spec).to_dict(), sort_keys=True))
"""


def test_two_fresh_processes_byte_identical():
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_dumbbell_burst.json")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    # The fresh processes also agree with an in-process run.
    assert first.strip() == _run_to_json()


# ----------------------------------------------------------------------
# Fat-tree: multi-stage ECMP path choice must be deterministic everywhere
# ----------------------------------------------------------------------
def _fat_tree_spec() -> ScenarioSpec:
    # The fat-tree example exercises two ECMP stages (edge->agg, agg->core)
    # across 20 switches with three workload families; a shortened window
    # keeps each run around a second.
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_fattree_websearch.json")
    spec.duration = 0.0015
    return spec


def _run_fat_tree_to_json() -> str:
    """Result document plus the ECMP-resolved path of every injected flow."""
    reset_workload_ids()
    result = run_scenario(_fat_tree_spec())
    topology = result.topology
    document = result.to_dict()
    document["paths"] = {
        str(flow.flow_id): list(topology.path_of_flow(flow.src, flow.dst,
                                                      flow.flow_id))
        for flow in topology.network.injected_flows
    }
    return json.dumps(document, sort_keys=True)


def test_fat_tree_same_spec_same_seed_byte_identical_in_process():
    assert _run_fat_tree_to_json() == _run_fat_tree_to_json()


def test_fat_tree_serial_vs_parallel_campaign_identical():
    document = _fat_tree_spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True) for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


_FAT_TREE_CHILD_SCRIPT = """
import json, sys
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.0015
reset_workload_ids()
result = run_scenario(spec)
topology = result.topology
document = result.to_dict()
document["paths"] = {
    str(f.flow_id): list(topology.path_of_flow(f.src, f.dst, f.flow_id))
    for f in topology.network.injected_flows
}
print(json.dumps(document, sort_keys=True))
"""


def test_fat_tree_two_fresh_processes_byte_identical():
    """ECMP path choice (and everything downstream) across interpreters."""
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _FAT_TREE_CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_fattree_websearch.json")],
            capture_output=True, text=True, timeout=240,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    assert first.strip() == _run_fat_tree_to_json()
    # Sanity: the document really carries multi-stage (5-hop) paths.
    paths = json.loads(first)["paths"]
    assert any(len(path) == 5 for path in paths.values())


# ----------------------------------------------------------------------
# Telemetry: off must be byte-identical to pre-PR, on must be deterministic
# ----------------------------------------------------------------------
DATA_DIR = Path(__file__).parent / "data"

#: Frozen config hashes of the dumbbell determinism spec.  The telemetry-off
#: value predates the telemetry section (the default section is omitted from
#: the canonical document -- same trick as ``fabric``); enabling telemetry
#: must change the hash because it changes what the run records.
DUMBBELL_HASH_TELEMETRY_OFF = "50e3aac446ab5994"
DUMBBELL_HASH_TELEMETRY_ON = "1aa6a01081203371"


def _telemetry_spec() -> ScenarioSpec:
    from repro.scenario.spec import TelemetrySpec

    spec = _spec()
    spec.telemetry = TelemetrySpec(enabled=True)
    return spec


def _run_telemetry_to_json() -> str:
    reset_workload_ids()
    return json.dumps(run_scenario(_telemetry_spec()).to_dict(), sort_keys=True)


def test_telemetry_off_hash_is_frozen():
    assert _spec().config_hash() == DUMBBELL_HASH_TELEMETRY_OFF
    assert _telemetry_spec().config_hash() == DUMBBELL_HASH_TELEMETRY_ON


def test_telemetry_off_document_matches_pre_pr_golden():
    """The default (telemetry off) result document is byte-identical to the
    stored golden, modulo the always-present ``sim`` metadata and ``fct``
    context sections.  (Originally captured before the telemetry PR;
    re-captured when the kernel gained content-keyed same-timestamp
    ordering -- ``Link.event_priority`` -- which changed equal-time
    arrival arbitration.)"""
    golden = json.loads(
        (DATA_DIR / "dumbbell_result_pre_telemetry.json").read_text())
    document = json.loads(_run_to_json())
    sim = document.pop("sim")
    assert sim["events_executed"] > 0
    assert sim["final_time"] > 0
    fct = document.pop("fct")
    assert fct["bottleneck_bps"] > 0
    assert fct["base_rtt"] >= 0
    assert json.dumps(document, sort_keys=True) == json.dumps(
        golden, sort_keys=True)


def test_telemetry_is_zero_perturbation():
    """Enabling the sampling bus must not change simulation outcomes: the
    telemetry-on document minus its telemetry sections equals the
    telemetry-off document exactly (flows, stats, sim metadata and all)."""
    doc_off = json.loads(_run_to_json())
    doc_on = json.loads(_run_telemetry_to_json())
    telemetry = doc_on.pop("telemetry")
    doc_on["spec"].pop("telemetry")
    assert doc_on == doc_off
    # The bus really sampled: full default ring, no overflow, and the final
    # event-count sample agrees with the run's reported total.
    assert telemetry["ticks"] == telemetry["capacity"]
    assert telemetry["dropped_samples"] == 0
    events = telemetry["series"]["sim.events_executed"]
    assert events == sorted(events)
    assert events[-1] == doc_off["sim"]["events_executed"]


def test_telemetry_on_byte_identical_in_process():
    assert _run_telemetry_to_json() == _run_telemetry_to_json()


def test_telemetry_on_serial_vs_parallel_campaign_identical():
    document = _telemetry_spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                   for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs
    # The sampled series ride through the campaign result path.
    for doc in map(json.loads, serial_docs):
        assert "telemetry" in doc["artifacts"]
        assert doc["artifacts"]["telemetry"]["ticks"] > 0


_TELEMETRY_CHILD_SCRIPT = """
import json, sys
from repro.scenario import ScenarioSpec, run_scenario
from repro.scenario.spec import TelemetrySpec
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.002
spec.telemetry = TelemetrySpec(enabled=True)
reset_workload_ids()
print(json.dumps(run_scenario(spec).to_dict(), sort_keys=True))
"""


def test_telemetry_on_two_fresh_processes_byte_identical():
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _TELEMETRY_CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_dumbbell_burst.json")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    assert first.strip() == _run_telemetry_to_json()
