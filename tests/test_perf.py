"""Tests for the repro.perf benchmark subsystem."""

import json

import pytest

from repro.perf import (
    PerfCase,
    available_cases,
    compare_snapshots,
    get_case,
    load_snapshot,
    measure_case,
    register_case,
    run_cases,
    save_snapshot,
    unregister_case,
)
from repro.perf.cases import TIERS
from repro.perf.cli import main as perf_main
from repro.perf.compare import evaluate_gate
from repro.perf.harness import SNAPSHOT_SCHEMA_VERSION
from repro.perf.profiling import profile_case
from repro.scenario.builders import packet_burst_scenario
from repro.sim.units import GBPS, MB


def _tiny_spec():
    # A packet-level micro scenario: a short stream on a bare switch,
    # milliseconds of wall time.
    return packet_burst_scenario(
        scheme="dt",
        stream_specs=[{"rate_bps": 40 * GBPS, "port": 0, "duration": 30e-6}],
        port_rate_bps=10 * GBPS,
        buffer_bytes=1 * MB,
        duration=30e-6,
        name="perf_test_tiny",
    )


@pytest.fixture
def tiny_case():
    case = PerfCase(name="tiny_probe", tier="small", build=_tiny_spec,
                    description="test-only micro case")
    register_case(case)
    yield case
    unregister_case(case.case_id)


class TestCaseRegistry:
    def test_builtin_cases_cover_both_tiers(self):
        families = {case.name for case in available_cases()}
        assert families == {"incast_single_switch", "websearch_leaf_spine",
                            "websearch_leaf_spine_telemetry",
                            "websearch_fat_tree", "websearch_fattree_degraded",
                            "websearch_fattree_ecmp_lb",
                            "websearch_fattree_flowlet",
                            "websearch_fattree_k8",
                            "dumbbell_burst", "raw_switch_stream",
                            "incast_single_switch_pooled",
                            "websearch_leaf_spine_pooled"}
        for tier in TIERS:
            assert {c.name for c in available_cases(tier=tier)} == families

    def test_case_ids_and_lookup(self):
        case = get_case("incast_single_switch/small")
        assert case.name == "incast_single_switch" and case.tier == "small"
        with pytest.raises(KeyError, match="unknown perf case"):
            get_case("nope/small")

    def test_collision_and_override(self, tiny_case):
        with pytest.raises(ValueError, match="already registered"):
            register_case(tiny_case)
        register_case(tiny_case, override=True)  # replacement allowed

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            register_case(PerfCase(name="x", tier="huge", build=_tiny_spec))

    def test_builders_produce_valid_specs(self):
        from repro.scenario.runner import ScenarioRunner

        runner = ScenarioRunner()
        for case in available_cases():
            runner.validate(case.build())


class TestHarness:
    def test_measure_case_records_metrics(self, tiny_case):
        measurement = measure_case(tiny_case, warmup=0, repetitions=2)
        assert measurement.case_id == "tiny_probe/small"
        assert measurement.wall_time_s > 0
        assert measurement.events > 0
        assert measurement.packets > 0
        assert measurement.events_per_sec > 0
        assert measurement.packets_per_sec > 0
        assert measurement.peak_rss_kb > 0
        assert len(measurement.repetitions) == 2
        assert measurement.wall_time_s == min(measurement.repetitions)

    def test_snapshot_round_trip_and_schema_gate(self, tiny_case, tmp_path):
        snapshot = run_cases([tiny_case], warmup=0, repetitions=1)
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert "tiny_probe/small" in snapshot["cases"]
        path = tmp_path / "snap.json"
        save_snapshot(snapshot, path)
        assert load_snapshot(path)["cases"] == snapshot["cases"]
        bad = dict(snapshot, schema_version=SNAPSHOT_SCHEMA_VERSION + 1)
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema_version"):
            load_snapshot(bad_path)

    def test_repetition_counts_are_deterministic(self, tiny_case):
        a = measure_case(tiny_case, warmup=0, repetitions=1)
        b = measure_case(tiny_case, warmup=0, repetitions=1)
        assert (a.events, a.packets) == (b.events, b.packets)


def _snapshot_with(case_id, wall, events=1000, packets=500):
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "cases": {case_id: {
            "wall_time_s": wall,
            "events": events,
            "events_per_sec": events / wall,
            "packets": packets,
            "packets_per_sec": packets / wall,
            "peak_rss_kb": 1,
            "repetitions_s": [wall],
        }},
    }


class TestCompare:
    def test_delta_math(self):
        report = compare_snapshots(_snapshot_with("a/small", 2.0),
                                   _snapshot_with("a/small", 1.0))
        (delta,) = report.deltas
        assert delta.wall_change_pct == pytest.approx(-50.0)
        assert delta.speedup == pytest.approx(2.0)
        assert delta.events_match

    def test_gate_passes_and_fails(self):
        slower = compare_snapshots(_snapshot_with("a/small", 1.0),
                                   _snapshot_with("a/small", 1.4))
        assert evaluate_gate(slower, fail_above_pct=50.0) == 0
        much_slower = compare_snapshots(_snapshot_with("a/small", 1.0),
                                        _snapshot_with("a/small", 1.8))
        assert evaluate_gate(much_slower, fail_above_pct=50.0) == 1
        assert evaluate_gate(much_slower, fail_above_pct=None) == 0

    def test_disjoint_cases_reported(self):
        report = compare_snapshots(_snapshot_with("only_base/small", 1.0),
                                   _snapshot_with("only_head/small", 1.0))
        assert report.deltas == []
        assert report.only_in_baseline == ["only_base/small"]
        assert report.only_in_head == ["only_head/small"]
        assert "missing from head" in report.format_table()

    def test_event_count_mismatch_flagged(self):
        report = compare_snapshots(
            _snapshot_with("a/small", 1.0, events=1000),
            _snapshot_with("a/small", 1.0, events=1001))
        assert not report.deltas[0].events_match
        assert "event counts differ" in report.format_table()

    def test_event_count_mismatch_fails_gate_even_when_faster(self):
        # A behavior change that halves the workload looks like a speedup;
        # the gate must not be fooled by it.
        report = compare_snapshots(
            _snapshot_with("a/small", 1.0, events=1000),
            _snapshot_with("a/small", 0.5, events=500))
        assert evaluate_gate(report, fail_above_pct=50.0) == 1
        assert evaluate_gate(report, fail_above_pct=None) == 0  # report-only


class TestCli:
    def test_list(self, capsys):
        assert perf_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "incast_single_switch/small" in out

    def test_run_compare_profile_round_trip(self, tiny_case, tmp_path, capsys):
        base = tmp_path / "base.json"
        head = tmp_path / "head.json"
        assert perf_main(["run", "--cases", "tiny_probe", "--warmup", "0",
                          "--reps", "1", "--output", str(base)]) == 0
        assert perf_main(["run", "--cases", "tiny_probe/small", "--warmup", "0",
                          "--reps", "1", "--output", str(head)]) == 0
        assert perf_main(["compare", str(base), str(head),
                          "--fail-above", "10000"]) == 0
        out = capsys.readouterr().out
        assert "tiny_probe/small" in out

    def test_run_unknown_case_fails_loudly(self):
        with pytest.raises(KeyError, match="unknown case"):
            perf_main(["run", "--cases", "not_a_case"])

    def test_profile_output_contains_hotspots(self, tiny_case):
        table = profile_case(tiny_case, top=5, sort="tottime")
        assert "function calls" in table
        with pytest.raises(ValueError, match="unknown sort key"):
            profile_case(tiny_case, sort="bogus")


def test_builtin_small_tier_is_fast_enough_for_ci(tiny_case):
    # Guard the CI perf-smoke budget: the tiny probe plus registry plumbing
    # must execute in milliseconds (the real small tier is covered in CI).
    measurement = measure_case(tiny_case, warmup=0, repetitions=1)
    assert measurement.wall_time_s < 1.0
