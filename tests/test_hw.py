"""Tests for the hardware functional and cost models."""


import pytest

from repro.hw import (
    FixedPriorityArbiter,
    HeadDropExecutorModel,
    HeadDropSelectorModel,
    MaximumFinder,
    PriorityArbiterModel,
    RoundRobinArbiterCircuit,
    occamy_hardware_report,
)


class TestMaximumFinder:
    def test_finds_maximum(self):
        finder = MaximumFinder(num_inputs=8, bit_width=20)
        idx, value = finder.find_max([3, 9, 1, 9, 0, 2, 5, 7])
        assert value == 9
        assert idx == 1  # ties resolve to the lower index

    def test_input_validation(self):
        finder = MaximumFinder(num_inputs=4, bit_width=4)
        with pytest.raises(ValueError):
            finder.find_max([1, 2, 3])
        with pytest.raises(ValueError):
            finder.find_max([1, 2, 3, 16])  # does not fit in 4 bits
        with pytest.raises(ValueError):
            MaximumFinder(num_inputs=1)
        with pytest.raises(ValueError):
            MaximumFinder(num_inputs=4, bit_width=0)

    def test_tree_structure(self):
        finder = MaximumFinder(num_inputs=8)
        assert finder.tree_levels == 3
        assert finder.comparator_nodes == 7

    def test_cost_grows_with_inputs(self):
        small = MaximumFinder(num_inputs=8).cost()
        large = MaximumFinder(num_inputs=64).cost()
        assert large.gate_count > small.gate_count
        assert large.gate_delays > small.gate_delays

    def test_cannot_meet_tight_cycle_budget(self):
        """The paper's Difficulty 3: the MF latency exceeds one fast clock cycle."""
        finder = MaximumFinder(num_inputs=64, bit_width=20)
        assert not finder.meets_cycle_budget(clock_hz=2e9, gate_delay_ns=0.05)
        assert finder.meets_cycle_budget(clock_hz=1e8, gate_delay_ns=0.05)

    def test_non_power_of_two_inputs(self):
        finder = MaximumFinder(num_inputs=5, bit_width=8)
        idx, value = finder.find_max([1, 2, 10, 4, 5])
        assert (idx, value) == (2, 10)


class TestArbiters:
    def test_round_robin_cycles_through_requesters(self):
        arb = RoundRobinArbiterCircuit(4)
        grants = [arb.arbitrate([True, True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 3, 0, 1]

    def test_round_robin_skips_idle_requesters(self):
        arb = RoundRobinArbiterCircuit(4)
        assert arb.arbitrate([False, False, True, False]) == 2
        assert arb.arbitrate([True, False, False, False]) == 0

    def test_round_robin_no_request(self):
        arb = RoundRobinArbiterCircuit(3)
        assert arb.arbitrate([False, False, False]) is None

    def test_round_robin_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiterCircuit(0)
        with pytest.raises(ValueError):
            RoundRobinArbiterCircuit(2).arbitrate([True])

    def test_fixed_priority_scheduler_always_wins(self):
        arb = FixedPriorityArbiter()
        assert arb.arbitrate(True, True) == "scheduler"
        assert arb.arbitrate(True, False) == "scheduler"
        assert arb.arbitrate(False, True) == "headdrop"
        assert arb.arbitrate(False, False) is None
        assert arb.headdrop_blocked == 1
        assert arb.blocking_fraction() == pytest.approx(0.5)

    def test_blocking_fraction_empty(self):
        assert FixedPriorityArbiter().blocking_fraction() == 0.0


class TestCostModels:
    def test_selector_matches_published_calibration(self):
        cost = HeadDropSelectorModel(num_queues=64, bit_width=20).cost()
        assert cost.luts == pytest.approx(1262, rel=0.05)
        assert cost.flip_flops == pytest.approx(47, abs=5)
        assert cost.timing_ns == pytest.approx(1.49, rel=0.1)
        assert cost.area_mm2 == pytest.approx(0.023, rel=0.1)
        assert cost.power_mw == pytest.approx(0.895, rel=0.1)

    def test_arbiter_and_executor_published_values(self):
        arbiter = PriorityArbiterModel().cost()
        executor = HeadDropExecutorModel().cost()
        assert arbiter.luts == 3 and arbiter.flip_flops == 0
        assert executor.luts == 47 and executor.flip_flops == 7

    def test_selector_cost_scales_with_queues(self):
        small = HeadDropSelectorModel(num_queues=32).cost()
        big = HeadDropSelectorModel(num_queues=128).cost()
        assert big.luts > small.luts
        assert big.timing_ns > small.timing_ns

    def test_report_totals(self):
        report = occamy_hardware_report()
        assert report.total_luts == sum(c.luts for c in report.components)
        assert report.total_area_mm2 < 0.03  # "less than 0.03 mm^2"
        assert report.total_power_mw < 1.5
        assert report.critical_path_ns == pytest.approx(1.49, rel=0.1)
        assert report.cycles_per_expulsion(clock_ghz=1.0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HeadDropSelectorModel(num_queues=0)
        with pytest.raises(ValueError):
            HeadDropExecutorModel(parallel_pointer_lists=0)

    def test_rows_have_table1_columns(self):
        rows = occamy_hardware_report().rows()
        for row in rows:
            assert {"module", "luts", "flip_flops", "timing_ns",
                    "area_mm2", "power_mw"} <= set(row)
