"""Shared pytest configuration for the test suite."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: end-to-end network-simulation tests (seconds each)"
    )
