"""Integration-style tests of the shared-memory switch traffic manager."""

import pytest

from repro.core import CompleteSharing, DynamicThreshold, Occamy
from repro.sim import Simulator
from repro.sim.units import GBPS, KB, MB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig
from repro.switchsim.pipeline import DequeuePipeline, PipelineOperation


def make_switch(manager=None, **overrides):
    sim = Simulator()
    defaults = dict(num_ports=2, queues_per_port=1, port_rate_bps=10 * GBPS,
                    buffer_bytes=200 * KB)
    defaults.update(overrides)
    config = SwitchConfig(**defaults)
    switch = SharedMemorySwitch(config, manager or CompleteSharing(), sim)
    return switch, sim


class TestSwitchBasics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SwitchConfig(num_ports=0)
        with pytest.raises(ValueError):
            SwitchConfig(buffer_bytes=0)
        with pytest.raises(ValueError):
            SwitchConfig(queues_per_port=0)

    def test_queue_indexing(self):
        switch, _ = make_switch(queues_per_port=3, num_ports=2)
        assert switch.total_queue_count == 6
        q = switch.queue_for(1, 2)
        assert q.port_id == 1 and q.class_index == 2
        assert switch.queue(q.queue_id) is q

    def test_receive_validates_port(self):
        switch, _ = make_switch()
        with pytest.raises(ValueError):
            switch.receive(Packet(size_bytes=100), 99)

    def test_packet_forwarded_end_to_end(self):
        transmitted = []
        sim = Simulator()
        config = SwitchConfig(num_ports=2, port_rate_bps=10 * GBPS,
                              buffer_bytes=200 * KB)
        switch = SharedMemorySwitch(config, CompleteSharing(), sim,
                                    on_transmit=lambda p, port: transmitted.append((p, port)))
        packet = Packet(size_bytes=1500)
        assert switch.receive(packet, 1)
        sim.run()
        assert transmitted == [(packet, 1)]
        assert switch.occupancy_bytes == 0
        assert switch.stats.transmitted_packets == 1

    def test_serialization_time_matches_port_rate(self):
        switch, sim = make_switch()
        switch.receive(Packet(size_bytes=1500), 0)
        sim.run()
        assert sim.now == pytest.approx(1.2e-6)

    def test_conservation_of_packets(self):
        """arrived == transmitted + dropped + expelled + evicted + still queued."""
        switch, sim = make_switch(manager=Occamy(alpha=8.0), buffer_bytes=100 * KB)
        for i in range(300):
            sim.schedule(i * 2e-7, lambda: switch.receive(Packet(size_bytes=1500), 0))
        sim.run(until=40e-6)  # stop mid-flight, some packets still queued
        stats = switch.stats
        queued = sum(q.length_packets for q in switch.queue_views())
        in_flight = sum(1 for port in switch.ports if port.busy)
        assert stats.arrived_packets == (
            stats.transmitted_packets + stats.dropped_packets + stats.expelled_packets
            + stats.evicted_packets + queued + in_flight
        )

    def test_occupancy_never_exceeds_buffer(self):
        switch, sim = make_switch(manager=CompleteSharing(), buffer_bytes=50 * KB)
        for i in range(500):
            sim.schedule(i * 1e-7, lambda: switch.receive(Packet(size_bytes=1500), 0))
            sim.schedule(i * 1e-7, lambda: switch.receive(Packet(size_bytes=1500), 1))
        sim.run()
        assert switch.stats.max_occupancy_bytes <= switch.buffer_size_bytes

    def test_ecn_marking_above_threshold(self):
        switch, sim = make_switch(manager=CompleteSharing(),
                                  ecn_threshold_bytes=10 * 1500,
                                  buffer_bytes=1 * MB)
        marked = []
        for i in range(50):
            pkt = Packet(size_bytes=1500, ecn_capable=True)
            sim.schedule(i * 1e-8, lambda p=pkt: (switch.receive(p, 0), marked.append(p)))
        sim.run(until=1e-5)
        assert switch.stats.ecn_marked_packets > 0
        assert any(p.ecn_marked for p in marked)
        # Packets admitted while the queue was short must not be marked.
        assert not marked[0].ecn_marked

    def test_non_ecn_capable_packets_never_marked(self):
        switch, sim = make_switch(manager=CompleteSharing(),
                                  ecn_threshold_bytes=1500, buffer_bytes=1 * MB)
        for i in range(30):
            sim.schedule(i * 1e-8,
                         lambda: switch.receive(Packet(size_bytes=1500, ecn_capable=False), 0))
        sim.run(until=1e-5)
        assert switch.stats.ecn_marked_packets == 0

    def test_per_class_queueing_with_priority(self):
        switch, sim = make_switch(queues_per_port=2, scheduler="strict",
                                  manager=CompleteSharing(), buffer_bytes=1 * MB)
        order = []
        sim2 = switch.sim
        switch.on_transmit = lambda p, port: order.append(p.priority)
        # Enqueue low-priority first, then high-priority; HP must jump ahead
        # once the current transmission completes.
        for _ in range(5):
            switch.receive(Packet(size_bytes=1500, priority=1), 0)
        for _ in range(5):
            switch.receive(Packet(size_bytes=1500, priority=0), 0)
        sim2.run()
        # First packet out was already committed (LP), everything HP then LP.
        assert order[0] == 1
        assert order[1:6] == [0] * 5
        assert order[6:] == [1] * 4

    def test_head_drop_frees_buffer_without_data_read(self):
        switch, sim = make_switch(manager=CompleteSharing(), buffer_bytes=100 * KB)
        for _ in range(10):
            switch.receive(Packet(size_bytes=1500), 0)
        reads_before = switch.cell_pool.data_memory_reads
        occupancy_before = switch.occupancy_bytes
        freed = switch.head_drop(0)
        assert freed == 1500
        assert switch.occupancy_bytes < occupancy_before
        assert switch.cell_pool.data_memory_reads == reads_before
        assert switch.stats.expelled_packets == 1

    def test_head_drop_on_empty_queue_returns_none(self):
        switch, _ = make_switch()
        assert switch.head_drop(0) is None

    def test_buffer_utilization_and_threshold_helpers(self):
        switch, _ = make_switch(manager=DynamicThreshold(alpha=1.0),
                                buffer_bytes=100 * KB)
        assert switch.buffer_utilization() == 0.0
        switch.receive(Packet(size_bytes=50 * KB), 0)
        assert 0.4 < switch.buffer_utilization() < 0.6
        assert switch.threshold_of(0) == pytest.approx(switch.free_buffer_bytes)

    def test_active_queue_count_by_priority(self):
        switch, _ = make_switch(queues_per_port=2, manager=CompleteSharing(),
                                buffer_bytes=1 * MB)
        # Backlog each queue with several packets (the first packet per port
        # goes straight to the wire and does not count as queued).
        for _ in range(4):
            switch.receive(Packet(size_bytes=1500, priority=0), 0)
            switch.receive(Packet(size_bytes=1500, priority=1), 1)
        assert switch.active_queue_count() == 2
        assert switch.active_queue_count(priority=0) == 1
        assert switch.active_queue_count(priority=1) == 1


class TestDequeuePipeline:
    def test_dequeue_touches_all_memories(self):
        schedule = DequeuePipeline().dequeue(num_cells=8)
        assert schedule.accesses("pd") == 2
        assert schedule.accesses("cell_pointer") == 16
        assert schedule.accesses("cell_data") == 8

    def test_head_drop_never_reads_cell_data(self):
        schedule = DequeuePipeline().head_drop(num_cells=8)
        assert schedule.accesses("cell_data") == 0
        assert PipelineOperation.READ_CELL_DATA not in schedule.operations

    def test_parallel_pointer_lists_reduce_cycles(self):
        slow = DequeuePipeline(parallel_pointer_lists=1).head_drop(8).cycles
        fast = DequeuePipeline(parallel_pointer_lists=4).head_drop(8).cycles
        assert fast < slow

    def test_drops_per_second_positive(self):
        rate = DequeuePipeline().drops_per_second(clock_hz=1e9, cells_per_packet=8)
        assert rate > 1e7

    def test_validation(self):
        with pytest.raises(ValueError):
            DequeuePipeline(parallel_pointer_lists=0)
        with pytest.raises(ValueError):
            DequeuePipeline().dequeue(0)
        with pytest.raises(ValueError):
            DequeuePipeline().drops_per_second(0, 8)
