"""Unit tests of the telemetry subsystem.

Covers the ring buffer (wraparound keeps the newest samples), the sampling
bus (sim-time cadence, tick accounting, probe registration, serialization),
the spec section (default omission, validation), the plot helpers (document
shapes, glob selection, CSV emission) and the ANSI boards (non-TTY fallback).
"""

import io
import json

import pytest

from repro.scenario.spec import ScenarioSpec, TelemetrySpec
from repro.sim.engine import Simulator
from repro.telemetry import CampaignBoard, LiveDashboard, RingSeries, TelemetryBus
from repro.telemetry.plot import extract_telemetry, select_series, write_csv


# ----------------------------------------------------------------------
# RingSeries
# ----------------------------------------------------------------------
def test_ring_series_below_capacity():
    ring = RingSeries(4)
    assert len(ring) == 0
    assert list(ring.values()) == []
    ring.push(1.0)
    ring.push(2.0)
    assert list(ring.values()) == [1.0, 2.0]
    assert ring.last() == 2.0
    assert not ring.wrapped
    assert ring.dropped == 0


def test_ring_series_wraparound_keeps_newest():
    ring = RingSeries(4)
    for value in range(7):
        ring.push(value)
    assert len(ring) == 4
    assert list(ring.values()) == [3, 4, 5, 6]
    assert ring.wrapped
    assert ring.dropped == 3
    assert ring.last() == 6


def test_ring_series_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingSeries(0)


# ----------------------------------------------------------------------
# TelemetrySpec
# ----------------------------------------------------------------------
def test_default_telemetry_section_is_omitted_from_spec_document():
    spec = ScenarioSpec.from_dict(json.loads(json.dumps({
        "name": "t", "scheme": {"name": "dt"},
        "topology": {"kind": "single_switch", "params": {"num_hosts": 4}},
        "duration": 0.001,
    })))
    assert spec.telemetry.is_default()
    assert "telemetry" not in spec.to_dict()


def test_enabled_telemetry_section_round_trips():
    section = {"enabled": True, "interval": 1e-4, "capacity": 64,
               "per_port": False}
    spec = TelemetrySpec.from_dict(section)
    assert spec.to_dict() == section
    assert not spec.is_default()


def test_telemetry_spec_validation():
    with pytest.raises(ValueError):
        TelemetrySpec(enabled=True, interval=0.0).validate()
    with pytest.raises(ValueError):
        TelemetrySpec(enabled=True, capacity=1).validate()


# ----------------------------------------------------------------------
# TelemetryBus cadence and accounting
# ----------------------------------------------------------------------
def _bus(spec: TelemetrySpec, horizon: float = 1.0):
    sim = Simulator()
    return sim, TelemetryBus(spec, sim, horizon=horizon)


def test_bus_requires_enabled_spec():
    with pytest.raises(ValueError):
        _bus(TelemetrySpec())


def test_bus_rejects_capacity_below_two():
    # The bus guards capacity itself -- not only via TelemetrySpec.validate()
    # -- so a duck-typed spec whose validate() is lax cannot reach the
    # divide-by-(capacity - 1) default cadence.  Same message as the spec.
    class LaxSpec:
        enabled = True
        capacity = 1
        interval = None
        per_port = False

        def validate(self):
            pass

    with pytest.raises(ValueError,
                       match=r"telemetry\.capacity must be >= 2, got 1"):
        TelemetryBus(LaxSpec(), Simulator(), horizon=1.0)


def test_default_cadence_fills_the_ring_exactly_once():
    # interval = horizon / (capacity - 1): one slot per tick, no wrap.
    sim, bus = _bus(TelemetrySpec(enabled=True, capacity=8), horizon=1.0)
    bus.start()
    sim.run(until=1.0)
    assert bus.ticks == 8
    assert list(bus.time.values()) == pytest.approx(
        [k / 7 for k in range(8)])
    assert bus.time.dropped == 0
    assert sim.now == 1.0


def test_explicit_short_interval_wraps_and_keeps_newest():
    sim, bus = _bus(TelemetrySpec(enabled=True, interval=0.05, capacity=4),
                    horizon=1.0)
    bus.start()
    sim.run(until=1.0)
    assert bus.ticks == 21  # t = 0.0, 0.05, ..., 1.0
    assert bus.time.dropped == 17
    assert list(bus.time.values()) == pytest.approx([0.85, 0.9, 0.95, 1.0])


def test_sampler_ticks_are_subtracted_from_event_counts():
    sim, bus = _bus(TelemetrySpec(enabled=True, capacity=5), horizon=1.0)
    bus.add_probe("sim.events_executed", bus.events_now)
    fired = []
    for k in range(10):
        sim.schedule(0.05 + k * 0.1, lambda: fired.append(sim.now))
    bus.start()
    sim.run(until=1.0)
    assert len(fired) == 10
    # Raw count includes the 5 sampler ticks; the series must not.
    assert sim.events_executed == 15
    events = list(bus.series["sim.events_executed"].values())
    assert events[-1] == 10  # the final sample saw all 10 traffic events
    assert events == sorted(events)
    # Post-run accounting (the runner's formula): subtract every tick.
    assert sim.events_executed - bus.ticks == 10


def test_probe_names_must_be_unique_and_bus_starts_once():
    sim, bus = _bus(TelemetrySpec(enabled=True), horizon=1.0)
    bus.add_probe("x", lambda: 0)
    with pytest.raises(ValueError, match="duplicate"):
        bus.add_probe("x", lambda: 0)
    bus.start()
    with pytest.raises(RuntimeError, match="already started"):
        bus.start()


def test_on_sample_hook_fires_every_tick():
    sim, bus = _bus(TelemetrySpec(enabled=True, capacity=6), horizon=1.0)
    seen = []
    bus.on_sample = lambda b: seen.append(b.ticks)
    bus.start()
    sim.run(until=1.0)
    assert seen == [1, 2, 3, 4, 5, 6]


def test_bus_to_dict_is_deterministic_and_excludes_wall_clock():
    def one_run():
        sim, bus = _bus(TelemetrySpec(enabled=True, capacity=4), horizon=1.0)
        counter = {"n": 0}

        def read():
            counter["n"] += 1
            return counter["n"]

        bus.add_probe("counter", read)
        bus.start()
        sim.run(until=1.0)
        return bus.to_dict()

    first, second = one_run(), one_run()
    assert first == second
    assert json.dumps(first, sort_keys=True) == json.dumps(second,
                                                           sort_keys=True)
    assert "wall" not in json.dumps(first)
    assert first["series"]["counter"] == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# Live event counting on the engine
# ----------------------------------------------------------------------
def test_live_event_counting_swap_and_restore():
    sim = Simulator()
    observed = []
    sim.set_live_event_counting(True)
    assert "run" in sim.__dict__
    sim.schedule(0.1, lambda: observed.append(sim.events_executed))
    sim.schedule(0.2, lambda: observed.append(sim.events_executed))
    executed = sim.run()
    assert executed == 2
    # Mid-run reads see the live counter: the first callback runs before
    # its own event is counted, the second sees the first counted.
    assert observed == [0, 1]
    assert sim.events_executed == 2
    sim.set_live_event_counting(False)
    assert "run" not in sim.__dict__


def test_default_run_loop_counts_only_at_the_end():
    sim = Simulator()
    observed = []
    sim.schedule(0.1, lambda: observed.append(sim.events_executed))
    sim.schedule(0.2, lambda: observed.append(sim.events_executed))
    assert sim.run() == 2
    assert observed == [0, 0]  # stale mid-run, folded in afterwards
    assert sim.events_executed == 2


# ----------------------------------------------------------------------
# Plot helpers
# ----------------------------------------------------------------------
_SECTION = {
    "interval": 0.1, "capacity": 4, "ticks": 3, "dropped_samples": 0,
    "time": [0.0, 0.1, 0.2],
    "series": {"switch.s0.occupancy_bytes": [0, 10, 5],
               "sim.events_executed": [0, 2, 4]},
}


def test_extract_telemetry_handles_all_document_shapes():
    assert extract_telemetry(_SECTION)["ticks"] == 3
    assert extract_telemetry({"telemetry": _SECTION})["ticks"] == 3
    assert extract_telemetry(
        {"artifacts": {"telemetry": _SECTION}})["ticks"] == 3
    assert extract_telemetry(
        {"result": {"artifacts": {"telemetry": _SECTION}}})["ticks"] == 3
    with pytest.raises(ValueError, match="no telemetry section"):
        extract_telemetry({"flows": []})


def test_select_series_glob_and_errors():
    assert select_series(_SECTION) == ["sim.events_executed",
                                       "switch.s0.occupancy_bytes"]
    assert select_series(_SECTION, ["switch.*"]) == [
        "switch.s0.occupancy_bytes"]
    with pytest.raises(ValueError, match="no series match"):
        select_series(_SECTION, ["nope.*"])


def test_write_csv_emits_time_plus_selected_columns():
    out = io.StringIO()
    names = write_csv(_SECTION, out, ["sim.*"])
    assert names == ["sim.events_executed"]
    assert out.getvalue().splitlines() == [
        "time,sim.events_executed", "0.0,0", "0.1,2", "0.2,4"]


# ----------------------------------------------------------------------
# Boards (non-TTY fallback; full rendering is exercised via --live smoke)
# ----------------------------------------------------------------------
def test_live_dashboard_renders_through_a_real_bus():
    sim, bus = _bus(TelemetrySpec(enabled=True, capacity=4), horizon=1.0)
    stream = io.StringIO()
    board = LiveDashboard("unit", stream=stream, use_ansi=False,
                          min_refresh_s=0.0)
    bus.on_sample = board
    bus.start()
    sim.run(until=1.0)
    board.finish(bus)
    text = stream.getvalue()
    assert "[live] unit" in text
    assert "[done] unit" in text
    assert "samples 4" in text
    assert "\x1b[" not in text  # non-TTY stays plain


def test_campaign_board_tracks_outcomes():
    class Spec:
        experiment = "fig11"

    class Outcome:
        spec = Spec()
        status = "ok"
        ok = True
        elapsed = 0.5

    stream = io.StringIO()
    board = CampaignBoard([Spec(), Spec()], stream=stream, use_ansi=False,
                          min_refresh_s=0.0)
    board(1, 2, Outcome())
    cached = Outcome()
    cached.status = "cached"
    board(2, 2, cached)
    board.finish()
    text = stream.getvalue()
    assert "2/2 runs" in text
    assert "fig11" in text
    assert "cached 1" in text
