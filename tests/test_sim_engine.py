"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        order = [q.pop().time for _ in range(3)]
        assert order == [1.0, 2.0, 3.0]

    def test_ties_broken_fifo(self):
        q = EventQueue()
        first = q.push(1.0, lambda: "first")
        second = q.push(1.0, lambda: "second")
        assert q.pop() is first
        assert q.pop() is second

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        keep = q.push(2.0, lambda: None)
        ev.cancel()
        assert q.pop() is keep

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 5.0

    def test_empty_pop_returns_none(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda: None)
        assert q and len(q) == 1
        q.clear()
        assert len(q) == 0


class TestSimulator:
    def test_callbacks_run_in_order_and_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        executed = sim.run()
        assert executed == 2
        assert times == [1.0, 2.0]
        assert sim.now == 2.0

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(0.5, lambda: None)

    def test_stop_aborts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_cap(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1.0, lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        sim.cancel(None)  # must not raise

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
