"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        order = [q.pop().time for _ in range(3)]
        assert order == [1.0, 2.0, 3.0]

    def test_ties_broken_fifo(self):
        q = EventQueue()
        first = q.push(1.0, lambda: "first")
        second = q.push(1.0, lambda: "second")
        assert q.pop() is first
        assert q.pop() is second

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        keep = q.push(2.0, lambda: None)
        ev.cancel()
        assert q.pop() is keep

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 5.0

    def test_empty_pop_returns_none(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda: None)
        assert q and len(q) == 1
        q.clear()
        assert len(q) == 0


class TestSimulator:
    def test_callbacks_run_in_order_and_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        executed = sim.run()
        assert executed == 2
        assert times == [1.0, 2.0]
        assert sim.now == 2.0

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(0.5, lambda: None)

    def test_stop_aborts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_cap(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1.0, lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        sim.cancel(None)  # must not raise

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0


class TestSchedulingErrors:
    """Unified error formatting plus NaN rejection (would corrupt the heap)."""

    def test_schedule_and_at_error_messages_are_consistent(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match=r"cannot schedule into the past: "
                                             r"delay=-1.0 \(now=1.0\)"):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError, match=r"cannot schedule into the past: "
                                             r"time=0.5 \(now=1.0\)"):
            sim.at(0.5, lambda: None)

    def test_event_queue_rejects_nan_timestamp(self):
        q = EventQueue()
        with pytest.raises(ValueError, match="NaN"):
            q.push(float("nan"), lambda: None)
        with pytest.raises(ValueError, match="NaN"):
            q.push_callback(float("nan"), lambda: None)
        assert len(q) == 0  # nothing was half-inserted

    def test_simulator_rejects_nan_everywhere(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="NaN"):
            sim.schedule(float("nan"), lambda: None)
        with pytest.raises(ValueError, match="NaN"):
            sim.schedule_fast(float("nan"), lambda: None)
        with pytest.raises(ValueError, match="NaN"):
            sim.at(float("nan"), lambda: None)
        assert sim.pending_events == 0

    def test_nan_does_not_corrupt_ordering_of_existing_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1.0))
        with pytest.raises(ValueError):
            sim.schedule(float("nan"), lambda: fired.append(float("nan")))
        sim.schedule(2.0, lambda: fired.append(2.0))
        sim.run()
        assert fired == [1.0, 2.0]


class TestFastScheduling:
    def test_schedule_fast_interleaves_with_events_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("event"))
        sim.schedule_fast(1.0, lambda: order.append("fast"))
        sim.schedule_fast(0.5, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "event", "fast"]

    def test_schedule_fast_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="cannot schedule into the past"):
            sim.schedule_fast(-0.1, lambda: None)

    def test_pop_wraps_bare_callbacks_as_events(self):
        q = EventQueue()
        q.push_callback(1.0, lambda: "x")
        event = q.pop()
        assert event is not None
        assert event.time == 1.0
        assert event.callback() == "x"

    def test_run_until_preserves_deferred_fast_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == [] and sim.now == 5.0
        sim.run()
        assert fired == ["late"] and sim.now == 10.0

    def test_events_executed_accumulates(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5
        sim.schedule(6.0, lambda: None)
        sim.run()
        assert sim.events_executed == 6
