"""Pluggable simulation kernels: seam, pools, selection and determinism.

Covers the kernel registry, the ``Simulator.reset`` / NaN-scheduling
bugfixes, the generation-parity pool battery (random interleavings must
never alias a live object), the pooled-kernel determinism battery (in
process, across campaign workers, across fresh interpreters), the
heap-vs-pooled differential gate and the spec/CLI plumbing that selects
kernels.
"""

import json
import random
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

# Imported before anything that pulls in repro.netsim directly: the
# scenario package settles the netsim<->scenario import cycle.
from repro.scenario import EngineSpec, ScenarioSpec, run_scenario
from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.sim import Simulator
from repro.sim.kernel import (
    HeapKernel,
    PooledKernel,
    SimKernel,
    available_kernels,
    make_kernel,
    register_kernel,
)
from repro.switchsim.packet import Packet
from repro.switchsim.pool import DescriptorPool, PacketPool
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_builtin_kernels():
    assert {"heap", "pooled"} <= set(available_kernels())


def test_make_kernel_returns_fresh_instances():
    first = make_kernel("pooled")
    second = make_kernel("pooled")
    assert isinstance(first, PooledKernel)
    assert first is not second
    assert first.packet_pool is not second.packet_pool


def test_make_kernel_unknown_name_lists_available():
    with pytest.raises(KeyError, match="unknown kernel 'vectorized'"):
        make_kernel("vectorized")


def test_register_kernel_collision_raises_without_override():
    with pytest.raises(ValueError, match="already registered"):
        register_kernel("heap", HeapKernel)
    register_kernel("heap", HeapKernel, override=True)  # restores same class


def test_default_simulator_uses_heap_kernel():
    sim = Simulator()
    assert isinstance(sim.kernel, HeapKernel)
    assert sim.kernel.packet_pool is None
    assert sim.kernel.descriptor_pool is None


# ----------------------------------------------------------------------
# Satellite: Simulator.reset() clears the counter and the counting swap
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", ["heap", "pooled"])
def test_reset_zeroes_events_and_undoes_live_counting(kernel_name):
    sim = Simulator(kernel=make_kernel(kernel_name))
    sim.set_live_event_counting(True)
    for i in range(5):
        sim.schedule(i * 0.1, lambda: None)
    assert sim.run() == 5
    assert sim.events_executed == 5
    assert "run" in sim.__dict__  # the counting loop is swapped in

    sim.reset()
    assert sim.events_executed == 0
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert "run" not in sim.__dict__  # back to the class-level loop

    # A reset simulator counts from scratch with the default loop.
    sim.schedule(0.1, lambda: None)
    assert sim.run() == 1
    assert sim.events_executed == 1


# ----------------------------------------------------------------------
# Satellite: NaN is rejected at the scheduling API boundary
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_name", ["heap", "pooled"])
def test_schedule_rejects_nan(kernel_name):
    sim = Simulator(kernel=make_kernel(kernel_name))
    nan = float("nan")
    with pytest.raises(ValueError, match="cannot schedule an event at time NaN"):
        sim.schedule(nan, lambda: None)
    with pytest.raises(ValueError, match="cannot schedule an event at time NaN"):
        sim.at(nan, lambda: None)
    with pytest.raises(ValueError, match="cannot schedule an event at time NaN"):
        sim.schedule_fast(nan, lambda: None)
    # Nothing reached the heap: a NaN key would poison every later sift.
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# Pooled kernel: event recycling
# ----------------------------------------------------------------------
def test_pooled_kernel_recycles_fired_events():
    kernel = PooledKernel()
    sim = Simulator(kernel=kernel)
    fired = []
    for i in range(4):
        sim.schedule(i * 0.1, lambda i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert len(kernel._free_events) == 4
    # The next schedules draw from the free list instead of allocating.
    recycled = kernel._free_events[-1]
    event = sim.schedule(0.5, lambda: fired.append(99))
    assert event is recycled
    sim.run()
    assert fired[-1] == 99


def test_pooled_kernel_recycles_cancelled_events():
    kernel = PooledKernel()
    sim = Simulator(kernel=kernel)
    event = sim.schedule(0.1, lambda: None)
    event.cancel()
    sim.schedule(0.2, lambda: None)
    assert sim.run() == 1  # the cancelled event never fires
    assert len(kernel._free_events) == 2


def test_pooled_kernel_ordering_matches_heap_kernel():
    """Same schedule pattern, same execution order, tie-breaks included."""
    def drive(sim):
        order = []
        # Equal timestamps must run FIFO; cancellations must be skipped.
        sim.schedule(0.2, lambda: order.append("a"))
        sim.schedule(0.1, lambda: order.append("b"))
        doomed = sim.schedule(0.1, lambda: order.append("never"))
        sim.schedule(0.1, lambda: order.append("c"))
        doomed.cancel()
        sim.schedule_fast(0.3, lambda: order.append("d"))
        sim.run()
        return order

    assert (drive(Simulator(kernel=HeapKernel()))
            == drive(Simulator(kernel=PooledKernel()))
            == ["b", "c", "a", "d"])


# ----------------------------------------------------------------------
# Pool aliasing battery: generation parity under random interleavings
# ----------------------------------------------------------------------
def test_packet_pool_double_release_raises():
    pool = PacketPool()
    packet = pool.acquire(size_bytes=100)
    pool.release(packet)
    with pytest.raises(RuntimeError, match="double release"):
        pool.release(packet)


def test_descriptor_pool_double_release_raises_and_clears_packet():
    packets = PacketPool()
    descriptors = DescriptorPool()
    packet = packets.acquire(size_bytes=100)
    descriptor = descriptors.acquire(packet, [1, 2], enqueue_time=0.5)
    descriptors.release(descriptor, packet_pool=packets)
    assert descriptor.packet is None  # stale reads fail loudly
    assert packet.generation & 1  # the packet went back too
    with pytest.raises(RuntimeError, match="double release"):
        descriptors.release(descriptor)


def test_packet_pool_acquire_reinitializes_everything():
    pool = PacketPool()
    first = pool.acquire(size_bytes=100, flow_id=7, ecn_marked=True)
    first.metadata["sticky"] = True
    first_id = first.packet_id
    pool.release(first)
    second = pool.acquire(size_bytes=200)
    assert second is first  # recycled, not reallocated
    assert second.size_bytes == 200
    assert second.flow_id == -1
    assert second.ecn_marked is False
    assert second.metadata == {}
    assert second.packet_id != first_id
    assert pool.reused == 1


def test_packet_pool_acquire_validates_size():
    pool = PacketPool()
    pool.release(pool.acquire(size_bytes=100))
    with pytest.raises(ValueError, match="packet size must be positive"):
        pool.acquire(size_bytes=0)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_pool_generation_parity_under_random_interleavings(seed):
    """Random acquire/release traffic never aliases a live handle.

    The invariant under test: at every step, every live packet has an even
    generation, every freed packet an odd one, and no two live packets are
    the same object.  A pool bug (double handout, missed parity bump)
    breaks one of these within a few hundred operations.
    """
    rng = random.Random(seed)
    packets = PacketPool()
    descriptors = DescriptorPool()
    live_packets = []
    live_descriptors = []
    for step in range(600):
        op = rng.random()
        if op < 0.35:
            live_packets.append(packets.acquire(size_bytes=rng.randint(1, 1500),
                                                flow_id=step))
        elif op < 0.55 and live_packets:
            packets.release(live_packets.pop(rng.randrange(len(live_packets))))
        elif op < 0.75 and live_packets:
            packet = live_packets.pop(rng.randrange(len(live_packets)))
            live_descriptors.append(
                descriptors.acquire(packet, [step], enqueue_time=step * 1e-6))
        elif live_descriptors:
            descriptor = live_descriptors.pop(
                rng.randrange(len(live_descriptors)))
            descriptors.release(descriptor, packet_pool=packets)

        assert all(not p.generation & 1 for p in live_packets)
        assert all(not d.generation & 1 for d in live_descriptors)
        assert len({id(p) for p in live_packets}) == len(live_packets)
        handles = ([d.packet for d in live_descriptors] + live_packets)
        assert len({id(p) for p in handles}) == len(handles)
    assert packets.reused + descriptors.reused > 0, "battery never recycled"


# ----------------------------------------------------------------------
# EngineSpec: hashing, parsing, validation
# ----------------------------------------------------------------------
def _spec() -> ScenarioSpec:
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    spec.duration = 0.002
    return spec


def test_engine_spec_default_is_omitted_from_canonical_document():
    spec = _spec()
    assert "engine" not in spec.to_dict()
    explicit = replace(spec, engine=EngineSpec(kernel="heap"))
    assert explicit.config_hash() == spec.config_hash()


def test_engine_spec_pooled_changes_the_hash():
    spec = _spec()
    pooled = replace(spec, engine=EngineSpec(kernel="pooled"))
    assert pooled.to_dict()["engine"] == {"kernel": "pooled"}
    assert pooled.config_hash() != spec.config_hash()


def test_engine_spec_from_dict_accepts_shorthand_and_mapping():
    assert EngineSpec.from_dict(None) == EngineSpec()
    assert EngineSpec.from_dict("pooled") == EngineSpec(kernel="pooled")
    assert EngineSpec.from_dict({"kernel": "pooled"}) == EngineSpec(
        kernel="pooled")
    document = _spec().to_dict()
    document["engine"] = "pooled"
    assert ScenarioSpec.from_dict(document).engine.kernel == "pooled"


def test_engine_spec_validate_rejects_unknown_kernel():
    with pytest.raises(ValueError, match="unknown engine.kernel 'warp'"):
        EngineSpec(kernel="warp").validate()


def test_runner_validate_covers_engine_section():
    from repro.scenario.runner import ScenarioRunner

    spec = replace(_spec(), engine=EngineSpec(kernel="warp"))
    with pytest.raises(ValueError, match="unknown engine.kernel"):
        ScenarioRunner().validate(spec)


# ----------------------------------------------------------------------
# Pooled end-to-end: the run actually recycles, results stay identical
# ----------------------------------------------------------------------
def _pooled_spec() -> ScenarioSpec:
    return replace(_spec(), engine=EngineSpec(kernel="pooled"))


def _run_to_json(spec: ScenarioSpec, strip_engine: bool = False) -> str:
    reset_workload_ids()
    document = run_scenario(spec).to_dict()
    if strip_engine:
        document["spec"].pop("engine", None)
    return json.dumps(document, sort_keys=True)


def test_pooled_run_recycles_packets_and_descriptors():
    reset_workload_ids()
    result = run_scenario(_pooled_spec())
    kernel = result.topology.sim.kernel
    assert isinstance(kernel, PooledKernel)
    assert kernel.packet_pool.reused > 0, "packet pool never recycled"
    assert kernel.descriptor_pool.reused > 0, "descriptor pool never recycled"
    assert kernel._free_events, "event free list never used"


def test_pooled_result_byte_identical_to_heap():
    heap = _run_to_json(_spec())
    pooled = _run_to_json(_pooled_spec(), strip_engine=True)
    assert pooled == heap


def test_pooled_byte_identical_in_process():
    assert _run_to_json(_pooled_spec()) == _run_to_json(_pooled_spec())


def test_pooled_serial_vs_parallel_campaign_identical():
    document = _pooled_spec().to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                   for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


_POOLED_CHILD_SCRIPT = """
import json, sys
from dataclasses import replace
from repro.scenario import EngineSpec, ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.002
spec = replace(spec, engine=EngineSpec(kernel="pooled"))
reset_workload_ids()
print(json.dumps(run_scenario(spec).to_dict(), sort_keys=True))
"""


def test_pooled_two_fresh_processes_byte_identical():
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _POOLED_CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_dumbbell_burst.json")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    assert first.strip() == _run_to_json(_pooled_spec())


# ----------------------------------------------------------------------
# Differential gate and CLI plumbing
# ----------------------------------------------------------------------
def test_differential_small_case_is_identical():
    from repro.perf.cases import get_case
    from repro.perf.differential import run_differential

    outcome = run_differential(get_case("raw_switch_stream/small"),
                               kernel="pooled")
    assert outcome.identical, outcome.diverging_keys
    assert outcome.events > 0
    assert outcome.to_dict()["kernel"] == "pooled"


def test_perf_cli_differential_smoke(capsys):
    from repro.perf.cli import main

    assert main(["differential", "raw_switch_stream/small"]) == 0
    out = capsys.readouterr().out
    assert "identical" in out
    assert "OK" in out


def test_perf_case_with_kernel_keeps_case_id():
    from repro.perf.cases import case_with_kernel, get_case

    case = get_case("incast_single_switch/small")
    pooled = case_with_kernel(case, "pooled")
    assert pooled.case_id == case.case_id
    assert pooled.build().engine.kernel == "pooled"
    assert case.build().engine.is_default()  # the original is untouched


def test_perf_registry_has_pooled_twins():
    from repro.perf.cases import get_case

    twin = get_case("incast_single_switch_pooled/medium")
    assert twin.build().engine.kernel == "pooled"
    assert get_case("websearch_leaf_spine_pooled/medium")


def test_scenario_cli_kernel_override(capsys):
    from repro.scenario.experiment import main

    spec_path = str(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    assert main(["run", spec_path, "--kernel", "pooled", "--json"]) == 0
    pooled = json.loads(capsys.readouterr().out)
    assert main(["run", spec_path, "--json"]) == 0
    heap = json.loads(capsys.readouterr().out)
    # Same simulation outcome on either kernel, straight from the CLI.
    assert pooled["rows"] == heap["rows"]
    assert pooled["artifacts"]["flows"] == heap["artifacts"]["flows"]


def test_campaign_kernel_axis_sweeps_and_agrees():
    """The examples' engine.kernel axis: distinct hashes, identical rows."""
    from repro.campaign.spec import SweepSpec

    with open(EXAMPLES_DIR / "campaign_kernel_sweep.json") as handle:
        sweep = SweepSpec.from_dict(json.load(handle))
    runs = [r for r in sweep.expand() if r.seed == 0]
    kernels = {r.params["scenario"].get("engine", {}).get("kernel", "heap")
               for r in runs}
    assert kernels == {"heap", "pooled"}
    assert len({r.config_hash() for r in runs}) == 2
    outcomes = CampaignExecutor(jobs=1).run(runs)
    assert all(o.ok for o in outcomes)
    rows = [json.dumps(o.result.to_dict()["rows"], sort_keys=True)
            for o in outcomes]
    assert rows[0] == rows[1]


# ----------------------------------------------------------------------
# Custom kernels remain pluggable end to end
# ----------------------------------------------------------------------
def test_custom_registered_kernel_is_selectable_through_the_spec():
    class TracingKernel(HeapKernel):
        name = "tracing-test"

        def __init__(self):
            super().__init__()
            self.loops = 0

        def run_loop(self, sim, until=None, max_events=None):
            self.loops += 1
            return super().run_loop(sim, until, max_events)

    register_kernel("tracing-test", TracingKernel, override=True)
    try:
        spec = replace(_spec(), engine=EngineSpec(kernel="tracing-test"))
        spec.engine.validate()  # registered, so it validates
        reset_workload_ids()
        result = run_scenario(spec)
        kernel = result.topology.sim.kernel
        assert isinstance(kernel, TracingKernel)
        assert kernel.loops > 0
    finally:
        from repro.sim.kernel import _KERNELS

        _KERNELS.pop("tracing-test", None)
