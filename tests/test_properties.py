"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import ABM, DynamicThreshold, Occamy, Pushout
from repro.core.expulsion import RoundRobinPointer, TokenBucket
from repro.hw import MaximumFinder, RoundRobinArbiterCircuit
from repro.metrics.percentiles import cdf_points, mean, percentile
from repro.sim import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig
from repro.switchsim.cells import CellPool


# ----------------------------------------------------------------------
# Cell pool: allocation/release conservation
# ----------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=9000), min_size=1, max_size=60),
    cell_bytes=st.sampled_from([64, 200, 256]),
)
@settings(max_examples=60, deadline=None)
def test_cell_pool_conservation(sizes, cell_bytes):
    pool = CellPool(buffer_bytes=256 * KB, cell_bytes=cell_bytes)
    descriptors = []
    for size in sizes:
        pd = pool.allocate(Packet(size_bytes=size))
        if pd is not None:
            descriptors.append(pd)
        # Invariant: used + free == total, never negative.
        assert pool.used_cells + pool.free_cells == pool.total_cells
        assert pool.free_cells >= 0
    for pd in descriptors:
        pool.release(pd, read_data=False)
    assert pool.free_cells == pool.total_cells


# ----------------------------------------------------------------------
# DT threshold properties
# ----------------------------------------------------------------------
@given(
    alpha=st.floats(min_value=0.125, max_value=16.0),
    occupancy_packets=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_dt_threshold_nonnegative_and_proportional(alpha, occupancy_packets):
    sim = Simulator()
    config = SwitchConfig(num_ports=2, port_rate_bps=10 * GBPS, buffer_bytes=100 * KB)
    dt = DynamicThreshold(alpha=alpha)
    switch = SharedMemorySwitch(config, dt, sim)
    for _ in range(occupancy_packets):
        switch.receive(Packet(size_bytes=1500), 0)
    queue = switch.queue_for(1)
    threshold = dt.threshold(queue, 0.0)
    assert threshold >= 0
    assert threshold <= alpha * switch.buffer_size_bytes
    assert threshold == alpha * switch.free_buffer_bytes


# ----------------------------------------------------------------------
# Eq. 2: steady-state free buffer decreases with alpha and N
# ----------------------------------------------------------------------
@given(
    alpha=st.floats(min_value=0.25, max_value=32.0),
    n=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_dt_steady_state_reservation_bounds(alpha, n):
    dt = DynamicThreshold(alpha=alpha)
    buffer_bytes = 1_000_000.0
    free = dt.steady_state_free_buffer(n, buffer_bytes)
    assert 0 < free <= buffer_bytes
    # Larger alpha reserves less free buffer.
    assert free <= dt.steady_state_free_buffer(n, buffer_bytes) + 1e-9
    larger_alpha = DynamicThreshold(alpha=alpha * 2)
    assert larger_alpha.steady_state_free_buffer(n, buffer_bytes) < free


# ----------------------------------------------------------------------
# Occamy fairness bound (Eq. 3) is always > 1
# ----------------------------------------------------------------------
@given(
    alpha=st.floats(min_value=0.5, max_value=16.0),
    n=st.integers(min_value=0, max_value=32),
    m=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=100, deadline=None)
def test_occamy_fair_ratio_exceeds_one(alpha, n, m):
    occ = Occamy(alpha=alpha)
    assert occ.max_fair_arrival_ratio(n, m) > 1.0


# ----------------------------------------------------------------------
# Token bucket never exceeds capacity and never goes negative via expulsion
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["fwd", "expel", "wait"]),
                  st.floats(min_value=0.0, max_value=20.0)),
        min_size=1, max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_token_bucket_invariants(ops):
    bucket = TokenBucket(rate_cells_per_sec=1000.0, capacity_cells=100.0)
    now = 0.0
    expel_consumed = 0.0
    for kind, amount in ops:
        if kind == "wait":
            now += amount / 1000.0
        elif kind == "fwd":
            bucket.consume_forwarding(amount, now)
        else:
            before = bucket.available(now)
            if bucket.try_consume_expulsion(amount, now):
                expel_consumed += amount
                # Expulsion only granted when tokens covered it.
                assert before + 1e-6 >= amount
        assert bucket.available(now) <= bucket.capacity + 1e-9
    assert bucket.expel_cells_consumed >= expel_consumed - 1e-9


# ----------------------------------------------------------------------
# Round-robin arbiters: grants are work-conserving and fair
# ----------------------------------------------------------------------
@given(bitmap=st.lists(st.booleans(), min_size=1, max_size=32))
@settings(max_examples=100, deadline=None)
def test_round_robin_grants_only_set_bits(bitmap):
    rr = RoundRobinPointer()
    grant = rr.grant(bitmap)
    if any(bitmap):
        assert grant is not None and bitmap[grant]
    else:
        assert grant is None


@given(
    n=st.integers(min_value=2, max_value=16),
    rounds=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_round_robin_fairness_over_full_rounds(n, rounds):
    arb = RoundRobinArbiterCircuit(n)
    counts = [0] * n
    for _ in range(rounds * n):
        granted = arb.arbitrate([True] * n)
        counts[granted] += 1
    assert max(counts) - min(counts) == 0  # perfectly fair when all request


# ----------------------------------------------------------------------
# Maximum finder agrees with Python's max
# ----------------------------------------------------------------------
@given(values=st.lists(st.integers(min_value=0, max_value=2**16 - 1),
                       min_size=2, max_size=64))
@settings(max_examples=100, deadline=None)
def test_maximum_finder_matches_builtin_max(values):
    finder = MaximumFinder(num_inputs=len(values), bit_width=16)
    idx, value = finder.find_max(values)
    assert value == max(values)
    assert values[idx] == value
    assert idx == values.index(value)  # ties resolve to the lowest index


# ----------------------------------------------------------------------
# Percentiles
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=200),
       p=st.floats(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_percentile_bounded_by_min_max(values, p):
    result = percentile(values, p)
    tolerance = 1e-9 + 1e-9 * max(abs(v) for v in values)
    assert min(values) - tolerance <= result <= max(values) + tolerance
    assert min(values) - tolerance <= mean(values) <= max(values) + tolerance


@given(values=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_cdf_points_are_monotone(values):
    points = cdf_points(values)
    xs = [x for x, _ in points]
    ps = [p for _, p in points]
    assert xs == sorted(xs)
    assert ps == sorted(ps)
    assert ps[-1] == 1.0


# ----------------------------------------------------------------------
# Switch-level property: packets are conserved for any scheme
# ----------------------------------------------------------------------
@given(
    scheme=st.sampled_from(["dt", "occamy", "pushout"]),
    arrivals=st.lists(st.tuples(st.integers(min_value=64, max_value=1500),
                                st.integers(min_value=0, max_value=1)),
                      min_size=1, max_size=80),
)
@settings(max_examples=40, deadline=None)
def test_switch_packet_conservation_property(scheme, arrivals):
    sim = Simulator()
    config = SwitchConfig(num_ports=2, port_rate_bps=10 * GBPS, buffer_bytes=30 * KB)
    manager = {"dt": DynamicThreshold(alpha=1.0),
               "occamy": Occamy(alpha=8.0),
               "pushout": Pushout()}[scheme]
    switch = SharedMemorySwitch(config, manager, sim)
    for i, (size, port) in enumerate(arrivals):
        sim.schedule(i * 1e-7, lambda s=size, p=port: switch.receive(Packet(size_bytes=s), p))
    sim.run()
    stats = switch.stats
    assert stats.arrived_packets == len(arrivals)
    assert stats.arrived_packets == (
        stats.transmitted_packets + stats.dropped_packets
        + stats.expelled_packets + stats.evicted_packets
    )
    # Buffer fully drains once all arrivals are processed.
    assert switch.occupancy_bytes == 0


# ----------------------------------------------------------------------
# PR-3 invariant batteries guarding the hot-path rewrite
# ----------------------------------------------------------------------
def _make_manager(scheme: str):
    return {"dt": DynamicThreshold(alpha=1.0),
            "abm": ABM(alpha=2.0),
            "occamy": Occamy(alpha=8.0),
            "pushout": Pushout()}[scheme]


def _assert_buffer_conserved(switch) -> None:
    """Cell accounting invariants that must hold at every instant."""
    pool = switch.cell_pool
    # Cell conservation: every cell is either free or used, never negative.
    assert pool.used_cells + pool.free_cells == pool.total_cells
    assert 0 <= pool.used_cells <= pool.total_cells
    # Occupancy never exceeds capacity.
    assert switch.occupancy_bytes <= switch.buffer_size_bytes
    # The switch occupancy equals the cell-granular footprint of exactly the
    # descriptors resident in its queues plus any in-flight transmissions
    # (an in-flight packet's cells are freed when serialization completes).
    resident_cells = 0
    for queue in switch.queue_views():
        assert queue.length_bytes >= 0
        for descriptor in queue._descriptors:
            resident_cells += pool.cells_for(descriptor.packet.size_bytes)
    for port in switch.ports:
        if port.busy and port.tx_descriptor is not None:
            resident_cells += len(port.tx_descriptor.cell_pointers)
    assert pool.used_cells == resident_cells
    # Byte-level view: queued bytes never exceed the cell-granular occupancy.
    assert switch.total_backlog_bytes() <= switch.occupancy_bytes


@given(
    scheme=st.sampled_from(["dt", "abm", "occamy", "pushout"]),
    arrivals=st.lists(
        st.tuples(st.integers(min_value=64, max_value=3000),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=60),
    step=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_buffer_conservation_under_randomized_traffic(scheme, arrivals, step):
    """Sum of queue occupancies == switch occupancy, never above capacity.

    The simulation is advanced a few events at a time so the invariant is
    checked at many interleavings of enqueue, dequeue and expulsion -- not
    just at quiescence.
    """
    sim = Simulator()
    config = SwitchConfig(num_ports=4, port_rate_bps=10 * GBPS,
                          buffer_bytes=24 * KB)
    switch = SharedMemorySwitch(config, _make_manager(scheme), sim)
    for i, (size, port) in enumerate(arrivals):
        sim.schedule(i * 2e-7,
                     lambda s=size, p=port: switch.receive(Packet(size_bytes=s), p))
    while sim.pending_events:
        sim.run(max_events=step)
        _assert_buffer_conserved(switch)
    _assert_buffer_conserved(switch)
    assert switch.occupancy_bytes == 0


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=1e-3,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_simulator_clock_is_monotone(delays):
    """The virtual clock never runs backwards, including nested scheduling."""
    sim = Simulator()
    observed = []

    def observe_and_reschedule(extra):
        observed.append(sim.now)
        if extra > 0:
            sim.schedule(extra, lambda: observed.append(sim.now))

    for delay in delays:
        sim.schedule(delay, lambda d=delay: observe_and_reschedule(d / 2))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(observed)


@given(
    scheme=st.sampled_from(["dt", "abm", "occamy"]),
    arrivals=st.lists(
        st.tuples(st.integers(min_value=64, max_value=3000),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=50),
    probe_bytes=st.integers(min_value=64, max_value=3000),
    probe_port=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_admission_idempotence(scheme, arrivals, probe_bytes, probe_port):
    """``admit`` is a pure function of switch state for DT/ABM/Occamy.

    Asking the same question twice (without any intervening enqueue or
    dequeue) must return the same decision and leave thresholds unchanged,
    at every point of a randomized enqueue/dequeue sequence.
    """
    sim = Simulator()
    config = SwitchConfig(num_ports=4, port_rate_bps=10 * GBPS,
                          buffer_bytes=24 * KB)
    manager = _make_manager(scheme)
    switch = SharedMemorySwitch(config, manager, sim)
    for i, (size, port) in enumerate(arrivals):
        sim.schedule(i * 2e-7,
                     lambda s=size, p=port: switch.receive(Packet(size_bytes=s), p))
    while True:
        queue = switch.queue_for(probe_port)
        threshold_a = manager.threshold(queue, sim.now)
        first = manager.admit(queue, probe_bytes, sim.now)
        second = manager.admit(queue, probe_bytes, sim.now)
        threshold_b = manager.threshold(queue, sim.now)
        assert first.accept == second.accept
        assert first.reason == second.reason
        assert threshold_a == threshold_b
        if not sim.pending_events:
            break
        sim.run(max_events=5)


@given(
    scheme=st.sampled_from(["dt", "abm", "occamy", "pushout"]),
    arrivals=st.lists(
        st.tuples(st.integers(min_value=64, max_value=3000),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=1)),
        min_size=1, max_size=60),
)
@settings(max_examples=40, deadline=None)
def test_incremental_active_counts_match_rescan(scheme, arrivals):
    """The O(1) active-queue counters agree with a full rescan at all times."""
    sim = Simulator()
    config = SwitchConfig(num_ports=4, queues_per_port=2,
                          port_rate_bps=10 * GBPS, buffer_bytes=24 * KB)
    switch = SharedMemorySwitch(config, _make_manager(scheme), sim)
    for i, (size, port, cls) in enumerate(arrivals):
        sim.schedule(i * 2e-7,
                     lambda s=size, p=port, c=cls: switch.receive(
                         Packet(size_bytes=s), p, class_index=c))
    while True:
        expected_total = sum(1 for q in switch.queue_views() if q.is_active)
        assert switch.active_queue_count() == expected_total
        for priority in (0, 1):
            expected = sum(1 for q in switch.queue_views()
                           if q.is_active and q.priority == priority)
            assert switch.active_queue_count(priority) == expected
        if not sim.pending_events:
            break
        sim.run(max_events=3)
