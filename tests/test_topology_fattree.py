"""Tests for the k-ary fat-tree topology and multi-stage ECMP routing."""

from pathlib import Path

import pytest

from repro.core.registry import make_buffer_manager
from repro.netsim.routing import PathEnumerator, trace_path
from repro.scenario import (
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    WorkloadSpec,
    run_scenario,
)
from repro.topology.fattree import FatTreeTopology
from repro.topology.leaf_spine import LeafSpineTopology
from repro.workloads import reset_workload_ids


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _dt_factory():
    return make_buffer_manager("dt")


def _fat_tree(**kwargs) -> FatTreeTopology:
    return FatTreeTopology(manager_factory=_dt_factory, **kwargs)


class TestFatTreeStructure:
    def test_k4_dimensions(self):
        topo = _fat_tree(k=4)
        # k pods x k/2 edges x k/2 hosts = 16 hosts; 8 edge + 8 agg + 4 core.
        assert topo.num_hosts == 16
        assert len(topo.edges) == 8
        assert len(topo.aggs) == 8
        assert len(topo.cores) == 4
        assert len(topo.all_switches()) == 20

    def test_pod_membership(self):
        topo = _fat_tree(k=4)
        assert topo.pod_of_host(0) == 0
        assert topo.pod_of_host(15) == 3
        assert topo.hosts_of_pod(0) == [0, 1, 2, 3]
        assert topo.edge_of_host(5).name == "edge1_0"

    def test_oversubscription_scales_hosts_per_edge(self):
        topo = _fat_tree(k=4, oversubscription=2.0)
        assert topo.hosts_per_edge == 4
        assert topo.num_hosts == 32
        # An explicit hosts_per_edge wins over the knob.
        topo = _fat_tree(k=4, oversubscription=2.0, hosts_per_edge=1)
        assert topo.num_hosts == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            _fat_tree(k=3)
        with pytest.raises(ValueError, match="oversubscription"):
            _fat_tree(k=4, oversubscription=0)
        with pytest.raises(ValueError, match="hosts_per_edge"):
            _fat_tree(k=4, hosts_per_edge=0)


class TestFatTreePaths:
    def test_inter_pod_path_count_and_shape(self):
        topo = _fat_tree(k=4)
        paths = topo.paths_between(0, 15)
        # (k/2)^2 equal-cost paths, each edge->agg->core->agg->edge.
        assert len(paths) == 4
        assert all(len(p) == 5 for p in paths)
        assert all(p[0] == "edge0_0" and p[-1] == "edge3_1" for p in paths)
        assert all(p[2].startswith("core") for p in paths)
        assert len({p[2] for p in paths}) == 4  # every core is reachable

    def test_intra_pod_and_intra_edge_paths(self):
        topo = _fat_tree(k=4)
        intra_pod = topo.paths_between(0, 2)  # same pod, different edge
        assert len(intra_pod) == 2
        assert all(len(p) == 3 for p in intra_pod)
        assert topo.paths_between(0, 1) == [("edge0_0",)]  # same edge

    def test_flow_path_is_one_of_the_enumerated_paths(self):
        topo = _fat_tree(k=4)
        paths = set(topo.paths_between(0, 15))
        for flow_id in range(40):
            assert topo.path_of_flow(0, 15, flow_id) in paths

    def test_ecmp_exercises_every_equal_cost_path(self):
        # Regression for cross-stage hash polarization: edge and agg both
        # have k/2 uplinks, so without per-switch salts the agg repeats the
        # edge's pick and only the "diagonal" cores ever carry traffic.
        # Over many flow ids the traced paths must cover the FULL enumerated
        # path set -- all (k/2)^2 of them, i.e. every core.
        topo = _fat_tree(k=4)
        all_paths = set(topo.paths_between(0, 15))
        assert len(all_paths) == 4
        chosen = {topo.path_of_flow(0, 15, flow_id) for flow_id in range(256)}
        assert chosen == all_paths

    def test_every_core_carries_traffic_across_host_pairs(self):
        # The stronger fabric-wide form: sweeping inter-pod host pairs and
        # flow ids must light up every core switch, not a polarized subset.
        topo = _fat_tree(k=4)
        cores_used = set()
        for src in topo.hosts_of_pod(0):
            for dst in topo.hosts_of_pod(1):
                for flow_id in range(16):
                    path = topo.path_of_flow(src, dst, flow_id)
                    cores_used.add(path[2])
        assert cores_used == {core.name for core in topo.cores}

    def test_trace_path_matches_shared_ecmp_memo(self):
        # trace_path resolves through the same per-table memo the data path
        # uses, so repeated traces (and a pre-seeded route()) agree.
        topo = _fat_tree(k=4)
        first = trace_path(topo.edge_of_host(3), 3, 12, 9)
        assert trace_path(topo.edge_of_host(3), 3, 12, 9) == first

    def test_enumerator_memoizes_suffixes(self):
        topo = _fat_tree(k=4)
        enumerator = PathEnumerator()
        first = enumerator.paths(topo.edge_of_host(0), 15)
        memo_size = len(enumerator._memo)
        assert memo_size > 0
        # A second source in the same pod reuses the agg/core suffixes: the
        # memo grows by at most the new edge's own entry.
        second = enumerator.paths(topo.edge_of_host(2), 15)
        assert len(enumerator._memo) <= memo_size + 1
        assert first != second  # different first hop
        assert {p[1:] for p in first} == {p[1:] for p in second}


class TestFatTreeEndToEnd:
    def test_permutation_scenario_completes(self):
        reset_workload_ids()
        spec = ScenarioSpec(
            name="fattree-permutation",
            scheme=SchemeSpec("dt"),
            topology=TopologySpec("fat_tree", {
                "k": 4,
                "hosts_per_edge": 1,
                "ecn_threshold_bytes": 30_000,
            }),
            workloads=[WorkloadSpec("permutation",
                                    params={"flow_size_bytes": 20_000})],
            duration=0.002,
        )
        result = run_scenario(spec)
        stats = result.flow_stats
        assert len(stats.flows) == result.topology.num_hosts
        assert stats.completion_fraction() == 1.0
        assert result.summary_row()["topology"] == "fat_tree"

    def test_trace_replay_scenario_runs_from_example(self):
        reset_workload_ids()
        spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_trace_replay.json")
        result = run_scenario(spec)
        assert result.flow_stats.completion_fraction() == 1.0
        assert len(result.flow_stats.flows) == 16


class TestLeafSpineOversubscription:
    def test_knob_derives_spine_count(self):
        topo = LeafSpineTopology(manager_factory=_dt_factory, num_leaves=2,
                                 hosts_per_leaf=4, oversubscription=2.0)
        assert topo.num_spines == 2
        topo = LeafSpineTopology(manager_factory=_dt_factory, num_leaves=2,
                                 hosts_per_leaf=4, oversubscription=8.0)
        assert topo.num_spines == 1

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="oversubscription"):
            LeafSpineTopology(manager_factory=_dt_factory,
                              oversubscription=-1.0)
