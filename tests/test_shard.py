"""Sharded conservative-parallel execution: byte-identity and loud failure.

The sharded engine's contract is strict: for any shard count the topology
supports, the merged ``ScenarioResult.to_dict()`` document must be
**byte-identical** to the single-process heap oracle's (modulo the spec's
own ``engine`` section, which records which engine ran).  This module
checks that contract at every level of the determinism ladder -- in
process, across campaign workers, across fresh interpreters with hash
randomization -- plus the partitioner's validation guarantees and the
executor's crash behavior (loud ``ShardCrash`` with the worker's
traceback, never a hang).
"""

import json
import multiprocessing
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

# Imported before anything that pulls in repro.netsim directly: the
# scenario package settles the netsim<->scenario import cycle.
from repro.scenario import EngineSpec, ScenarioSpec, run_scenario
from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.core.registry import make_buffer_manager
from repro.netsim.partition import partition_topology
from repro.scenario.topologies import make_topology
from repro.sim.shard import ShardCrash
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


def _spec(shards: int = 1) -> ScenarioSpec:
    # The fat-tree websearch example: k=4 (4 pods), two ECMP stages, three
    # workload families -- the richest standing determinism scenario, and a
    # pod cut supports up to 4 shards.
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_fattree_websearch.json")
    spec.duration = 0.0015
    if shards > 1:
        spec = replace(spec, engine=EngineSpec(shards=shards))
    return spec


def _run_to_json(spec: ScenarioSpec) -> str:
    """Canonical document with the engine section stripped.

    The sharded spec embeds ``engine.shards`` (it is part of the config
    hash), so raw documents always differ from the oracle's; which engine
    ran is spec identity, not simulation outcome.
    """
    reset_workload_ids()
    document = run_scenario(spec).to_dict()
    document["spec"].pop("engine", None)
    return json.dumps(document, sort_keys=True)


# ----------------------------------------------------------------------
# Partitioner: cut validity is decided at validation time
# ----------------------------------------------------------------------
def _build_topology(spec: ScenarioSpec):
    return make_topology(spec.topology.kind,
                         lambda: make_buffer_manager("dt"),
                         **spec.resolved_topology_params())


def test_fat_tree_auto_partition_cuts_at_agg_core_links():
    topology = _build_topology(_spec())
    partition = partition_topology(topology, 2)
    assert partition.strategy == "pods"
    assert partition.num_shards == 2
    # Exact node cover: every switch and host owned exactly once.
    network = topology.network
    expected = set(network.switch_nodes) | {f"h{h}" for h in network.hosts}
    assert set(partition.assignment) == expected
    # Pod cut: only agg<->core links cross shards, every one with the
    # positive core-tier delay, and the lookahead is their minimum.
    assert partition.cut_links
    for src, dst in partition.cut_links:
        assert {src[:3], dst[:3]} == {"agg", "cor"}
    delays = [network.links[pair].link.delay for pair in partition.cut_links]
    assert all(d > 0 for d in delays)
    assert partition.lookahead == min(delays)


def test_partition_rejects_more_shards_than_pods():
    topology = _build_topology(_spec())  # k=4 -> at most 4 pod shards
    with pytest.raises(ValueError, match="at most one shard per pod"):
        partition_topology(topology, 8)


def test_partition_rejects_unknown_strategy_and_bad_counts():
    topology = _build_topology(_spec())
    with pytest.raises(ValueError, match="unknown partition strategy"):
        partition_topology(topology, 2, "metis")
    with pytest.raises(ValueError, match="num_shards must be >= 1"):
        partition_topology(topology, 0)


def test_runner_validate_rejects_unpartitionable_specs():
    from repro.perf.cases import get_case
    from repro.scenario.runner import ScenarioRunner

    # Switch-level topologies have no link graph to cut.
    raw = get_case("raw_switch_stream/small").build()
    raw = replace(raw, engine=EngineSpec(shards=2))
    with pytest.raises(ValueError, match="network-level topology"):
        ScenarioRunner().validate(raw)


def test_validate_spec_file_resolves_the_partition(tmp_path):
    from repro.scenario.experiment import validate_spec_file

    document = _spec().to_dict()
    document["engine"] = {"shards": 8}  # k=4: only 4 pods
    path = tmp_path / "overcut.json"
    path.write_text(json.dumps(document))
    with pytest.raises(ValueError, match="at most one shard per pod"):
        validate_spec_file(str(path))


# ----------------------------------------------------------------------
# Byte-identity ladder: in process
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_byte_identical_to_oracle_in_process(shards):
    assert _run_to_json(_spec(shards)) == _run_to_json(_spec())


def test_sharded_repeated_run_byte_identical_in_process():
    assert _run_to_json(_spec(2)) == _run_to_json(_spec(2))


def test_shard_stats_ride_outside_the_canonical_document():
    reset_workload_ids()
    result = run_scenario(_spec(2))
    stats = result.shard_stats
    assert stats["partition"]["num_shards"] == 2
    assert stats["rounds"] > 0
    assert len(stats["shards"]) == 2
    for row in stats["shards"]:
        assert row["events"] > 0
        assert row["nodes"] > 0
        assert row["peak_rss_kb"] > 0
    # Handoffs are conserved: every record sent was delivered somewhere.
    assert (sum(r["handoffs_out"] for r in stats["shards"])
            == sum(r["handoffs_in"] for r in stats["shards"]) > 0)
    assert "shard_stats" not in result.to_dict()


# ----------------------------------------------------------------------
# Byte-identity ladder: serial vs parallel campaign workers
# ----------------------------------------------------------------------
def test_sharded_serial_vs_parallel_campaign_identical():
    document = _spec(2).to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                   for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


# ----------------------------------------------------------------------
# Byte-identity ladder: fresh interpreters with hash randomization
# ----------------------------------------------------------------------
_CHILD_SCRIPT = """
import json, sys
from dataclasses import replace
from repro.scenario import EngineSpec, ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.0015
spec = replace(spec, engine=EngineSpec(shards=int(sys.argv[2])))
reset_workload_ids()
document = run_scenario(spec).to_dict()
document["spec"].pop("engine", None)
print(json.dumps(document, sort_keys=True))
"""


def test_sharded_two_fresh_processes_byte_identical():
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT,
             str(EXAMPLES_DIR / "scenario_fattree_websearch.json"), "2"],
            capture_output=True, text=True, timeout=240,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    # The fresh sharded processes also agree with the in-process oracle.
    assert first.strip() == _run_to_json(_spec())


# ----------------------------------------------------------------------
# Telemetry and static fabric state survive the merge byte-for-byte
# ----------------------------------------------------------------------
def test_sharded_with_telemetry_byte_identical_to_oracle():
    from repro.scenario.spec import TelemetrySpec

    def spec(shards: int) -> ScenarioSpec:
        base = _spec(shards)
        return replace(base, telemetry=TelemetrySpec(enabled=True))

    assert _run_to_json(spec(2)) == _run_to_json(spec(1))


# ----------------------------------------------------------------------
# Crash containment: one dead shard fails the run loudly, never hangs
# ----------------------------------------------------------------------
def test_one_crashing_shard_raises_shard_crash_with_traceback(monkeypatch):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fault injection via monkeypatch needs fork workers")
    import repro.sim.shard as shard_mod

    original_run = shard_mod._ShardWorker.run

    def sabotaged(self):
        if self.shard == 1:
            raise RuntimeError("synthetic shard fault")
        return original_run(self)

    # Fork workers inherit the patched class, so exactly shard 1 dies.
    monkeypatch.setattr(shard_mod._ShardWorker, "run", sabotaged)
    reset_workload_ids()
    with pytest.raises(ShardCrash) as excinfo:
        run_scenario(_spec(2))
    message = str(excinfo.value)
    assert "shard 1" in message
    assert "synthetic shard fault" in message
    assert "Traceback" in message  # the worker's own stack, not the parent's
