"""Tests for the workload generators."""

import json

import pytest

from repro.sim.rng import SeededRNG
from repro.workloads import (
    DATA_MINING_DISTRIBUTION,
    EmpiricalDistribution,
    FlowSpec,
    HotspotFlowGenerator,
    IncastQueryGenerator,
    PoissonFlowGenerator,
    WEB_SEARCH_DISTRIBUTION,
    all_reduce_flows,
    all_to_all_flows,
    burst_arrivals,
    constant_rate_arrivals,
    double_binary_tree,
    flows_per_second_for_load,
    load_flow_trace,
    permutation_flows,
    random_derangement,
    trace_replay_flows,
)


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=1, size_bytes=0, start_time=0.0)
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=0, size_bytes=100, start_time=0.0)
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=1, size_bytes=100, start_time=-1.0)

    def test_unique_flow_ids(self):
        a = FlowSpec(src=0, dst=1, size_bytes=100, start_time=0.0)
        b = FlowSpec(src=0, dst=1, size_bytes=100, start_time=0.0)
        assert a.flow_id != b.flow_id


class TestDistributions:
    def test_builtin_distributions_sample_in_range(self):
        rng = SeededRNG(1)
        for dist in (WEB_SEARCH_DISTRIBUTION, DATA_MINING_DISTRIBUTION):
            samples = [dist.sample(rng) for _ in range(500)]
            assert all(s >= 1 for s in samples)
            assert max(samples) <= dist._sizes[-1]

    def test_websearch_mean_order_of_magnitude(self):
        # The web-search workload's mean flow size is on the order of 1 MB.
        assert 2e5 < WEB_SEARCH_DISTRIBUTION.mean() < 4e6

    def test_sampling_is_deterministic_per_seed(self):
        a = [WEB_SEARCH_DISTRIBUTION.sample(SeededRNG(5)) for _ in range(1)]
        b = [WEB_SEARCH_DISTRIBUTION.sample(SeededRNG(5)) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([(100, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(100, 0.5), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(50, 0.5), (100, 0.9)])

    def test_percentiles(self):
        dist = EmpiricalDistribution([(10, 0.5), (100, 1.0)])
        assert dist.percentiles([0.0, 0.5, 1.0]) == [10, 10, 100]
        with pytest.raises(ValueError):
            dist.percentiles([1.5])

    def test_percentiles_interpolate_within_segments(self):
        # Regression: percentiles used to return raw bucket edges
        # (bisect_left), disagreeing with sample()'s inverse transform
        # everywhere strictly inside a segment.
        dist = EmpiricalDistribution([(10, 0.5), (100, 1.0)])
        assert dist.percentiles([0.75]) == [pytest.approx(55.0)]
        assert dist.percentiles([0.9]) == [pytest.approx(82.0)]
        # The same probabilities through the published web-search CDF.
        p50, p99 = WEB_SEARCH_DISTRIBUTION.percentiles([0.5, 0.99])
        assert 33_000 < p50 < 53_000  # inside the 0.40-0.53 segment
        assert 6_667_000 < p99 < 20_000_000

    def test_percentiles_match_sampler_inverse_transform(self):
        # percentiles() and sample() must evaluate the same inverse CDF:
        # a sample drawn at u equals the (int-truncated) percentile at u.
        for dist in (WEB_SEARCH_DISTRIBUTION, DATA_MINING_DISTRIBUTION):
            rng, probe = SeededRNG(11), SeededRNG(11)
            for _ in range(200):
                u = probe.random()
                assert dist.sample(rng) == max(1, int(dist.quantile(u)))

    def test_sampled_mean_matches_analytic_mean(self):
        # Regression for the first-segment convention: mean() is the exact
        # integral of the sampler's inverse CDF, so a large-sample mean must
        # converge to it for both published distributions.
        for dist, seed in ((WEB_SEARCH_DISTRIBUTION, 7),
                           (DATA_MINING_DISTRIBUTION, 8)):
            rng = SeededRNG(seed)
            n = 200_000
            sampled = sum(dist.sample(rng) for _ in range(n)) / n
            assert sampled == pytest.approx(dist.mean(), rel=0.02)

    def test_first_segment_is_point_mass_at_minimum_size(self):
        # All mass below the first CDF point collapses onto sizes[0] in
        # sample(), percentiles() *and* mean()'s first-segment term alike.
        dist = EmpiricalDistribution([(1000, 0.25), (2000, 1.0)])
        assert dist.percentiles([0.0, 0.1, 0.25]) == [1000, 1000, 1000]
        assert dist.mean() == pytest.approx(0.25 * 1000 + 0.75 * 1500)

    def test_flows_per_second_for_load(self):
        rate = flows_per_second_for_load(0.5, 10e9, 1e6, num_senders=10)
        # Aggregate bytes/s = 0.5 * 1.25e9; per sender = 62.5e6; /1e6 = 62.5.
        assert rate == pytest.approx(62.5)
        with pytest.raises(ValueError):
            flows_per_second_for_load(0, 10e9, 1e6)


class TestPoissonGenerator:
    def test_generates_flows_within_window(self):
        gen = PoissonFlowGenerator(list(range(8)), WEB_SEARCH_DISTRIBUTION,
                                   flows_per_second=2000, rng=SeededRNG(1))
        flows = gen.generate(duration=0.05)
        assert flows
        assert all(0 <= f.start_time < 0.05 for f in flows)
        assert all(f.src != f.dst for f in flows)

    def test_rate_roughly_matches(self):
        gen = PoissonFlowGenerator(list(range(4)), WEB_SEARCH_DISTRIBUTION,
                                   flows_per_second=5000, rng=SeededRNG(2))
        flows = gen.generate(duration=0.1)
        assert len(flows) == pytest.approx(500, rel=0.2)

    def test_receiver_restriction(self):
        gen = PoissonFlowGenerator(list(range(8)), WEB_SEARCH_DISTRIBUTION,
                                   flows_per_second=1000, rng=SeededRNG(3),
                                   receivers=[7])
        flows = gen.generate(duration=0.05)
        assert all(f.dst == 7 for f in flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonFlowGenerator([0], WEB_SEARCH_DISTRIBUTION, 100, SeededRNG(0))
        gen = PoissonFlowGenerator([0, 1], WEB_SEARCH_DISTRIBUTION, 100, SeededRNG(0))
        with pytest.raises(ValueError):
            gen.generate(duration=0)


class TestIncastGenerator:
    def test_query_structure(self):
        gen = IncastQueryGenerator(clients=[0], servers=list(range(1, 9)),
                                   query_size_bytes=80_000, fanout=8,
                                   queries_per_second=100, rng=SeededRNG(1))
        flows = gen.make_query(client=0, start_time=0.01)
        assert len(flows) == 8
        assert all(f.dst == 0 for f in flows)
        assert all(f.query_id == flows[0].query_id for f in flows)
        assert sum(f.size_bytes for f in flows) == 80_000
        assert len({f.src for f in flows}) == 8

    def test_fanout_larger_than_server_pool_reuses_servers(self):
        gen = IncastQueryGenerator(clients=[0], servers=[1, 2, 3],
                                   query_size_bytes=9000, fanout=6,
                                   queries_per_second=10, rng=SeededRNG(2))
        flows = gen.make_query(0, 0.0)
        assert len(flows) == 6

    def test_generate_poisson_queries(self):
        gen = IncastQueryGenerator(clients=[0, 1], servers=list(range(2, 10)),
                                   query_size_bytes=40_000, fanout=4,
                                   queries_per_second=200, rng=SeededRNG(3))
        flows = gen.generate(duration=0.1)
        query_ids = {f.query_id for f in flows}
        assert len(query_ids) > 5
        assert all(len([f for f in flows if f.query_id == qid]) == 4
                   for qid in query_ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncastQueryGenerator([], [1], 1000, 1, 1, SeededRNG(0))
        with pytest.raises(ValueError):
            IncastQueryGenerator([0], [1], 1000, 0, 1, SeededRNG(0))
        with pytest.raises(ValueError):
            IncastQueryGenerator([0], [1], 1, 10, 1, SeededRNG(0))


class TestCollectives:
    def test_all_to_all_count_and_symmetry(self):
        flows = all_to_all_flows(list(range(4)), 1000)
        assert len(flows) == 12
        pairs = {(f.src, f.dst) for f in flows}
        assert (0, 1) in pairs and (1, 0) in pairs
        assert all(f.size_bytes == 1000 for f in flows)

    def test_double_binary_tree_structure(self):
        tree_a, tree_b = double_binary_tree(8)
        for tree in (tree_a, tree_b):
            roots = [r for r, p in tree.items() if r == p]
            assert len(roots) == 1
            assert set(tree) == set(range(8))
            # Every non-root eventually reaches the root (no cycles).
            root = roots[0]
            for rank in tree:
                seen = set()
                node = rank
                while node != root:
                    assert node not in seen
                    seen.add(node)
                    node = tree[node]
        assert tree_a != tree_b

    def test_all_reduce_flows_identical_sizes(self):
        flows = all_reduce_flows(list(range(6)), 4096)
        assert flows
        assert len({f.size_bytes for f in flows}) == 1
        assert all(f.src != f.dst for f in flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            all_to_all_flows([0], 100)
        with pytest.raises(ValueError):
            all_reduce_flows([0], 100)
        with pytest.raises(ValueError):
            double_binary_tree(1)


class TestPermutation:
    def test_random_derangement_has_no_fixed_points(self):
        hosts = list(range(16))
        for seed in range(5):
            deranged = random_derangement(hosts, SeededRNG(seed))
            assert sorted(deranged) == hosts
            assert all(a != b for a, b in zip(hosts, deranged, strict=True))

    def test_permutation_flows_cover_all_hosts(self):
        flows = permutation_flows(list(range(8)), 10_000, rng=SeededRNG(3))
        assert len(flows) == 8
        assert sorted(f.src for f in flows) == list(range(8))
        assert sorted(f.dst for f in flows) == list(range(8))
        assert all(f.src != f.dst for f in flows)

    def test_shift_pattern_is_deterministic(self):
        flows = permutation_flows([0, 1, 2, 3], 5000, pattern="shift", shift=1)
        assert [(f.src, f.dst) for f in flows] == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            permutation_flows([0], 1000, rng=SeededRNG(0))
        with pytest.raises(ValueError):
            permutation_flows([0, 1], 0, rng=SeededRNG(0))
        with pytest.raises(ValueError):
            permutation_flows([0, 1], 1000, pattern="random")  # no rng
        with pytest.raises(ValueError):
            permutation_flows([0, 1], 1000, pattern="shift", shift=2)
        with pytest.raises(ValueError):
            permutation_flows([0, 1], 1000, pattern="spiral")


class TestHotspotGenerator:
    def test_hotspot_fraction_skews_receivers(self):
        gen = HotspotFlowGenerator(
            list(range(16)), hotspots=[15], flows_per_second=50_000,
            rng=SeededRNG(4), hotspot_fraction=0.8, flow_size_bytes=10_000)
        flows = gen.generate(duration=0.05)
        assert len(flows) > 500
        hot = sum(1 for f in flows if f.dst == 15)
        assert hot / len(flows) == pytest.approx(0.8, abs=0.1)
        assert all(f.src != f.dst for f in flows)

    def test_empirical_sizes(self):
        gen = HotspotFlowGenerator(
            list(range(8)), hotspots=[7], flows_per_second=20_000,
            rng=SeededRNG(5), size_distribution=WEB_SEARCH_DISTRIBUTION)
        flows = gen.generate(duration=0.01)
        assert flows
        assert len({f.size_bytes for f in flows}) > 10

    def test_validation(self):
        with pytest.raises(ValueError, match="two hosts"):
            HotspotFlowGenerator([0], [0], 100, SeededRNG(0),
                                 flow_size_bytes=100)
        with pytest.raises(ValueError, match="hotspot"):
            HotspotFlowGenerator([0, 1], [], 100, SeededRNG(0),
                                 flow_size_bytes=100)
        with pytest.raises(ValueError, match="one of the hosts"):
            HotspotFlowGenerator([0, 1], [5], 100, SeededRNG(0),
                                 flow_size_bytes=100)
        with pytest.raises(ValueError, match="exactly one"):
            HotspotFlowGenerator([0, 1], [1], 100, SeededRNG(0))
        with pytest.raises(ValueError, match="exactly one"):
            HotspotFlowGenerator([0, 1], [1], 100, SeededRNG(0),
                                 size_distribution=WEB_SEARCH_DISTRIBUTION,
                                 flow_size_bytes=100)


class TestTraceReplay:
    def _write_csv(self, path):
        path.write_text(
            "src,dst,size_bytes,start_time,priority\n"
            "0,1,1000,0.001,0\n"
            "1,0,2000,0.002,1\n"
        )

    def test_csv_round_trip(self, tmp_path):
        trace = tmp_path / "flows.csv"
        self._write_csv(trace)
        flows = trace_replay_flows(load_flow_trace(trace))
        assert [(f.src, f.dst, f.size_bytes, f.priority) for f in flows] == \
               [(0, 1, 1000, 0), (1, 0, 2000, 1)]
        assert flows[0].start_time == pytest.approx(0.001)

    def test_json_round_trip_and_flows_wrapper(self, tmp_path):
        records = [{"src": 0, "dst": 1, "size_bytes": 500, "start_time": 0.0}]
        plain = tmp_path / "plain.json"
        plain.write_text(json.dumps(records))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"flows": records}))
        for path in (plain, wrapped):
            flows = trace_replay_flows(load_flow_trace(path))
            assert [(f.src, f.dst, f.size_bytes) for f in flows] == [(0, 1, 500)]

    def test_explicit_priority_zero_beats_the_default(self, tmp_path):
        # Regression: ``record.get("priority") or default`` dropped an
        # explicit JSON priority of 0 (falsy) while keeping the CSV string
        # "0", making the two formats replay the same trace differently.
        records = [{"src": 0, "dst": 1, "size_bytes": 500, "start_time": 0.0,
                    "priority": 0}]
        trace = tmp_path / "prio.json"
        trace.write_text(json.dumps(records))
        flows = trace_replay_flows(load_flow_trace(trace), default_priority=1)
        assert flows[0].priority == 0
        # An absent priority still falls back to the default.
        del records[0]["priority"]
        trace.write_text(json.dumps(records))
        flows = trace_replay_flows(load_flow_trace(trace), default_priority=1)
        assert flows[0].priority == 1

    def test_time_and_size_rescaling(self, tmp_path):
        trace = tmp_path / "flows.csv"
        self._write_csv(trace)
        flows = trace_replay_flows(load_flow_trace(trace), time_scale=0.5,
                                   size_scale=2.0, time_offset=0.01)
        assert flows[0].start_time == pytest.approx(0.01 + 0.0005)
        assert flows[0].size_bytes == 2000
        with pytest.raises(ValueError):
            trace_replay_flows([], time_scale=0)

    def test_validation(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_flow_trace(tmp_path / "missing.csv")
        bad = tmp_path / "bad.txt"
        bad.write_text("nope")
        with pytest.raises(ValueError, match="unsupported trace format"):
            load_flow_trace(bad)
        empty = tmp_path / "empty.csv"
        empty.write_text("src,dst,size_bytes,start_time\n")
        with pytest.raises(ValueError, match="no records"):
            load_flow_trace(empty)
        partial = tmp_path / "partial.csv"
        partial.write_text("src,dst,size_bytes,start_time\n0,1,,0.0\n")
        with pytest.raises(ValueError, match="size_bytes"):
            load_flow_trace(partial)
        scalar = tmp_path / "scalar.json"
        scalar.write_text("3")
        with pytest.raises(ValueError, match="list of records"):
            load_flow_trace(scalar)


class TestBurstArrivals:
    def test_constant_rate_spacing(self):
        arrivals = constant_rate_arrivals(10e9, duration=12e-6, packet_bytes=1500)
        assert len(arrivals) == 10
        gaps = [b[0] - a[0] for a, b in zip(arrivals, arrivals[1:], strict=False)]
        assert all(g == pytest.approx(1.2e-6) for g in gaps)

    def test_burst_total_bytes(self):
        arrivals = burst_arrivals(10_000, 100e9, packet_bytes=1500)
        assert sum(size for _, size in arrivals) == 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_rate_arrivals(10e9, 0)
        with pytest.raises(ValueError):
            burst_arrivals(0, 10e9)
