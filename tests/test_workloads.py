"""Tests for the workload generators."""

import pytest

from repro.sim.rng import SeededRNG
from repro.workloads import (
    DATA_MINING_DISTRIBUTION,
    EmpiricalDistribution,
    FlowSpec,
    IncastQueryGenerator,
    PoissonFlowGenerator,
    WEB_SEARCH_DISTRIBUTION,
    all_reduce_flows,
    all_to_all_flows,
    burst_arrivals,
    constant_rate_arrivals,
    double_binary_tree,
    flows_per_second_for_load,
)


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=1, size_bytes=0, start_time=0.0)
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=0, size_bytes=100, start_time=0.0)
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=1, size_bytes=100, start_time=-1.0)

    def test_unique_flow_ids(self):
        a = FlowSpec(src=0, dst=1, size_bytes=100, start_time=0.0)
        b = FlowSpec(src=0, dst=1, size_bytes=100, start_time=0.0)
        assert a.flow_id != b.flow_id


class TestDistributions:
    def test_builtin_distributions_sample_in_range(self):
        rng = SeededRNG(1)
        for dist in (WEB_SEARCH_DISTRIBUTION, DATA_MINING_DISTRIBUTION):
            samples = [dist.sample(rng) for _ in range(500)]
            assert all(s >= 1 for s in samples)
            assert max(samples) <= dist._sizes[-1]

    def test_websearch_mean_order_of_magnitude(self):
        # The web-search workload's mean flow size is on the order of 1 MB.
        assert 2e5 < WEB_SEARCH_DISTRIBUTION.mean() < 4e6

    def test_sampling_is_deterministic_per_seed(self):
        a = [WEB_SEARCH_DISTRIBUTION.sample(SeededRNG(5)) for _ in range(1)]
        b = [WEB_SEARCH_DISTRIBUTION.sample(SeededRNG(5)) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([(100, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(100, 0.5), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(50, 0.5), (100, 0.9)])

    def test_percentiles(self):
        dist = EmpiricalDistribution([(10, 0.5), (100, 1.0)])
        assert dist.percentiles([0.0, 0.5, 1.0]) == [10, 10, 100]
        with pytest.raises(ValueError):
            dist.percentiles([1.5])

    def test_flows_per_second_for_load(self):
        rate = flows_per_second_for_load(0.5, 10e9, 1e6, num_senders=10)
        # Aggregate bytes/s = 0.5 * 1.25e9; per sender = 62.5e6; /1e6 = 62.5.
        assert rate == pytest.approx(62.5)
        with pytest.raises(ValueError):
            flows_per_second_for_load(0, 10e9, 1e6)


class TestPoissonGenerator:
    def test_generates_flows_within_window(self):
        gen = PoissonFlowGenerator(list(range(8)), WEB_SEARCH_DISTRIBUTION,
                                   flows_per_second=2000, rng=SeededRNG(1))
        flows = gen.generate(duration=0.05)
        assert flows
        assert all(0 <= f.start_time < 0.05 for f in flows)
        assert all(f.src != f.dst for f in flows)

    def test_rate_roughly_matches(self):
        gen = PoissonFlowGenerator(list(range(4)), WEB_SEARCH_DISTRIBUTION,
                                   flows_per_second=5000, rng=SeededRNG(2))
        flows = gen.generate(duration=0.1)
        assert len(flows) == pytest.approx(500, rel=0.2)

    def test_receiver_restriction(self):
        gen = PoissonFlowGenerator(list(range(8)), WEB_SEARCH_DISTRIBUTION,
                                   flows_per_second=1000, rng=SeededRNG(3),
                                   receivers=[7])
        flows = gen.generate(duration=0.05)
        assert all(f.dst == 7 for f in flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonFlowGenerator([0], WEB_SEARCH_DISTRIBUTION, 100, SeededRNG(0))
        gen = PoissonFlowGenerator([0, 1], WEB_SEARCH_DISTRIBUTION, 100, SeededRNG(0))
        with pytest.raises(ValueError):
            gen.generate(duration=0)


class TestIncastGenerator:
    def test_query_structure(self):
        gen = IncastQueryGenerator(clients=[0], servers=list(range(1, 9)),
                                   query_size_bytes=80_000, fanout=8,
                                   queries_per_second=100, rng=SeededRNG(1))
        flows = gen.make_query(client=0, start_time=0.01)
        assert len(flows) == 8
        assert all(f.dst == 0 for f in flows)
        assert all(f.query_id == flows[0].query_id for f in flows)
        assert sum(f.size_bytes for f in flows) == 80_000
        assert len({f.src for f in flows}) == 8

    def test_fanout_larger_than_server_pool_reuses_servers(self):
        gen = IncastQueryGenerator(clients=[0], servers=[1, 2, 3],
                                   query_size_bytes=9000, fanout=6,
                                   queries_per_second=10, rng=SeededRNG(2))
        flows = gen.make_query(0, 0.0)
        assert len(flows) == 6

    def test_generate_poisson_queries(self):
        gen = IncastQueryGenerator(clients=[0, 1], servers=list(range(2, 10)),
                                   query_size_bytes=40_000, fanout=4,
                                   queries_per_second=200, rng=SeededRNG(3))
        flows = gen.generate(duration=0.1)
        query_ids = {f.query_id for f in flows}
        assert len(query_ids) > 5
        assert all(len([f for f in flows if f.query_id == qid]) == 4
                   for qid in query_ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncastQueryGenerator([], [1], 1000, 1, 1, SeededRNG(0))
        with pytest.raises(ValueError):
            IncastQueryGenerator([0], [1], 1000, 0, 1, SeededRNG(0))
        with pytest.raises(ValueError):
            IncastQueryGenerator([0], [1], 1, 10, 1, SeededRNG(0))


class TestCollectives:
    def test_all_to_all_count_and_symmetry(self):
        flows = all_to_all_flows(list(range(4)), 1000)
        assert len(flows) == 12
        pairs = {(f.src, f.dst) for f in flows}
        assert (0, 1) in pairs and (1, 0) in pairs
        assert all(f.size_bytes == 1000 for f in flows)

    def test_double_binary_tree_structure(self):
        tree_a, tree_b = double_binary_tree(8)
        for tree in (tree_a, tree_b):
            roots = [r for r, p in tree.items() if r == p]
            assert len(roots) == 1
            assert set(tree) == set(range(8))
            # Every non-root eventually reaches the root (no cycles).
            root = roots[0]
            for rank in tree:
                seen = set()
                node = rank
                while node != root:
                    assert node not in seen
                    seen.add(node)
                    node = tree[node]
        assert tree_a != tree_b

    def test_all_reduce_flows_identical_sizes(self):
        flows = all_reduce_flows(list(range(6)), 4096)
        assert flows
        assert len({f.size_bytes for f in flows}) == 1
        assert all(f.src != f.dst for f in flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            all_to_all_flows([0], 100)
        with pytest.raises(ValueError):
            all_reduce_flows([0], 100)
        with pytest.raises(ValueError):
            double_binary_tree(1)


class TestBurstArrivals:
    def test_constant_rate_spacing(self):
        arrivals = constant_rate_arrivals(10e9, duration=12e-6, packet_bytes=1500)
        assert len(arrivals) == 10
        gaps = [b[0] - a[0] for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(1.2e-6) for g in gaps)

    def test_burst_total_bytes(self):
        arrivals = burst_arrivals(10_000, 100e9, packet_bytes=1500)
        assert sum(size for _, size in arrivals) == 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_rate_arrivals(10e9, 0)
        with pytest.raises(ValueError):
            burst_arrivals(0, 10e9)
