"""Tests for the packet-level network simulator (hosts, links, transports)."""

import pytest

from repro.core import CompleteSharing, DynamicThreshold, Occamy
from repro.netsim import EcmpRoutingTable, TransportConfig, switch_salt
from repro.netsim.transport import make_transport
from repro.netsim.transport.base import ReceiverState
from repro.sim.units import GBPS, KB
from repro.switchsim import Packet
from repro.topology import DumbbellTopology, LeafSpineTopology, SingleSwitchTopology
from repro.workloads import FlowSpec


class TestRouting:
    def test_direct_route_preferred(self):
        table = EcmpRoutingTable()
        table.add_host_route(5, 2)
        table.add_uplinks([3, 4])
        assert table.route(Packet(size_bytes=100, dst=5)) == 2

    def test_ecmp_spreads_and_is_flow_consistent(self):
        table = EcmpRoutingTable()
        table.add_uplinks([0, 1, 2, 3])
        ports = set()
        for flow in range(40):
            p1 = table.route(Packet(size_bytes=100, src=1, dst=2, flow_id=flow))
            p2 = table.route(Packet(size_bytes=100, src=1, dst=2, flow_id=flow))
            assert p1 == p2  # same flow -> same path
            ports.add(p1)
        assert len(ports) > 1  # different flows spread over uplinks

    def test_no_route_raises(self):
        with pytest.raises(LookupError):
            EcmpRoutingTable().route(Packet(size_bytes=100, dst=9))

    def test_salt_decorrelates_tables(self):
        # Two switches with the same uplink set must not make identical
        # picks for every flow once salted, or multi-stage ECMP polarizes.
        plain = EcmpRoutingTable()
        salted = EcmpRoutingTable(salt=switch_salt("agg0_0"))
        for table in (plain, salted):
            table.add_uplinks([0, 1, 2, 3])
        flows = range(64)
        assert [plain.egress_for(1, 2, f) for f in flows] != \
               [salted.egress_for(1, 2, f) for f in flows]

    def test_salt_is_deterministic_and_set_salt_invalidates_memo(self):
        assert switch_salt("core0") == switch_salt("core0")
        assert switch_salt("core0") != switch_salt("core1")
        table = EcmpRoutingTable()
        table.add_uplinks([0, 1, 2, 3])
        before = [table.egress_for(1, 2, f) for f in range(64)]
        table.set_salt(switch_salt("core0"))
        after = [table.egress_for(1, 2, f) for f in range(64)]
        assert before != after  # memoized picks were recomputed


class TestTransportFactory:
    def test_known_transports(self):
        for name in ("dctcp", "reno", "cubic"):
            assert make_transport(name).name == name

    def test_unknown_transport(self):
        with pytest.raises(KeyError):
            make_transport("bbr")


class TestSingleFlowDelivery:
    def _run_flow(self, size_bytes, transport="dctcp", manager=None):
        topo = SingleSwitchTopology(
            num_hosts=2,
            manager_factory=lambda: manager or CompleteSharing(),
            link_rate_bps=10 * GBPS,
            ecn_threshold_bytes=30 * KB,
        )
        spec = FlowSpec(src=0, dst=1, size_bytes=size_bytes, start_time=0.0)
        topo.network.inject_flows([spec], transport=transport)
        topo.network.run(until=1.0)
        return topo, spec

    def test_small_flow_completes(self):
        topo, spec = self._run_flow(15_000)
        stats = topo.network.flow_stats
        assert stats.completion_fraction() == 1.0
        assert stats.flows[spec.flow_id].fct > 0

    def test_large_flow_completes_with_all_transports(self):
        for transport in ("dctcp", "reno", "cubic"):
            topo, spec = self._run_flow(300_000, transport=transport)
            assert topo.network.flow_stats.completion_fraction() == 1.0, transport

    def test_fct_close_to_ideal_on_empty_network(self):
        topo, spec = self._run_flow(200_000)
        stats = topo.network.flow_stats
        slowdowns = stats.fct_slowdowns()
        # An uncontended flow should finish within a small factor of ideal
        # (window ramp-up costs a few RTTs).
        assert slowdowns[0] < 3.0

    def test_flow_completion_is_receiver_side(self):
        topo, spec = self._run_flow(15_000)
        record = topo.network.flow_stats.flows[spec.flow_id]
        assert record.finish_time is not None
        assert record.finish_time > record.start_time

    def test_unknown_host_in_flow_rejected(self):
        topo = SingleSwitchTopology(2, lambda: CompleteSharing())
        with pytest.raises(ValueError):
            topo.network.inject_flows(
                [FlowSpec(src=0, dst=99, size_bytes=1000, start_time=0.0)]
            )


class TestDctcpBehaviour:
    def test_ecn_keeps_queue_below_dropping(self):
        """DCTCP with ECN marking should avoid drops for a single bulk flow."""
        topo = SingleSwitchTopology(
            num_hosts=3,
            manager_factory=lambda: DynamicThreshold(alpha=4.0),
            link_rate_bps=10 * GBPS,
            ecn_threshold_bytes=30 * KB,
        )
        flows = [FlowSpec(src=s, dst=0, size_bytes=400_000, start_time=0.0)
                 for s in (1, 2)]
        topo.network.inject_flows(flows, transport="dctcp")
        topo.network.run(until=1.0)
        assert topo.network.flow_stats.completion_fraction() == 1.0
        assert topo.switch.stats.ecn_marked_packets > 0
        # With marking active the switch should see few, if any, drops.
        assert topo.switch.stats.dropped_packets < 20

    def test_dctcp_alpha_updates(self):
        topo = SingleSwitchTopology(
            num_hosts=2, manager_factory=lambda: CompleteSharing(),
            link_rate_bps=10 * GBPS, ecn_threshold_bytes=15 * KB,
        )
        spec = FlowSpec(src=0, dst=1, size_bytes=500_000, start_time=0.0)
        topo.network.inject_flows([spec], transport="dctcp")
        topo.network.run(until=1.0)
        sender = topo.network.hosts[0].senders[spec.flow_id]
        assert sender.finished
        assert 0.0 <= sender.alpha <= 1.0

    def test_retransmission_on_loss(self):
        """A tiny buffer forces drops; the flow must still complete via retransmit."""
        topo = SingleSwitchTopology(
            num_hosts=3,
            manager_factory=lambda: DynamicThreshold(alpha=1.0),
            link_rate_bps=10 * GBPS,
            buffer_bytes=20 * KB,
        )
        flows = [FlowSpec(src=s, dst=0, size_bytes=150_000, start_time=0.0)
                 for s in (1, 2)]
        config = TransportConfig(min_rto=1e-3)
        topo.network.set_transport_config(config)
        topo.network.inject_flows(flows, transport="dctcp")
        topo.network.run(until=2.0)
        assert topo.switch.stats.dropped_packets > 0
        assert topo.network.flow_stats.completion_fraction() == 1.0
        senders = [topo.network.hosts[f.src].senders[f.flow_id] for f in flows]
        assert any(s.retransmissions > 0 for s in senders)


class TestReceiverState:
    def test_out_of_order_reassembly(self):
        spec = FlowSpec(src=0, dst=1, size_bytes=4500, start_time=0.0)
        done = []
        receiver = ReceiverState(spec, TransportConfig(mss_bytes=1500),
                                 on_complete=lambda fid, t: done.append(fid))
        def data(seq):
            return Packet(size_bytes=1540, flow_id=spec.flow_id, src=0, dst=1,
                          seq=seq, payload_bytes=1500)
        ack1 = receiver.on_data(data(1), 0.001)
        assert ack1.ack_seq == 0 and not done
        receiver.on_data(data(0), 0.002)
        ack3 = receiver.on_data(data(2), 0.003)
        assert ack3.ack_seq == 3
        assert done == [spec.flow_id]

    def test_ecn_echoed_in_ack(self):
        spec = FlowSpec(src=0, dst=1, size_bytes=1500, start_time=0.0)
        receiver = ReceiverState(spec, TransportConfig(),
                                 on_complete=lambda fid, t: None)
        pkt = Packet(size_bytes=1540, flow_id=spec.flow_id, seq=0, payload_bytes=1500)
        pkt.ecn_marked = True
        ack = receiver.on_data(pkt, 0.0)
        assert ack.ecn_echo and ack.is_ack


class TestTopologies:
    def test_dumbbell_cross_traffic_completes(self):
        topo = DumbbellTopology(num_pairs=2, manager_factory=lambda: CompleteSharing(),
                                edge_rate_bps=10 * GBPS)
        flows = [FlowSpec(src=s, dst=r, size_bytes=60_000, start_time=0.0)
                 for s, r in zip(topo.senders, topo.receivers, strict=True)]
        topo.network.inject_flows(flows, transport="dctcp")
        topo.network.run(until=1.0)
        assert topo.network.flow_stats.completion_fraction() == 1.0

    def test_leaf_spine_structure(self):
        topo = LeafSpineTopology(lambda: DynamicThreshold(), num_leaves=2,
                                 num_spines=2, hosts_per_leaf=3)
        assert topo.num_hosts == 6
        assert len(topo.leaves) == 2 and len(topo.spines) == 2
        assert topo.hosts_of_leaf(0) == [0, 1, 2]
        # Every leaf has ECMP uplinks registered.
        for leaf in topo.leaves:
            assert len(leaf.routing.uplinks) == 2

    def test_leaf_spine_cross_leaf_flow_completes(self):
        topo = LeafSpineTopology(lambda: DynamicThreshold(alpha=2.0), num_leaves=2,
                                 num_spines=2, hosts_per_leaf=2,
                                 link_rate_bps=10 * GBPS,
                                 ecn_threshold_bytes=30 * KB)
        # Host 0 is on leaf 0, host 3 on leaf 1.
        spec = FlowSpec(src=0, dst=3, size_bytes=100_000, start_time=0.0)
        topo.network.inject_flows([spec], transport="dctcp")
        topo.network.run(until=1.0)
        assert topo.network.flow_stats.completion_fraction() == 1.0
        # The flow crossed at least one spine switch.
        spine_traffic = sum(s.stats.transmitted_packets for s in topo.spines)
        assert spine_traffic > 0

    def test_occamy_in_network_expels_and_completes(self):
        topo = SingleSwitchTopology(
            num_hosts=5, manager_factory=lambda: Occamy(alpha=8.0),
            link_rate_bps=10 * GBPS, buffer_bytes=60 * KB,
        )
        flows = [FlowSpec(src=s, dst=0, size_bytes=120_000, start_time=0.0,
                          priority=0)
                 for s in (1, 2, 3, 4)]
        topo.network.set_transport_config(TransportConfig(min_rto=1e-3))
        topo.network.inject_flows(flows, transport="dctcp")
        topo.network.run(until=2.0)
        assert topo.network.flow_stats.completion_fraction() == 1.0

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            SingleSwitchTopology(1, lambda: CompleteSharing())
        with pytest.raises(ValueError):
            LeafSpineTopology(lambda: CompleteSharing(), num_leaves=1)
        with pytest.raises(ValueError):
            DumbbellTopology(0, lambda: CompleteSharing())
