"""Tests for unit helpers and the seeded RNG."""

import pytest

from repro.sim.rng import SeededRNG
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    US,
    bits_to_bytes,
    bytes_to_bits,
    rate_to_bytes_per_sec,
    transmission_time,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * 1024
        assert GBPS == 1_000_000_000
        assert US == pytest.approx(1e-6)

    def test_bits_bytes_roundtrip(self):
        assert bytes_to_bits(100) == 800
        assert bits_to_bytes(800) == 100
        assert bits_to_bytes(bytes_to_bits(12345)) == 12345

    def test_rate_conversion(self):
        assert rate_to_bytes_per_sec(8 * GBPS) == 1e9

    def test_transmission_time(self):
        # 1500 bytes at 10 Gbps = 1.2 microseconds.
        assert transmission_time(1500, 10 * GBPS) == pytest.approx(1.2e-6)

    def test_transmission_time_requires_positive_rate(self):
        with pytest.raises(ValueError):
            transmission_time(1500, 0)


class TestSeededRNG:
    def test_same_seed_same_sequence(self):
        a = SeededRNG(42)
        b = SeededRNG(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = SeededRNG(1)
        b = SeededRNG(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_streams_are_reproducible_and_independent(self):
        a_child = SeededRNG(7).child("traffic")
        b_child = SeededRNG(7).child("traffic")
        other = SeededRNG(7).child("other")
        seq_a = [a_child.random() for _ in range(5)]
        seq_b = [b_child.random() for _ in range(5)]
        seq_other = [other.random() for _ in range(5)]
        assert seq_a == seq_b
        assert seq_a != seq_other

    def test_expovariate_positive(self):
        rng = SeededRNG(3)
        assert all(rng.expovariate(100.0) > 0 for _ in range(100))

    def test_poisson_interarrivals_requires_positive_rate(self):
        rng = SeededRNG(0)
        with pytest.raises(ValueError):
            next(rng.poisson_interarrivals(0))

    def test_poisson_interarrival_mean(self):
        rng = SeededRNG(5)
        gen = rng.poisson_interarrivals(1000.0)
        samples = [next(gen) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(1e-3, rel=0.1)

    def test_sample_and_choice(self):
        rng = SeededRNG(9)
        population = list(range(20))
        picked = rng.sample(population, 5)
        assert len(set(picked)) == 5
        assert rng.choice(population) in population
