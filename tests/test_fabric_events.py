"""Tests for the mid-run fabric event timeline (``fabric.events``).

Covers spec-time validation (normalization, shorthand, the failure state
machine), static endpoint resolution through ``python -m repro.scenario
validate``, the network-level repair path (``Link.set_failed(False)``
restore + ECMP member re-inclusion under live traffic), and the end-to-end
fail -> repair scenario: a finite recovery time in the result document and a
frozen packet counter across the failure window.
"""

import json
from pathlib import Path

import pytest

from repro.scenario import LoadBalancerSpec, ScenarioSpec, run_scenario
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import FabricSpec, normalize_fabric_event
from repro.scenario.timeline import PROBE_SLOTS, RECOVERY_THRESHOLD
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
DEGRADED_EXAMPLE = EXAMPLES_DIR / "scenario_fattree_degraded.json"


# ----------------------------------------------------------------------
# Event normalization: canonical + shorthand in, canonical out
# ----------------------------------------------------------------------
class TestNormalizeFabricEvent:
    def test_canonical_shape_passes_through(self):
        event = normalize_fabric_event(
            {"t": 0.001, "action": "fail", "link": ["agg0_0", "core1"]})
        assert event == {"t": 0.001, "action": "fail",
                         "link": ["agg0_0", "core1"]}

    def test_shorthand_is_normalized(self):
        assert normalize_fabric_event(
            {"t": 0.002, "repair": ("agg0_0", "core1")}) == {
            "t": 0.002, "action": "repair", "link": ["agg0_0", "core1"]}

    def test_degrade_requires_factor(self):
        event = normalize_fabric_event(
            {"t": 0.0, "degrade": ["edge0_0", "agg0_0"], "factor": 0.5})
        assert event["factor"] == 0.5
        with pytest.raises(ValueError, match="need a 'factor'"):
            normalize_fabric_event({"t": 0.0, "degrade": ["a", "b"]})

    def test_factor_rejected_on_non_degrade(self):
        with pytest.raises(ValueError, match="only applies to degrade"):
            normalize_fabric_event(
                {"t": 0.0, "fail": ["a", "b"], "factor": 0.5})

    def test_factor_range_enforced(self):
        with pytest.raises(ValueError, match=r"in \(0, 1\]"):
            normalize_fabric_event(
                {"t": 0.0, "degrade": ["a", "b"], "factor": 1.5})

    def test_two_actions_rejected(self):
        with pytest.raises(ValueError, match="two actions"):
            normalize_fabric_event(
                {"t": 0.0, "fail": ["a", "b"], "repair": ["a", "b"]})

    def test_missing_action_and_missing_t_rejected(self):
        with pytest.raises(ValueError, match="need an action"):
            normalize_fabric_event({"t": 0.0, "link": ["a", "b"]})
        with pytest.raises(ValueError, match="no timestamp"):
            normalize_fabric_event({"fail": ["a", "b"]})

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_fabric_event({"t": -1e-6, "fail": ["a", "b"]})

    def test_malformed_link_rejected(self):
        with pytest.raises(ValueError, match="endpoint pair"):
            normalize_fabric_event({"t": 0.0, "fail": ["only_one"]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fabric.events keys"):
            normalize_fabric_event(
                {"t": 0.0, "fail": ["a", "b"], "reason": "typo"})


# ----------------------------------------------------------------------
# The timeline state machine at spec build time
# ----------------------------------------------------------------------
class TestFabricSpecEventValidation:
    def test_unsorted_timeline_rejected(self):
        fabric = FabricSpec(events=[
            {"t": 0.002, "fail": ["a", "b"]},
            {"t": 0.001, "repair": ["a", "b"]},
        ])
        with pytest.raises(ValueError, match="sorted by timestamp"):
            fabric.validate()

    def test_double_fail_rejected(self):
        fabric = FabricSpec(events=[
            {"t": 0.001, "fail": ["a", "b"]},
            {"t": 0.002, "fail": ["b", "a"]},  # same pair, either order
        ])
        with pytest.raises(ValueError, match="already failed"):
            fabric.validate()

    def test_repair_of_never_failed_link_rejected(self):
        fabric = FabricSpec(events=[{"t": 0.001, "repair": ["a", "b"]}])
        with pytest.raises(ValueError, match="not failed at that point"):
            fabric.validate()

    def test_initial_failures_seed_the_state_machine(self):
        fabric = FabricSpec(failures=[["a", "b"]],
                            events=[{"t": 0.001, "repair": ["b", "a"]}])
        fabric.validate()  # repair of a t=0 failure is legal
        assert fabric.events == [
            {"t": 0.001, "action": "repair", "link": ["b", "a"]}]

    def test_fail_repair_fail_cycle_is_legal(self):
        fabric = FabricSpec(events=[
            {"t": 0.001, "fail": ["a", "b"]},
            {"t": 0.002, "repair": ["a", "b"]},
            {"t": 0.003, "fail": ["a", "b"]},
        ])
        fabric.validate()

    def test_default_omission_keeps_hashes(self):
        # An empty timeline must not perturb any pre-timeline document.
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        assert "events" not in spec.to_dict()["fabric"]
        with_events = ScenarioSpec.from_dict(spec.to_dict())
        with_events.fabric.events = [{"t": 0.001, "fail": ["agg0_0", "core2"]}]
        assert with_events.config_hash() != spec.config_hash()
        assert "events" in with_events.to_dict()["fabric"]


# ----------------------------------------------------------------------
# Static endpoint resolution (CLI validate path) and level gating
# ----------------------------------------------------------------------
def _events_doc(events) -> dict:
    doc = ScenarioSpec.from_file(DEGRADED_EXAMPLE).to_dict()
    doc["fabric"].pop("failures", None)
    doc["fabric"].pop("degraded", None)
    doc["fabric"]["events"] = events
    return doc


class TestEventResolution:
    def test_unknown_endpoint_fails_cli_validation(self, tmp_path):
        from repro.scenario.experiment import validate_spec_file

        path = tmp_path / "bad_events.json"
        path.write_text(json.dumps(_events_doc(
            [{"t": 0.001, "fail": ["agg9_9", "core1"]}])))
        with pytest.raises(ValueError, match="agg9_9"):
            validate_spec_file(str(path))

    def test_failing_host_link_rejected(self, tmp_path):
        from repro.scenario.experiment import validate_spec_file

        path = tmp_path / "host_fail.json"
        path.write_text(json.dumps(_events_doc(
            [{"t": 0.001, "fail": ["h0", "edge0_0"]}])))
        with pytest.raises(ValueError, match="partition the host"):
            validate_spec_file(str(path))

    def test_events_need_network_level_topology(self):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        spec.topology.kind = "raw_switch"
        spec.fabric = FabricSpec(events=[{"t": 0.001, "fail": ["a", "b"]}])
        with pytest.raises(ValueError, match="network-level topology"):
            ScenarioRunner().validate(spec)

    def test_lb_needs_network_level_topology(self):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        spec.topology.kind = "raw_switch"
        spec.fabric = FabricSpec()
        spec.lb = LoadBalancerSpec("flowlet")
        with pytest.raises(ValueError, match="network-level topology"):
            ScenarioRunner().validate(spec)


# ----------------------------------------------------------------------
# Mid-run repair at the network layer, under live traffic
# ----------------------------------------------------------------------
def _fail_repair_spec(lb=None, t_fail=0.0008, t_repair=0.0024) -> ScenarioSpec:
    doc = _events_doc([
        {"t": t_fail, "fail": ["agg0_0", "core1"]},
        {"t": t_repair, "repair": ["agg0_0", "core1"]},
    ])
    spec = ScenarioSpec.from_dict(doc)
    if lb is not None:
        spec.lb = LoadBalancerSpec(lb)
    return spec


def _run(spec) -> object:
    reset_workload_ids()
    return run_scenario(spec)


class TestMidRunRepair:
    def test_failed_pair_carries_zero_packets_during_window(self):
        result = _run(_fail_repair_spec())
        applied = result.timeline.applied
        by_action = {record["action"]: record for record in applied}
        assert by_action["fail"]["packets_carried_at_fail"] == \
            by_action["repair"]["packets_carried_at_repair"]

    def test_repaired_members_carry_traffic_again(self):
        result = _run(_fail_repair_spec())
        network = result.topology.network
        forward, backward = network.link_pair("agg0_0", "core1")
        carried_at_repair = result.timeline.applied[-1][
            "packets_carried_at_repair"]
        total = forward.link.packets_carried + backward.link.packets_carried
        # The pair re-entered the ECMP candidate sets and moved packets
        # after its repair; nothing was blackholed post-repair either.
        assert total > carried_at_repair
        assert network.failed_links == []
        assert forward.link.failed is False and backward.link.failed is False

    def test_exclusions_cleared_and_uplinks_reenabled_after_repair(self):
        result = _run(_fail_repair_spec())
        for node in result.topology.network.switch_nodes.values():
            table = node.routing
            assert not table._disabled
            assert not table._excluded

    def test_recovery_time_is_finite_and_reported(self):
        result = _run(_fail_repair_spec())
        document = result.to_dict()
        assert "fabric_events" in document
        section = document["fabric_events"]
        assert section["threshold"] == RECOVERY_THRESHOLD
        horizon = result.spec.duration * result.spec.run_slack
        assert section["window"] == pytest.approx(horizon / PROBE_SLOTS)
        (watch,) = section["recovery"]
        assert watch["recovery_time"] is not None
        assert 0 < watch["recovery_time"] < horizon
        assert watch["recovered_at"] == pytest.approx(
            watch["t_fail"] + watch["recovery_time"])
        row = result.summary_row()
        assert row["recovery_ms"] == pytest.approx(
            watch["recovery_time"] * 1e3)

    def test_recovery_probes_do_not_perturb_event_counts(self):
        # Two timelines that differ only in probe activity (a watch exists
        # only after a fail) must report event totals that reflect traffic
        # plus the applied events -- the read-only probes are subtracted.
        result = _run(_fail_repair_spec())
        assert result.timeline.ticks > 0
        assert result.events_executed > 0

    def test_repair_without_failure_raises_mid_run(self):
        result = _run(ScenarioSpec.from_dict(_events_doc([])))
        network = result.topology.network
        with pytest.raises(ValueError, match="repair only follows fail"):
            network.repair_link("agg0_0", "core1")

    def test_works_under_every_lb_policy(self):
        # Rerouting on fail + re-inclusion on repair is policy-independent:
        # flowlet tables drop dead cached ports, spray/drill see the
        # refreshed candidate list, and every run stays loss-consistent.
        for policy in ("flowlet", "drill", "spray"):
            result = _run(_fail_repair_spec(lb=policy))
            by_action = {r["action"]: r for r in result.timeline.applied}
            assert by_action["fail"]["packets_carried_at_fail"] == \
                by_action["repair"]["packets_carried_at_repair"], policy
            (recovery,) = result.timeline.recovery_times()
            assert recovery is not None, policy


# ----------------------------------------------------------------------
# Determinism: the timeline document is part of the result contract
# ----------------------------------------------------------------------
def test_fail_repair_run_byte_identical_in_process():
    def run_to_json() -> str:
        reset_workload_ids()
        return json.dumps(run_scenario(_fail_repair_spec()).to_dict(),
                          sort_keys=True)

    assert run_to_json() == run_to_json()


def test_campaign_axis_sweeps_fabric_events():
    # The campaign example's axes drive events through set_by_path: the
    # no-events cell omits the section, the fail+repair cell reports it.
    from repro.campaign.spec import SweepSpec

    with open(EXAMPLES_DIR / "campaign_lb_recovery.json") as handle:
        sweep = SweepSpec.from_dict(json.load(handle))
    runs = sweep.expand()
    assert len(runs) == 32  # 2 seeds x 2 schemes x 4 lbs x 2 timelines
    documents = [run.params["scenario"] for run in runs]
    with_events = [doc for doc in documents if doc["fabric"]["events"]]
    assert len(with_events) == len(documents) // 2
    lbs = {json.dumps(doc.get("lb"), sort_keys=True) for doc in documents}
    assert len(lbs) == 4  # one document shape per swept lb.name value
