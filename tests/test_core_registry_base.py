"""Tests for the scheme registry and BufferManager base plumbing."""

import pytest

from repro.core import (
    ABM,
    BufferManager,
    DynamicThreshold,
    Occamy,
    Pushout,
    available_schemes,
    make_buffer_manager,
    register_scheme,
)
from repro.core.base import AdmissionDecision, EvictionRequest, clamp_threshold
from repro.sim import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig


class TestRegistry:
    def test_builtin_schemes_present(self):
        names = available_schemes()
        for expected in ("dt", "abm", "occamy", "pushout", "complete_sharing"):
            assert expected in names

    def test_make_buffer_manager_with_kwargs(self):
        manager = make_buffer_manager("dt", alpha=4.0)
        assert isinstance(manager, DynamicThreshold)
        assert manager.alpha == 4.0

    def test_make_each_builtin(self):
        for name in available_schemes():
            manager = make_buffer_manager(name)
            assert isinstance(manager, BufferManager)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_buffer_manager("not_a_scheme")

    def test_register_custom_scheme(self):
        class MyScheme(DynamicThreshold):
            name = "my_scheme"

        register_scheme("my_scheme", MyScheme)
        assert "my_scheme" in available_schemes()
        assert isinstance(make_buffer_manager("my_scheme"), MyScheme)

    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_scheme("", DynamicThreshold)


class TestBaseHelpers:
    def test_clamp_threshold(self):
        assert clamp_threshold(-5) == 0.0
        assert clamp_threshold(float("nan")) == 0.0
        assert clamp_threshold(7.5) == 7.5

    def test_admission_decision_defaults(self):
        decision = AdmissionDecision(True)
        assert decision.accept and decision.evictions == [] and decision.reason == ""

    def test_eviction_request_fields(self):
        req = EvictionRequest(queue_id=3, from_head=True, max_bytes=1500)
        assert req.queue_id == 3 and req.from_head and req.max_bytes == 1500

    def test_attach_detach(self):
        sim = Simulator()
        config = SwitchConfig(num_ports=2, port_rate_bps=10 * GBPS,
                              buffer_bytes=100 * KB)
        dt = DynamicThreshold()
        switch = SharedMemorySwitch(config, dt, sim)
        assert dt.switch is switch
        dt.detach()
        assert dt.switch is None

    def test_over_allocated_definition(self):
        sim = Simulator()
        config = SwitchConfig(num_ports=2, port_rate_bps=10 * GBPS,
                              buffer_bytes=100 * KB)
        dt = DynamicThreshold(alpha=1.0)
        switch = SharedMemorySwitch(config, dt, sim)
        q0 = switch.queue_for(0)
        assert not dt.over_allocated(q0, 0.0)
        # Fill queue 0 up to its threshold, then grow queue 1: the shrinking
        # free buffer lowers the threshold below queue 0's length, making it
        # over-allocated exactly as in Figure 3(b).
        for _ in range(40):
            switch.receive(Packet(size_bytes=1500), 0)
        for _ in range(20):
            switch.receive(Packet(size_bytes=1500), 1)
        assert dt.over_allocated(q0, 0.0)

    def test_effective_alpha_override(self):
        dt = DynamicThreshold(alpha=1.0)
        sim = Simulator()
        config = SwitchConfig(num_ports=2, port_rate_bps=10 * GBPS,
                              buffer_bytes=100 * KB)
        switch = SharedMemorySwitch(config, dt, sim)
        queue = switch.queue_for(0)
        assert dt.effective_alpha(queue, 1.0) == 1.0
        queue.alpha_override = 8.0
        assert dt.effective_alpha(queue, 1.0) == 8.0

    def test_repr_and_describe(self):
        for manager in (DynamicThreshold(), ABM(), Occamy(), Pushout()):
            assert manager.name in repr(manager) or manager.name in manager.describe()
