"""Tests for the campaign subsystem: specs, hashing, store, executor, CLI.

The executor/CLI tests run real (tiny, ``bench``-scale) experiments so they
cover the full stack; the aggregation tests use synthetic store entries.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignExecutor,
    GridSpec,
    ResultStore,
    RunSpec,
    StoreEntry,
    SweepSpec,
    campaign_report,
    execute_run,
    numeric_columns,
    scheme_deltas,
    scheme_summary,
    tagged_rows,
)
from repro.campaign.cli import main as campaign_main
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import run_all, run_experiment, specs_for_all


def _dying_worker_payload(payload):
    """Stand-in for a worker killed mid-run (referenced by fork children)."""
    time.sleep(0.15)
    os._exit(1)


class TestExperimentResultRoundTrip:
    def test_to_dict_from_dict_lossless(self):
        result = ExperimentResult("demo", notes="a note")
        result.add_row(scheme="occamy", value=1.5, count=3, healthy=True, label="x")
        result.add_row(scheme="dt", value=0.25, count=0, healthy=False, label="y")
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.experiment == result.experiment
        assert rebuilt.notes == result.notes
        assert rebuilt.rows == result.rows

    def test_round_trip_through_json(self):
        result = ExperimentResult("demo")
        result.add_row(a=1, b=2.5, c="s", d=True, e=None)
        rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.rows == result.rows
        assert type(rebuilt.rows[0]["a"]) is int
        assert type(rebuilt.rows[0]["b"]) is float

    def test_corrupt_payload_fails_loudly(self):
        # A non-empty payload without an experiment name is a corrupt store
        # entry and must raise on resume, not rebuild as a nameless result.
        with pytest.raises(KeyError):
            ExperimentResult.from_dict({"rows": [{"a": 1}]})
        # A bare {} is a legitimately empty artifact, not corruption.
        empty = ExperimentResult.from_dict({})
        assert empty.experiment == ""
        assert empty.rows == []

    def test_to_dict_copies_rows(self):
        result = ExperimentResult("demo")
        result.add_row(a=1)
        data = result.to_dict()
        data["rows"][0]["a"] = 99
        assert result.rows[0]["a"] == 1


class TestConfigHashing:
    def test_same_spec_same_hash(self):
        a = RunSpec("fig13", scale="bench", seed=3, params={"background_load": 0.5})
        b = RunSpec("fig13", scale="bench", seed=3, params={"background_load": 0.5})
        assert a.config_hash() == b.config_hash()

    def test_param_order_does_not_matter(self):
        a = RunSpec("fig13", params={"x": 1, "y": 2})
        b = RunSpec("fig13", params={"y": 2, "x": 1})
        assert a.config_hash() == b.config_hash()

    def test_changed_override_changes_hash(self):
        base = RunSpec("fig13", scale="bench", seed=0, params={"background_load": 0.5})
        assert base.config_hash() != RunSpec(
            "fig13", scale="bench", seed=0, params={"background_load": 0.6}
        ).config_hash()
        assert base.config_hash() != RunSpec(
            "fig13", scale="bench", seed=1, params={"background_load": 0.5}
        ).config_hash()
        assert base.config_hash() != RunSpec(
            "fig13", scale="small", seed=0, params={"background_load": 0.5}
        ).config_hash()
        assert base.config_hash() != RunSpec(
            "fig17", scale="bench", seed=0, params={"background_load": 0.5}
        ).config_hash()

    def test_hash_stable_across_processes(self):
        spec = RunSpec("fig13", scale="bench", seed=7, params={"schemes": ["dt"]})
        script = (
            "from repro.campaign.spec import RunSpec;"
            "print(RunSpec('fig13', scale='bench', seed=7,"
            " params={'schemes': ['dt']}).config_hash())"
        )
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src_dir, "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == spec.config_hash()


class TestSweepSpec:
    def make_spec(self):
        return SweepSpec(
            "s",
            [
                GridSpec(
                    experiments=["fig13"],
                    scales=["bench"],
                    seeds=[0, 1],
                    params={"schemes": [["occamy"], ["dt"]], "background_load": [0.3, 0.7]},
                )
            ],
        )

    def test_grid_expansion_is_cartesian(self):
        runs = self.make_spec().expand()
        assert len(runs) == 8  # 2 seeds x 2 scheme lists x 2 loads
        assert len({r.config_hash() for r in runs}) == 8

    def test_json_round_trip(self):
        spec = self.make_spec()
        rebuilt = SweepSpec.from_json(json.dumps(spec.to_dict()))
        assert [r.config_hash() for r in rebuilt.expand()] == [
            r.config_hash() for r in spec.expand()
        ]

    def test_expand_dedupes_overlapping_grids(self):
        grid = GridSpec(experiments=["table1"], seeds=[0])
        spec = SweepSpec("dup", [grid, grid])
        assert len(spec.expand()) == 1

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.make_spec().to_dict()))
        assert len(SweepSpec.from_file(path).expand()) == 8

    def test_single_wraps_run_specs(self):
        runs = [RunSpec("fig13", seed=4, params={"background_load": 0.1})]
        spec = SweepSpec.single("wrapped", runs)
        assert [r.config_hash() for r in spec.expand()] == [runs[0].config_hash()]

    def test_grid_requires_experiments(self):
        with pytest.raises(ValueError):
            GridSpec.from_dict({"seeds": [0]})

    def test_grid_rejects_bare_strings(self):
        with pytest.raises(ValueError, match="experiments must be a list"):
            GridSpec.from_dict({"experiments": "fig13"})
        with pytest.raises(ValueError, match="scales must be a list"):
            GridSpec.from_dict({"experiments": ["fig13"], "scales": "bench"})
        with pytest.raises(ValueError, match="params"):
            GridSpec.from_dict(
                {"experiments": ["fig13"], "params": {"background_load": 0.5}}
            )


def make_entry(experiment="fig13", seed=0, scheme="occamy", value=1.0, status="ok"):
    result = ExperimentResult(experiment)
    result.add_row(scheme=scheme, avg_qct_ms=value, label="x")
    return StoreEntry(
        spec=RunSpec(experiment, scale="bench", seed=seed, params={"schemes": [scheme]}),
        status=status,
        elapsed=0.1,
        result=result if status == "ok" else None,
        error=None if status == "ok" else "boom",
    )


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        entry = make_entry()
        path = store.save(entry)
        assert path.exists()
        loaded = store.load(entry.config_hash)
        assert loaded is not None
        assert loaded.ok
        assert loaded.spec.to_dict() == entry.spec.to_dict()
        assert loaded.result.rows == entry.result.rows

    def test_completed_only_for_ok(self, tmp_path):
        store = ResultStore(tmp_path)
        ok = make_entry(seed=0)
        failed = make_entry(seed=1, status="failed")
        store.save(ok)
        store.save(failed)
        assert store.completed(ok.config_hash)
        assert not store.completed(failed.config_hash)
        assert store.load("0" * 16) is None
        assert store.status_counts() == {"ok": 1, "failed": 1}

    def test_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_entry(seed=0))
        store.save(make_entry(seed=1, status="failed"))
        assert store.clean(failed_only=True) == 1
        assert store.status_counts() == {"ok": 1}
        assert store.clean() == 1
        assert store.status_counts() == {}

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nope")
        assert list(store.entries()) == []
        assert store.status_counts() == {}

    def test_empty_metrics_result_round_trips(self, tmp_path):
        # Regression: ``result=... if result else None`` in from_dict dropped
        # legitimately empty result payloads on resume -- an ok run with no
        # rows must come back as an (empty) result, never as None.
        store = ResultStore(tmp_path)
        entry = make_entry()
        entry.result = ExperimentResult("fig13")  # ok status, zero rows
        store.save(entry)
        loaded = store.load(entry.config_hash)
        assert loaded.ok
        assert loaded.result is not None
        assert loaded.result.rows == []

    def test_falsy_result_dict_not_dropped(self):
        # Even a bare ``{}`` result payload (falsy!) must rebuild into an
        # empty ExperimentResult rather than be silently replaced by None.
        document = make_entry().to_dict()
        document["result"] = {}
        loaded = StoreEntry.from_dict(document)
        assert loaded.result is not None
        assert loaded.result.rows == []
        # An absent result is still genuinely None.
        document["result"] = None
        assert StoreEntry.from_dict(document).result is None


class TestExecutor:
    def test_execute_run_failure_captured(self):
        outcome = execute_run(RunSpec("fig99"))
        assert outcome.status == "failed"
        assert not outcome.ok
        assert "fig99" in outcome.error
        assert outcome.traceback

    def test_bad_param_failure_captured(self):
        outcome = execute_run(RunSpec("table1", params={"bogus_kwarg": 1}))
        assert outcome.status == "failed"
        assert "TypeError" in outcome.error

    def test_failure_does_not_abort_campaign(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [RunSpec("fig99"), RunSpec("table1")]
        outcomes = CampaignExecutor(store=store).run(specs)
        assert [o.status for o in outcomes] == ["failed", "ok"]
        assert store.status_counts() == {"ok": 1, "failed": 1}

    def test_fail_fast_stops_after_first_failure(self):
        specs = [RunSpec("table1", seed=0), RunSpec("fig99"), RunSpec("table1", seed=1)]
        outcomes = CampaignExecutor().run(specs, fail_fast=True)
        assert [o.status for o in outcomes] == ["ok", "failed"]  # third never ran

    def test_serial_run_persists_artifacts(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [RunSpec("table1", seed=s) for s in (0, 1)]
        outcomes = CampaignExecutor(store=store).run(specs)
        assert all(o.status == "ok" for o in outcomes)
        for spec in specs:
            assert store.path_for(spec.config_hash()).exists()

    def test_resume_skips_completed(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store)
        specs = [RunSpec("table1", seed=s) for s in (0, 1)]
        first = executor.run(specs, resume=True)
        assert [o.status for o in first] == ["ok", "ok"]
        second = executor.run(specs, resume=True)
        assert [o.status for o in second] == ["cached", "cached"]
        assert second[0].result.rows  # cached result loaded back from disk

    def test_resume_retries_failures(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store)
        bad = RunSpec("fig99")
        executor.run([bad])
        retry = executor.run([bad], resume=True)
        assert retry[0].status == "failed"  # re-attempted, not served from cache

    def test_without_resume_reruns(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store)
        spec = RunSpec("table1")
        executor.run([spec])
        again = executor.run([spec])
        assert again[0].status == "ok"

    def test_progress_callback_sees_every_run(self, tmp_path):
        seen = []
        specs = [RunSpec("table1", seed=s) for s in (0, 1, 2)]
        CampaignExecutor().run(
            specs, progress=lambda done, total, o: seen.append((done, total, o.status))
        )
        assert seen == [(1, 3, "ok"), (2, 3, "ok"), (3, 3, "ok")]

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            CampaignExecutor(jobs=0)

    def test_fail_fast_drains_completed_parallel_runs(self, tmp_path):
        """Runs in flight when a fail_fast failure surfaces must still be
        recorded: shutdown waits for them, and the drain loop persists
        them -- otherwise --resume would silently re-simulate finished-ok
        runs whose outcome was simply never consumed."""
        store = ResultStore(tmp_path)
        spec_doc = json.loads(
            (Path(__file__).parent.parent / "examples" /
             "scenario_dumbbell_burst.json").read_text())
        spec_doc["duration"] = 0.002
        specs = [
            RunSpec("scenario", scale="-", seed=0,
                    params={"scenario": spec_doc}),
            RunSpec("fig99"),  # fails almost instantly
        ]
        outcomes = CampaignExecutor(store=store, jobs=2).run(
            specs, fail_fast=True)
        # Both runs come back and both are persisted, regardless of which
        # completion order the pool produced.
        assert len(outcomes) == 2
        assert store.status_counts() == {"ok": 1, "failed": 1}
        for outcome in outcomes:
            assert store.load(outcome.spec.config_hash()) is not None

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="crasher patch reaches workers via fork inheritance")
    def test_worker_death_outcome_carries_elapsed_and_traceback(
            self, monkeypatch):
        """A worker that dies mid-run (OOM kill, segfault) must produce a
        failed outcome with the wall time since submission and the
        pool-side traceback -- not elapsed=0.0 and traceback=None."""
        from repro.campaign import executor as executor_module

        monkeypatch.setattr(executor_module, "_execute_run_payload",
                            _dying_worker_payload)
        outcomes = CampaignExecutor(jobs=2).run(
            [RunSpec("table1", seed=s) for s in (0, 1)])
        assert [o.status for o in outcomes] == ["failed", "failed"]
        for outcome in outcomes:
            assert "BrokenProcessPool" in outcome.error
            assert outcome.elapsed >= 0.1
            assert outcome.traceback is not None

    @pytest.mark.slow
    def test_parallel_matches_serial(self, tmp_path):
        specs = [
            RunSpec("fig13", scale="bench", seed=s, params={"schemes": [sch]})
            for s in (0, 1)
            for sch in ("occamy", "dt")
        ]
        serial = CampaignExecutor(jobs=1).run(specs)
        parallel = CampaignExecutor(jobs=2).run(specs)
        assert [o.spec.config_hash() for o in serial] == [
            o.spec.config_hash() for o in parallel
        ]
        for s, p in zip(serial, parallel, strict=True):
            assert s.status == p.status == "ok"
            assert json.dumps(s.result.rows, sort_keys=True) == json.dumps(
                p.result.rows, sort_keys=True
            )


class TestAggregation:
    def entries(self):
        return [
            make_entry(seed=0, scheme="occamy", value=1.0),
            make_entry(seed=1, scheme="occamy", value=2.0),
            make_entry(seed=0, scheme="dt", value=4.0),
            make_entry(seed=1, scheme="dt", value=6.0),
            make_entry(seed=2, scheme="dt", status="failed"),
        ]

    def test_tagged_rows_skip_failures(self):
        rows = tagged_rows(self.entries())
        assert len(rows) == 4
        assert {r["_seed"] for r in rows} == {0, 1}
        assert all(r["_experiment"] == "fig13" for r in rows)

    def test_numeric_columns_exclude_tags_strings_bools(self):
        rows = tagged_rows(self.entries())
        rows[0]["flag"] = True
        assert numeric_columns(rows) == ["avg_qct_ms"]

    def test_scheme_summary(self):
        summary = scheme_summary(tagged_rows(self.entries()), "avg_qct_ms")
        by_scheme = {r["scheme"]: r for r in summary.rows}
        assert by_scheme["occamy"]["mean"] == pytest.approx(1.5)
        assert by_scheme["dt"]["mean"] == pytest.approx(5.0)
        assert by_scheme["dt"]["count"] == 2

    def test_scheme_deltas_against_baseline(self):
        deltas = scheme_deltas(tagged_rows(self.entries()), "avg_qct_ms", baseline="dt")
        by_scheme = {r["scheme"]: r for r in deltas.rows}
        assert by_scheme["dt"]["delta"] == 0
        assert by_scheme["occamy"]["delta"] == pytest.approx(-3.5)
        assert by_scheme["occamy"]["delta_pct"] == pytest.approx(-70.0)

    def test_scheme_deltas_unknown_baseline(self):
        with pytest.raises(KeyError):
            scheme_deltas(tagged_rows(self.entries()), "avg_qct_ms", baseline="abm")

    def test_campaign_report_from_store_only(self, tmp_path):
        store = ResultStore(tmp_path)
        for entry in self.entries():
            store.save(entry)
        report = campaign_report(store, metric="avg_qct_ms", baseline="dt")
        assert len(report.tables) == 2  # summary + deltas for fig13
        assert report.warnings == []
        text = "\n".join(str(t) for t in report.tables)
        assert "occamy" in text and "dt" in text
        assert "summary[avg_qct_ms]" in text and "deltas[avg_qct_ms]" in text

    def test_campaign_report_unknown_metric_warns_not_substitutes(self, tmp_path):
        store = ResultStore(tmp_path)
        for entry in self.entries():
            store.save(entry)
        report = campaign_report(store, metric="avg_qct")  # typo
        assert report.tables == []
        assert any("avg_qct" in w for w in report.warnings)

    def test_campaign_report_unknown_baseline_warns_not_substitutes(self, tmp_path):
        store = ResultStore(tmp_path)
        for entry in self.entries():
            store.save(entry)
        report = campaign_report(store, baseline="abm")
        assert report.tables == []
        assert any("abm" in w for w in report.warnings)


class TestRunnerIntegration:
    def test_specs_for_all_shared_seed_by_default(self):
        specs = specs_for_all(scale="bench", seed=5, names=["fig03", "fig11", "table1"])
        assert [s.seed for s in specs] == [5, 5, 5]

    def test_specs_for_all_vary_seed_offsets_by_index(self):
        specs = specs_for_all(
            scale="bench", seed=5, names=["fig03", "fig11", "table1"], vary_seed=True
        )
        assert [s.seed for s in specs] == [5, 6, 7]
        assert [s.experiment for s in specs] == ["fig03", "fig11", "table1"]

    def test_run_all_raises_on_failure(self):
        with pytest.raises(RuntimeError, match="fig99"):
            run_all(names=["fig99"])

    def test_run_experiment_deterministic_within_process(self):
        a = run_experiment("fig03", scale="bench")
        b = run_experiment("fig03", scale="bench")
        assert json.dumps(a.rows, sort_keys=True) == json.dumps(b.rows, sort_keys=True)

    @pytest.mark.slow
    def test_run_all_parallel_matches_serial(self):
        names = ["fig03", "fig12"]
        serial = run_all(scale="bench", names=names, jobs=1)
        parallel = run_all(scale="bench", names=names, jobs=2)
        assert [r.experiment for r in serial] == [r.experiment for r in parallel]
        for s, p in zip(serial, parallel, strict=True):
            assert json.dumps(s.rows, sort_keys=True) == json.dumps(
                p.rows, sort_keys=True
            )


class TestCampaignCli:
    def write_spec(self, tmp_path, seeds=(0, 1)):
        spec = SweepSpec(
            "cli-test",
            [
                GridSpec(
                    experiments=["fig13"],
                    scales=["bench"],
                    seeds=list(seeds),
                    params={"schemes": [["occamy"], ["dt"]]},
                )
            ],
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path, spec

    def test_dry_run_lists_grid(self, tmp_path, capsys):
        path, spec = self.write_spec(tmp_path)
        assert campaign_main(["run", str(path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert f"{len(spec.expand())} runs" in out

    @pytest.mark.slow
    def test_run_resume_status_report_clean(self, tmp_path, capsys):
        path, spec = self.write_spec(tmp_path, seeds=(0,))
        store_dir = str(tmp_path / "store")

        assert campaign_main(["run", str(path), "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "2 ok (0 cached), 0 failed" in out
        artifacts = list((Path(store_dir) / "runs").glob("*.json"))
        assert len(artifacts) == 2  # one JSON artifact per run

        # Resume: nothing re-runs.
        assert campaign_main(["run", str(path), "--store", store_dir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 ok (2 cached), 0 failed" in out

        assert campaign_main(
            ["status", "--store", store_dir, "--spec", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "ok: 2" in out and "2/2 runs completed" in out

        assert campaign_main(
            ["report", "--store", store_dir, "--metric", "avg_qct_ms",
             "--baseline", "dt"]
        ) == 0
        out = capsys.readouterr().out
        assert "occamy" in out and "dt" in out and "deltas[avg_qct_ms]" in out

        assert campaign_main(["clean", "--store", store_dir]) == 0
        assert campaign_main(["report", "--store", store_dir]) == 1

    def test_report_empty_store(self, tmp_path, capsys):
        assert campaign_main(["report", "--store", str(tmp_path / "empty")]) == 1
        assert "no completed runs" in capsys.readouterr().out
