"""Tests for Dynamic Threshold and the static schemes."""

import math

import pytest

from repro.core import (
    CompletePartitioning,
    CompleteSharing,
    DynamicThreshold,
    StaticThreshold,
)
from repro.sim import Simulator
from repro.sim.units import GBPS, KB, MB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig


def make_switch(manager, num_ports=4, queues_per_port=1, buffer_bytes=1 * MB):
    sim = Simulator()
    config = SwitchConfig(
        num_ports=num_ports,
        queues_per_port=queues_per_port,
        port_rate_bps=10 * GBPS,
        buffer_bytes=buffer_bytes,
    )
    return SharedMemorySwitch(config, manager, sim), sim


class TestDynamicThreshold:
    def test_threshold_is_alpha_times_free_buffer(self):
        dt = DynamicThreshold(alpha=2.0)
        switch, _ = make_switch(dt, buffer_bytes=1 * MB)
        queue = switch.queue_for(0)
        assert dt.threshold(queue, 0.0) == pytest.approx(2.0 * switch.free_buffer_bytes)

    def test_threshold_shrinks_as_buffer_fills(self):
        dt = DynamicThreshold(alpha=1.0)
        switch, _ = make_switch(dt)
        queue = switch.queue_for(0)
        before = dt.threshold(queue, 0.0)
        switch.receive(Packet(size_bytes=100 * KB), 0)
        after = dt.threshold(queue, 0.0)
        assert after < before

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DynamicThreshold(alpha=0)
        with pytest.raises(ValueError):
            DynamicThreshold(alpha=-1)

    def test_per_queue_alpha_override(self):
        dt = DynamicThreshold(alpha=1.0)
        switch, _ = make_switch(dt, num_ports=2)
        q0, q1 = switch.queue_for(0), switch.queue_for(1)
        q1.alpha_override = 8.0
        assert dt.threshold(q1, 0.0) == pytest.approx(8 * dt.threshold(q0, 0.0))

    def test_negative_alpha_override_clamps_to_zero(self):
        # clamp_threshold used to absorb non-positive per-queue overrides;
        # the inlined hot path must preserve that: threshold 0, everything
        # rejected over-threshold, and empty queues never "over-allocated"
        # (a negative threshold would make the expulsion engine spin).
        dt = DynamicThreshold(alpha=1.0)
        switch, _ = make_switch(dt, num_ports=2)
        queue = switch.queue_for(0)
        queue.alpha_override = -3.0
        assert dt.threshold(queue, 0.0) == 0.0
        decision = dt.admit(queue, 100, 0.0)
        assert not decision.accept and decision.reason == "over_threshold"
        assert not dt.over_allocated(queue, 0.0)
        assert dt.over_allocated_flags(switch.queue_views(), 0.0) == [False, False]

    def test_steady_state_formulas(self):
        dt = DynamicThreshold(alpha=8.0)
        buffer_bytes = 900 * KB
        free = dt.steady_state_free_buffer(1, buffer_bytes)
        assert free == pytest.approx(buffer_bytes / 9)
        qlen = dt.steady_state_queue_length(1, buffer_bytes)
        assert qlen == pytest.approx(8 * buffer_bytes / 9)
        # Queue lengths plus free buffer account for the whole buffer.
        assert qlen + free == pytest.approx(buffer_bytes)

    def test_steady_state_validation(self):
        dt = DynamicThreshold()
        with pytest.raises(ValueError):
            dt.steady_state_free_buffer(-1, 100)
        with pytest.raises(ValueError):
            dt.steady_state_queue_length(0, 100)

    def test_admit_rejects_when_over_threshold(self):
        dt = DynamicThreshold(alpha=0.5)
        switch, _ = make_switch(dt, buffer_bytes=100 * KB)
        # Fill queue 0 close to its threshold.
        accepted = 0
        for _ in range(200):
            if switch.receive(Packet(size_bytes=1500), 0):
                accepted += 1
        # With alpha=0.5 a single queue can occupy at most 1/3 of the buffer.
        assert switch.queue_for(0).length_bytes <= 0.4 * switch.buffer_size_bytes
        assert switch.stats.dropped_packets > 0

    def test_describe_mentions_alpha(self):
        assert "8" in DynamicThreshold(alpha=8).describe()

    def test_unattached_manager_raises(self):
        dt = DynamicThreshold()
        with pytest.raises(RuntimeError):
            dt.admit(None, 1500, 0.0)  # type: ignore[arg-type]


class TestStaticSchemes:
    def test_complete_sharing_unbounded_threshold(self):
        cs = CompleteSharing()
        switch, _ = make_switch(cs)
        assert math.isinf(cs.threshold(switch.queue_for(0), 0.0))

    def test_complete_sharing_accepts_until_buffer_full(self):
        cs = CompleteSharing()
        switch, _ = make_switch(cs, buffer_bytes=50 * KB)
        sent = 0
        while switch.receive(Packet(size_bytes=1500), 0):
            sent += 1
            if sent > 1000:
                pytest.fail("buffer never filled")
        assert switch.occupancy_bytes >= switch.buffer_size_bytes - 2 * 1500

    def test_complete_partitioning_divides_equally(self):
        cp = CompletePartitioning()
        switch, _ = make_switch(cp, num_ports=4)
        expected = switch.buffer_size_bytes / 4
        assert cp.threshold(switch.queue_for(0), 0.0) == pytest.approx(expected)

    def test_static_threshold_fixed_cap(self):
        st = StaticThreshold(threshold_bytes=10 * KB)
        switch, _ = make_switch(st)
        assert st.threshold(switch.queue_for(0), 0.0) == 10 * KB

    def test_static_threshold_default_is_buffer_over_ports(self):
        st = StaticThreshold()
        switch, _ = make_switch(st, num_ports=8)
        assert st.threshold(switch.queue_for(0), 0.0) == pytest.approx(
            switch.buffer_size_bytes / 8
        )

    def test_static_threshold_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StaticThreshold(threshold_bytes=0)
