"""Tests for switch queues and egress schedulers."""

import pytest

from repro.switchsim.cells import PacketDescriptor
from repro.switchsim.packet import Packet
from repro.switchsim.queue import SwitchQueue
from repro.switchsim.scheduler import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    StrictPriorityScheduler,
    WeightedRoundRobinScheduler,
    make_scheduler,
)


def make_pd(size):
    return PacketDescriptor(packet=Packet(size_bytes=size), cell_pointers=[0])


def filled_queue(queue_id=0, port_id=0, sizes=(1500, 1500), **kwargs):
    q = SwitchQueue(queue_id=queue_id, port_id=port_id, **kwargs)
    for s in sizes:
        q.push(make_pd(s))
    return q


class TestSwitchQueue:
    def test_push_pop_fifo_order(self):
        q = SwitchQueue(0, 0)
        first, second = make_pd(100), make_pd(200)
        q.push(first)
        q.push(second)
        assert q.length_bytes == 300
        assert q.pop_head() is first
        assert q.pop_head() is second
        assert q.pop_head() is None

    def test_pop_tail(self):
        q = SwitchQueue(0, 0)
        first, second = make_pd(100), make_pd(200)
        q.push(first)
        q.push(second)
        assert q.pop_tail() is second
        assert q.length_bytes == 100

    def test_peek_does_not_remove(self):
        q = filled_queue()
        assert q.peek_head() is not None
        assert q.length_packets == 2

    def test_active_flag(self):
        q = SwitchQueue(0, 0)
        assert not q.is_active
        q.push(make_pd(100))
        assert q.is_active

    def test_drain_rate_estimate_converges(self):
        q = SwitchQueue(0, 0)
        # 1500 bytes every 1.2us -> 1.25 GB/s.
        t = 0.0
        for _ in range(100):
            t += 1.2e-6
            q.record_dequeue(1500, t)
        assert q.drain_rate_estimate == pytest.approx(1500 / 1.2e-6, rel=0.05)

    def test_drop_counters(self):
        q = SwitchQueue(0, 0)
        q.record_drop(1500, expelled=False)
        q.record_drop(1500, expelled=True)
        assert q.dropped_packets == 1
        assert q.expelled_packets == 1

    def test_clear(self):
        q = filled_queue()
        q.clear()
        assert q.length_bytes == 0 and len(q) == 0


class TestSchedulers:
    def test_fifo_picks_first_active(self):
        empty = SwitchQueue(0, 0)
        active = filled_queue(queue_id=1)
        assert FifoScheduler().select([empty, active]) is active

    def test_fifo_returns_none_when_all_empty(self):
        assert FifoScheduler().select([SwitchQueue(0, 0)]) is None

    def test_strict_priority_prefers_lowest_priority_value(self):
        low = filled_queue(queue_id=0, priority=1)
        high = filled_queue(queue_id=1, priority=0)
        assert StrictPriorityScheduler().select([low, high]) is high

    def test_strict_priority_falls_back_when_high_empty(self):
        low = filled_queue(queue_id=0, priority=1)
        high = SwitchQueue(1, 0, priority=0)
        assert StrictPriorityScheduler().select([low, high]) is low

    def test_drr_is_byte_fair_with_equal_weights(self):
        sched = DeficitRoundRobinScheduler(quantum_bytes=1500)
        a = filled_queue(queue_id=0, sizes=[1500] * 50)
        b = filled_queue(queue_id=1, sizes=[1500] * 50)
        served = {0: 0, 1: 0}
        for _ in range(40):
            q = sched.select([a, b])
            served[q.queue_id] += q.peek_head().size_bytes
            q.pop_head()
        assert abs(served[0] - served[1]) <= 2 * 1500

    def test_drr_respects_weights(self):
        sched = DeficitRoundRobinScheduler(quantum_bytes=1500)
        a = filled_queue(queue_id=0, sizes=[1500] * 90, weight=3.0)
        b = filled_queue(queue_id=1, sizes=[1500] * 90, weight=1.0)
        served = {0: 0, 1: 0}
        for _ in range(60):
            q = sched.select([a, b])
            served[q.queue_id] += 1
            q.pop_head()
        ratio = served[0] / max(1, served[1])
        assert ratio == pytest.approx(3.0, rel=0.35)

    def test_wrr_serves_active_queues(self):
        sched = WeightedRoundRobinScheduler()
        a = filled_queue(queue_id=0, sizes=[1500] * 10, weight=2.0)
        b = filled_queue(queue_id=1, sizes=[1500] * 10, weight=1.0)
        picks = []
        for _ in range(9):
            q = sched.select([a, b])
            picks.append(q.queue_id)
            q.pop_head()
        assert set(picks) == {0, 1}
        assert picks.count(0) > picks.count(1)

    def test_drr_quantum_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobinScheduler(quantum_bytes=0)

    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("strict"), StrictPriorityScheduler)
        assert isinstance(make_scheduler("drr"), DeficitRoundRobinScheduler)
        assert isinstance(make_scheduler("wrr"), WeightedRoundRobinScheduler)
        with pytest.raises(ValueError):
            make_scheduler("bogus")
