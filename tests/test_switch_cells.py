"""Tests for the cell pool / packet descriptor memory model."""

import pytest

from repro.switchsim.cells import CellPool
from repro.switchsim.packet import Packet


class TestCellPool:
    def test_capacity_and_cell_count(self):
        pool = CellPool(buffer_bytes=2000, cell_bytes=200)
        assert pool.total_cells == 10
        assert pool.free_cells == 10
        assert pool.free_bytes == 2000
        assert pool.used_bytes == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CellPool(0, 200)
        with pytest.raises(ValueError):
            CellPool(1000, 0)
        with pytest.raises(ValueError):
            CellPool(100, 200)  # cannot hold a single cell

    def test_cells_for_rounds_up(self):
        pool = CellPool(buffer_bytes=2000, cell_bytes=200)
        assert pool.cells_for(1) == 1
        assert pool.cells_for(200) == 1
        assert pool.cells_for(201) == 2
        assert pool.cells_for(1500) == 8
        with pytest.raises(ValueError):
            pool.cells_for(0)

    def test_allocate_and_release_roundtrip(self):
        pool = CellPool(buffer_bytes=2000, cell_bytes=200)
        pd = pool.allocate(Packet(size_bytes=450))
        assert pd is not None
        assert pd.num_cells == 3
        assert pool.used_cells == 3
        assert pool.used_bytes == 600  # cell-granular occupancy
        freed = pool.release(pd, read_data=True)
        assert freed == 600
        assert pool.free_cells == pool.total_cells

    def test_allocate_fails_when_insufficient(self):
        pool = CellPool(buffer_bytes=1000, cell_bytes=200)
        assert pool.allocate(Packet(size_bytes=900)) is not None
        assert pool.allocate(Packet(size_bytes=300)) is None

    def test_can_fit(self):
        pool = CellPool(buffer_bytes=1000, cell_bytes=200)
        assert pool.can_fit(1000)
        assert not pool.can_fit(1001)

    def test_head_drop_never_touches_cell_data_memory(self):
        """The property Occamy exploits: drops are pointer-only operations."""
        pool = CellPool(buffer_bytes=4000, cell_bytes=200)
        pd1 = pool.allocate(Packet(size_bytes=1500))
        pd2 = pool.allocate(Packet(size_bytes=1500))
        reads_before = pool.data_memory_reads
        pool.release(pd1, read_data=False)  # head drop
        assert pool.data_memory_reads == reads_before
        pool.release(pd2, read_data=True)  # normal dequeue
        assert pool.data_memory_reads > reads_before

    def test_pointer_reuse_after_release(self):
        pool = CellPool(buffer_bytes=600, cell_bytes=200)
        pd = pool.allocate(Packet(size_bytes=600))
        pointers = list(pd.cell_pointers)
        pool.release(pd, read_data=False)
        pd2 = pool.allocate(Packet(size_bytes=600))
        assert sorted(pd2.cell_pointers) == sorted(pointers)

    def test_reset(self):
        pool = CellPool(buffer_bytes=2000, cell_bytes=200)
        pool.allocate(Packet(size_bytes=1500))
        pool.reset()
        assert pool.free_cells == pool.total_cells
        assert pool.data_memory_writes == 0


class TestPacket:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Packet(size_bytes=0)

    def test_unique_ids(self):
        a, b = Packet(size_bytes=100), Packet(size_bytes=100)
        assert a.packet_id != b.packet_id

    def test_copy_header_fresh_identity(self):
        original = Packet(size_bytes=1500, flow_id=7, seq=3, metadata={"k": 1})
        clone = original.copy_header()
        assert clone.packet_id != original.packet_id
        assert clone.flow_id == 7 and clone.seq == 3
        clone.metadata["k"] = 2
        assert original.metadata["k"] == 1
