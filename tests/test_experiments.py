"""Tests for the experiment harnesses (run at the smallest scale).

These are integration tests: they exercise the full stack (workloads, netsim,
switch, schemes) through the same entry points the benchmark harness uses, and
assert the qualitative *shape* of each paper result rather than absolute
numbers.
"""

import pytest

from repro.experiments import fig03_dt_behavior, fig11_queue_evolution
from repro.experiments import fig12_burst_absorption, table1_hw_cost
from repro.experiments.common import (
    ExperimentResult,
    ScenarioConfig,
    default_schemes,
    get_scale,
    run_single_switch,
    scheme_factory,
)
from repro.experiments.runner import EXPERIMENTS, get_runner, run_experiment


class TestCommonInfrastructure:
    def test_default_schemes(self):
        schemes = default_schemes()
        assert "occamy" in schemes and "dt" in schemes

    def test_scheme_factory_overrides(self):
        manager = scheme_factory("dt", alpha=4.0)()
        assert manager.alpha == 4.0

    def test_scheme_factory_unknown(self):
        with pytest.raises(KeyError):
            scheme_factory("bogus")

    def test_get_scale(self):
        bench = get_scale("bench")
        paper = get_scale("paper")
        assert bench.duration < paper.duration
        assert isinstance(bench, ScenarioConfig)
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_experiment_result_table_and_filter(self):
        result = ExperimentResult("demo")
        result.add_row(scheme="dt", value=1.0)
        result.add_row(scheme="occamy", value=0.5)
        assert result.columns() == ["scheme", "value"]
        assert result.column("value") == [1.0, 0.5]
        assert result.filter(scheme="occamy")[0]["value"] == 0.5
        text = result.format_table()
        assert "occamy" in text and "scheme" in text
        assert "demo" in str(result)

    def test_run_single_switch_produces_queries(self):
        config = get_scale("bench")
        run = run_single_switch("dt", config, query_size_bytes=40_000, seed=1,
                                background_load=0.2)
        assert run.flow_stats.completed_queries()
        assert run.flow_stats.completion_fraction() > 0.9


class TestRunnerRegistry:
    def test_every_figure_and_table_registered(self):
        expected = {"fig03", "fig06", "fig07", "fig11", "fig12", "fig13", "fig14",
                    "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
                    "fig22", "fig23", "table1"}
        assert expected == set(EXPERIMENTS)

    def test_get_runner_unknown(self):
        with pytest.raises(KeyError):
            get_runner("fig99")

    def test_each_module_importable_with_run(self):
        for name in EXPERIMENTS:
            assert callable(get_runner(name))


class TestMicroExperiments:
    """Fast, deterministic experiments asserting the paper's qualitative claims."""

    def test_fig03_anomalous_case_drops_before_fair(self):
        result = fig03_dt_behavior.run(scale="bench")
        by_case = {row["case"]: row for row in result.rows}
        assert by_case["healthy"]["q2_drops"] == 0
        assert by_case["anomalous"]["q2_drops"] > 0
        assert by_case["anomalous"]["drop_before_fair"] is True

    def test_fig11_occamy_absorbs_burst_dt_alpha4_does_not(self):
        result = fig11_queue_evolution.run(scale="bench")
        rows = {(r["scheme"], r["alpha"]): r for r in result.rows}
        assert rows[("occamy", 1.0)]["burst_drops"] == 0
        assert rows[("occamy", 4.0)]["burst_drops"] == 0
        assert rows[("dt", 4.0)]["burst_drops"] > 0
        assert rows[("dt", 4.0)]["dropped_before_fair"] is True
        # Occamy actually expelled packets from the over-allocated queue.
        assert rows[("occamy", 4.0)]["q1_expelled"] > 0

    def test_fig12_occamy_absorbs_at_least_as_much_as_dt(self):
        result = fig12_burst_absorption.run(scale="bench")
        for alpha in (1.0, 4.0):
            for burst in {r["burst_kb"] for r in result.rows}:
                occ = result.filter(scheme="occamy", alpha=alpha, burst_kb=burst)[0]
                dt = result.filter(scheme="dt", alpha=alpha, burst_kb=burst)[0]
                assert occ["loss_rate"] <= dt["loss_rate"] + 1e-9

    def test_fig12_dt_gets_worse_with_large_alpha(self):
        result = fig12_burst_absorption.run(scale="bench")
        bursts = sorted({r["burst_kb"] for r in result.rows})
        mid = bursts[len(bursts) // 2]
        dt1 = result.filter(scheme="dt", alpha=1.0, burst_kb=mid)[0]["loss_rate"]
        dt4 = result.filter(scheme="dt", alpha=4.0, burst_kb=mid)[0]["loss_rate"]
        assert dt4 >= dt1

    def test_table1_matches_published_envelope(self):
        result = table1_hw_cost.run()
        by_module = {r["module"]: r for r in result.rows}
        assert by_module["selector"]["luts"] == pytest.approx(1262, rel=0.1)
        assert by_module["arbiter"]["luts"] == 3
        assert by_module["executor"]["flip_flops"] == 7
        total = by_module["occamy_total"]
        assert total["area_mm2"] < 0.03
        assert total["power_mw"] < 1.5
        assert total["timing_ns"] < 2.0  # one expulsion every 2 cycles at 1 GHz


@pytest.mark.slow
class TestNetworkExperimentsSmoke:
    """End-to-end smoke tests of the netsim-based harnesses at bench scale."""

    def test_fig13_runs_and_reports_all_schemes(self):
        result = run_experiment("fig13", scale="bench")
        schemes = {row["scheme"] for row in result.rows}
        assert schemes == set(default_schemes())
        assert all(row["avg_qct_ms"] > 0 for row in result.rows)

    def test_fig16_covers_dt_and_occamy(self):
        result = run_experiment("fig16", scale="bench")
        assert {row["scheme"] for row in result.rows} == {"dt", "occamy"}

    def test_fig21_compares_victim_policies(self):
        result = run_experiment("fig21", scale="bench")
        assert {row["victim_policy"] for row in result.rows} == {"round_robin", "longest"}

    def test_fig07_reports_utilization_percentiles(self):
        result = run_experiment("fig07", scale="bench")
        for row in result.rows:
            assert 0.0 <= row["p99_util"] <= 1.0
