"""Analysis toolkit tests: document loading, FCT CDFs, comparisons, CLI.

A small real campaign store (scenario runs with telemetry, one plain
experiment, one failure) is built once per module; every reader then works
from those persisted artifacts -- the toolkit never re-simulates.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    comparison_tables,
    fct_cdf_rows,
    fct_summary,
    flow_metric_values,
    load_documents,
    write_qlen_csv,
)
from repro.analysis.cli import main as analysis_main
from repro.analysis.sources import document_from_json
from repro.campaign import CampaignExecutor, ResultStore, RunSpec
from repro.scenario import ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

import io

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _scenario_run(seed: int, scheme: str) -> RunSpec:
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    spec.duration = 0.002
    document = spec.to_dict()
    document["scheme"] = {"name": scheme, "kwargs": {"alpha": 2.0}}
    document["telemetry"] = {"enabled": True, "capacity": 16,
                             "per_port": False}
    return RunSpec(experiment="scenario", scale="-", seed=seed,
                   params={"scenario": document})


@pytest.fixture(scope="module")
def store_root(tmp_path_factory) -> Path:
    root = tmp_path_factory.mktemp("analysis-store")
    store = ResultStore(root)
    specs = [
        _scenario_run(0, "dt"),
        _scenario_run(0, "occamy"),
        _scenario_run(1, "occamy"),
        RunSpec("table1"),
        RunSpec("fig99"),  # fails: unknown experiment
    ]
    outcomes = CampaignExecutor(store=store).run(specs)
    assert [o.status for o in outcomes] == ["ok", "ok", "ok", "ok", "failed"]
    return root


class TestSources:
    def test_load_store_directory(self, store_root):
        documents = load_documents([store_root])
        assert len(documents) == 5
        statuses = sorted(doc.status for doc in documents)
        assert statuses == ["failed", "ok", "ok", "ok", "ok"]
        scenario_docs = [d for d in documents if d.experiment == "scenario"]
        assert len(scenario_docs) == 3
        for doc in scenario_docs:
            assert doc.flows is not None
            assert doc.flows.bottleneck_bps > 0
            assert doc.flows.records
            assert doc.telemetry is not None and doc.telemetry["ticks"] > 0

    def test_load_scenario_result_document(self, tmp_path):
        spec = ScenarioSpec.from_file(
            EXAMPLES_DIR / "scenario_dumbbell_burst.json")
        spec.duration = 0.002
        reset_workload_ids()
        document = run_scenario(spec).to_dict()
        path = tmp_path / "result.json"
        path.write_text(json.dumps(document))
        (doc,) = load_documents([path])
        assert doc.experiment == "scenario:dumbbell-burst"
        assert doc.flows is not None and doc.flows.records
        assert doc.rows and "scheme" in doc.rows[0]

    def test_load_bare_telemetry_and_experiment_documents(self, tmp_path):
        (tmp_path / "bare.json").write_text(json.dumps(
            {"time": [0.0, 1.0], "series": {"x": [1, 2]},
             "ticks": 2, "capacity": 2, "interval": 1.0,
             "dropped_samples": 0}))
        (tmp_path / "exp.json").write_text(json.dumps(
            {"experiment": "demo", "notes": "", "rows": [{"scheme": "dt",
                                                          "v": 1.0}]}))
        documents = load_documents([tmp_path])
        assert [doc.experiment for doc in documents] == ["scenario", "demo"] \
            or len(documents) == 2
        by_label = {doc.label: doc for doc in documents}
        assert by_label["bare.json"[:-5]].telemetry is not None
        assert by_label["exp"].rows == [{"scheme": "dt", "v": 1.0}]

    def test_unrecognized_shape_fails_loudly(self):
        with pytest.raises(ValueError, match="unrecognized document shape"):
            document_from_json("x", {"whatever": 1})

    def test_missing_path_fails_loudly(self):
        with pytest.raises(ValueError, match="no such file"):
            load_documents(["/definitely/not/here"])


class TestFct:
    def test_slowdowns_grouped_by_scheme(self, store_root):
        documents = load_documents([store_root])
        groups = flow_metric_values(documents, group_by="scheme")
        assert sorted(groups) == ["dt", "occamy"]
        # occamy ran two seeds, dt one: twice the completed-flow samples.
        assert len(groups["occamy"]) == 2 * len(groups["dt"])
        for values in groups.values():
            assert all(value >= 1.0 for value in values)  # slowdown >= 1

    def test_cdf_rows_monotone_and_complete(self, store_root):
        documents = load_documents([store_root])
        rows = fct_cdf_rows(documents, group_by="scheme", points=16)
        assert rows
        by_group = {}
        for row in rows:
            by_group.setdefault(row["group"], []).append(row)
        for group_rows in by_group.values():
            values = [row["slowdown"] for row in group_rows]
            probabilities = [row["cdf"] for row in group_rows]
            assert values == sorted(values)
            assert probabilities == sorted(probabilities)
            assert probabilities[-1] == 1.0

    def test_fct_ms_metric_and_summary(self, store_root):
        documents = load_documents([store_root])
        table = fct_summary(documents, metric="fct_ms")
        assert {row["scheme"] for row in table.rows} == {"dt", "occamy"}
        for row in table.rows:
            assert row["p99"] >= row["p50"] > 0

    def test_unknown_metric_rejected(self, store_root):
        with pytest.raises(ValueError, match="unknown flow metric"):
            flow_metric_values(load_documents([store_root]), metric="vibes")

    def test_no_flow_documents_fails_loudly(self, tmp_path):
        (tmp_path / "exp.json").write_text(json.dumps(
            {"experiment": "demo", "rows": [{"v": 1.0}]}))
        with pytest.raises(ValueError, match="no documents carry per-flow"):
            from repro.analysis.fct import require_flows

            require_flows(load_documents([tmp_path]))


class TestCompare:
    def test_scheme_tables(self, store_root):
        documents = load_documents([store_root])
        tables, warnings = comparison_tables(
            documents, metric="avg_fct_slowdown", baseline="dt")
        assert not warnings
        summary, deltas = tables
        assert {row["scheme"] for row in summary.rows} == {"dt", "occamy"}
        baseline_row = next(r for r in deltas.rows if r["scheme"] == "dt")
        assert baseline_row["delta"] == 0

    def test_lb_grouping_backfills_ecmp(self, store_root):
        # Summary rows only tag non-default lb policies; rows without the
        # column are the static-hashing baseline, not unknown.
        documents = load_documents([store_root])
        tables, _ = comparison_tables(documents, group_by="lb",
                                      metric="avg_fct_slowdown")
        assert tables
        assert {row["lb"] for row in tables[0].rows} == {"ecmp"}

    def test_unknown_metric_warns_not_substitutes(self, store_root):
        tables, warnings = comparison_tables(
            load_documents([store_root]), metric="nonexistent")
        assert not tables
        assert any("nonexistent" in warning for warning in warnings)

    def test_unknown_baseline_warns_keeps_summary(self, store_root):
        tables, warnings = comparison_tables(
            load_documents([store_root]), metric="avg_fct_slowdown",
            baseline="mystery")
        assert len(tables) == 1  # summary survives, delta table skipped
        assert any("mystery" in warning for warning in warnings)


class TestQlen:
    def test_blocks_per_telemetry_run(self, store_root):
        documents = load_documents([store_root])
        stream = io.StringIO()
        blocks = write_qlen_csv(documents, stream)
        assert blocks == 3  # the three telemetry-enabled scenario runs
        text = stream.getvalue()
        assert text.count("# label=") == 3
        assert "switch.left.occupancy_bytes" in text

    def test_explicit_unmatched_pattern_raises(self, store_root):
        documents = load_documents([store_root])
        with pytest.raises(ValueError, match="no series match"):
            write_qlen_csv(documents, io.StringIO(), ["nope.*"])

    def test_no_telemetry_documents_fails_loudly(self, tmp_path):
        (tmp_path / "exp.json").write_text(json.dumps(
            {"experiment": "demo", "rows": [{"v": 1.0}]}))
        with pytest.raises(ValueError, match="telemetry"):
            write_qlen_csv(load_documents([tmp_path]), io.StringIO())


class TestCli:
    def test_summary_table(self, store_root, capsys):
        assert analysis_main(["summary", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out and "scenario" in out

    def test_fct_csv_byte_stable(self, store_root, tmp_path):
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        assert analysis_main(["fct", str(store_root),
                              "--out", str(first)]) == 0
        assert analysis_main(["fct", str(store_root),
                              "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().startswith("group,slowdown,cdf")

    def test_compare_csv_byte_stable(self, store_root, tmp_path):
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        for path in (first, second):
            assert analysis_main([
                "compare", str(store_root), "--format", "csv",
                "--metric", "avg_fct_slowdown", "--baseline", "dt",
                "--out", str(path)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_qlen_csv(self, store_root, tmp_path, capsys):
        out = tmp_path / "qlen.csv"
        assert analysis_main(["qlen", str(store_root),
                              "--out", str(out)]) == 0
        assert out.read_text().count("# label=") == 3

    def test_fct_table_format(self, store_root, capsys):
        assert analysis_main(["fct", str(store_root),
                              "--format", "table"]) == 0
        assert "p99" in capsys.readouterr().out

    def test_json_format(self, store_root, capsys):
        assert analysis_main(["fct", str(store_root),
                              "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and {"group", "slowdown", "cdf"} <= set(rows[0])

    def test_error_paths(self, store_root, tmp_path, capsys):
        assert analysis_main(["summary", "/not/a/path"]) == 1
        assert "error:" in capsys.readouterr().err
        (tmp_path / "exp.json").write_text(json.dumps(
            {"experiment": "demo", "rows": [{"v": 1.0}]}))
        assert analysis_main(["fct", str(tmp_path)]) == 1
        assert "per-flow" in capsys.readouterr().err
