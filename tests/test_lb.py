"""Tests for the adaptive load-balancing subsystem (``repro.lb``).

Covers the policy mechanics against a stub switch (flowlet gap caching,
DRILL sampling, spray round-robin, the ecmp passthrough contract), the
attach-time binding on :class:`SwitchNode` (explicit ``lb: ecmp`` must be
byte-identical to omitting the section), the determinism battery for the
delegating policies (in-process / serial vs ``--jobs 2`` / two fresh
interpreters with randomized hash seeds), the lb telemetry probes, and the
headline comparison: on the degraded fat-tree example, flowlet and drill
each beat static ECMP hashing on p99 FCT slowdown.
"""

import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import RunSpec
from repro.lb import (
    DrillBalancer,
    EcmpPassthrough,
    FlowletBalancer,
    SprayBalancer,
    make_load_balancer,
)
from repro.metrics import percentile
from repro.scenario import LoadBalancerSpec, ScenarioSpec, run_scenario
from repro.scenario.runner import ScenarioRunner
from repro.workloads import reset_workload_ids

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"
DEGRADED_EXAMPLE = EXAMPLES_DIR / "scenario_fattree_degraded.json"


# ----------------------------------------------------------------------
# Stub plumbing: a switch node that exposes exactly what policies read
# ----------------------------------------------------------------------
class _StubPort:
    def __init__(self) -> None:
        self.backlog = 0

    def backlog_bytes(self) -> int:
        return self.backlog


class _StubSwitch:
    def __init__(self, ports) -> None:
        self._ports = {p: _StubPort() for p in ports}

    def port(self, port_id):
        return self._ports[port_id]


class _StubNode:
    def __init__(self, ports, name="sw_stub") -> None:
        self.name = name
        self.switch = _StubSwitch(ports)
        self.sim = SimpleNamespace(now=0.0)


def _packet(flow_id=1, dst=9):
    return SimpleNamespace(flow_id=flow_id, dst=dst)


def _bound(policy, ports=(4, 5, 6)):
    policy.bind(_StubNode(ports))
    return policy


# ----------------------------------------------------------------------
# Policy mechanics
# ----------------------------------------------------------------------
class TestFlowlet:
    def test_within_gap_sticks_to_cached_port(self):
        lb = _bound(FlowletBalancer(gap=100e-6))
        first = lb.choose(_packet(), [4, 5, 6])
        lb.node.sim.now = 50e-6
        assert lb.choose(_packet(), [4, 5, 6]) == first
        assert lb.flowlets == 1
        assert lb.reroutes == 0

    def test_gap_expiry_repicks_least_backlogged(self):
        lb = _bound(FlowletBalancer(gap=100e-6))
        lb.node.switch.port(4).backlog = 5000
        lb.node.switch.port(6).backlog = 5000
        first = lb.choose(_packet(), [4, 5, 6])
        assert first == 5
        lb.node.sim.now = 250e-6  # > gap since the last packet
        lb.node.switch.port(5).backlog = 9000
        lb.node.switch.port(6).backlog = 0
        assert lb.choose(_packet(), [4, 5, 6]) == 6
        assert lb.flowlets == 2
        assert lb.reroutes == 1

    def test_failed_cached_port_rerouted_without_waiting_for_gap(self):
        lb = _bound(FlowletBalancer(gap=1.0))  # gap never expires in-test
        lb.node.switch.port(5).backlog = 1
        lb.node.switch.port(6).backlog = 1
        assert lb.choose(_packet(), [4, 5, 6]) == 4
        # Port 4's link fails: it leaves the candidate list.
        assert lb.choose(_packet(), [5, 6]) in (5, 6)
        assert lb.reroutes == 1

    def test_equal_backlog_ties_spread_across_candidates(self):
        # All-zero backlogs are the common case; a fixed tie-break would
        # herd every flowlet onto one uplink and *worsen* the balance.
        lb = _bound(FlowletBalancer(gap=1e-9))
        chosen = set()
        for flow_id in range(40):
            lb.node.sim.now += 1.0  # every packet starts a new flowlet
            chosen.add(lb.choose(_packet(flow_id=flow_id), [4, 5, 6]))
        assert chosen == {4, 5, 6}

    def test_gap_must_be_positive(self):
        with pytest.raises(ValueError, match="gap must be positive"):
            FlowletBalancer(gap=0.0)


class TestDrill:
    def test_prefers_lower_backlog(self):
        lb = _bound(DrillBalancer(d=3))  # d >= candidates: sees every port
        lb.node.switch.port(4).backlog = 9000
        lb.node.switch.port(5).backlog = 9000
        for _ in range(10):
            assert lb.choose(_packet(), [4, 5, 6]) == 6

    def test_identical_instances_agree(self):
        # The sampling hash runs on per-switch counters + the CRC32 name
        # salt: two fresh instances on the same switch make the same calls.
        a = _bound(DrillBalancer())
        b = _bound(DrillBalancer())
        picks_a = [a.choose(_packet(flow_id=i), [4, 5, 6]) for i in range(50)]
        picks_b = [b.choose(_packet(flow_id=i), [4, 5, 6]) for i in range(50)]
        assert picks_a == picks_b

    def test_d_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="d must be >= 1"):
            DrillBalancer(d=0)


class TestSpray:
    def test_round_robin_cycles_candidates(self):
        lb = _bound(SprayBalancer())
        picks = [lb.choose(_packet(), [4, 5, 6]) for _ in range(6)]
        assert picks == [4, 5, 6, 4, 5, 6]
        assert lb.port_packets == {4: 2, 5: 2, 6: 2}
        assert lb.decisions == 6


class TestEcmpPassthrough:
    def test_never_chooses(self):
        lb = _bound(EcmpPassthrough())
        with pytest.raises(RuntimeError, match="never chooses"):
            lb.choose(_packet(), [4, 5])

    def test_registry_default_kwargs_applied(self):
        assert make_load_balancer("flowlet").gap == pytest.approx(100e-6)
        assert make_load_balancer("flowlet", gap=5e-6).gap == pytest.approx(5e-6)
        assert make_load_balancer("drill").d == 2
        assert make_load_balancer("ecmp").passthrough is True


# ----------------------------------------------------------------------
# Spec wiring: canonical omission, shorthand, validation
# ----------------------------------------------------------------------
class TestLoadBalancerSpec:
    def test_default_section_is_omitted_from_canonical_document(self):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        assert "lb" not in spec.to_dict()
        explicit = ScenarioSpec.from_dict({**spec.to_dict(), "lb": "ecmp"})
        assert "lb" not in explicit.to_dict()
        assert explicit.config_hash() == spec.config_hash()

    def test_non_default_section_round_trips(self):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        spec.lb = LoadBalancerSpec("flowlet", {"gap": 2e-4})
        document = spec.to_dict()
        assert document["lb"] == {"name": "flowlet", "kwargs": {"gap": 2e-4}}
        rebuilt = ScenarioSpec.from_dict(document)
        assert rebuilt.lb == spec.lb
        assert rebuilt.config_hash() == spec.config_hash()
        assert rebuilt.config_hash() != ScenarioSpec.from_file(
            DEGRADED_EXAMPLE).config_hash()

    def test_unknown_policy_rejected_at_validate(self):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        spec.lb = LoadBalancerSpec("vlb")
        with pytest.raises(KeyError, match="vlb"):
            ScenarioRunner().validate(spec)

    def test_bad_policy_kwargs_rejected_at_validate(self):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        spec.lb = LoadBalancerSpec("flowlet", {"gap": -1.0})
        with pytest.raises(ValueError, match="gap must be positive"):
            ScenarioRunner().validate(spec)


# ----------------------------------------------------------------------
# Identity: explicit lb:ecmp is byte-for-byte the pre-LB data path
# ----------------------------------------------------------------------
def _short_spec(lb=None) -> ScenarioSpec:
    spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
    spec.duration = 0.001
    if lb is not None:
        spec.lb = LoadBalancerSpec(lb) if isinstance(lb, str) else lb
    return spec


def _run_to_json(lb=None) -> str:
    reset_workload_ids()
    return json.dumps(run_scenario(_short_spec(lb)).to_dict(), sort_keys=True)


def test_explicit_ecmp_document_byte_identical_to_omitted():
    assert _run_to_json() == _run_to_json("ecmp")


def test_ecmp_passthrough_leaves_node_undelegated():
    reset_workload_ids()
    result = run_scenario(_short_spec("ecmp"))
    for node in result.topology.network.switch_nodes.values():
        assert node.lb is None
        assert "deliver" not in node.__dict__  # no method swap bound


def test_delegating_policy_swaps_deliver_and_counts_decisions():
    reset_workload_ids()
    result = run_scenario(_short_spec("flowlet"))
    nodes = result.topology.network.switch_nodes.values()
    assert all("deliver" in node.__dict__ for node in nodes)
    assert sum(node.lb.decisions for node in nodes) > 0
    assert sum(node.lb.flowlets for node in nodes) > 0


# ----------------------------------------------------------------------
# Determinism battery: the delegating policies across execution modes
# ----------------------------------------------------------------------
_LB_CHILD_SCRIPT = """
import json, sys
from repro.scenario import LoadBalancerSpec, ScenarioSpec, run_scenario
from repro.workloads import reset_workload_ids

spec = ScenarioSpec.from_file(sys.argv[1])
spec.duration = 0.001
spec.lb = LoadBalancerSpec(sys.argv[2])
reset_workload_ids()
print(json.dumps(run_scenario(spec).to_dict(), sort_keys=True))
"""


@pytest.mark.parametrize("policy", ["flowlet", "drill", "spray"])
def test_lb_byte_identical_in_process(policy):
    assert _run_to_json(policy) == _run_to_json(policy)


@pytest.mark.parametrize("policy", ["flowlet", "drill", "spray"])
def test_lb_serial_vs_parallel_campaign_identical(policy):
    document = _short_spec(policy).to_dict()
    specs = [
        RunSpec(experiment="scenario", scale="-", seed=seed,
                params={"scenario": document})
        for seed in (0, 1)
    ]
    serial = CampaignExecutor(jobs=1).run(specs)
    parallel = CampaignExecutor(jobs=2).run(specs)
    assert all(outcome.ok for outcome in serial)
    assert all(outcome.ok for outcome in parallel)
    serial_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                   for o in serial]
    parallel_docs = [json.dumps(o.result.to_dict(), sort_keys=True)
                     for o in parallel]
    assert serial_docs == parallel_docs


@pytest.mark.parametrize("policy", ["flowlet", "drill", "spray"])
def test_lb_two_fresh_processes_byte_identical(policy):
    def run_child() -> str:
        proc = subprocess.run(
            [sys.executable, "-c", _LB_CHILD_SCRIPT,
             str(DEGRADED_EXAMPLE), policy],
            capture_output=True, text=True, timeout=240,
            env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    first = run_child()
    assert first == run_child()
    assert first.strip() == _run_to_json(policy)


# ----------------------------------------------------------------------
# Telemetry integration: lb counters ride the sampling bus
# ----------------------------------------------------------------------
def test_lb_counters_surface_through_telemetry_bus():
    from repro.scenario.spec import TelemetrySpec

    spec = _short_spec("flowlet")
    spec.telemetry = TelemetrySpec(enabled=True, per_port=True)
    reset_workload_ids()
    result = run_scenario(spec)
    series = result.telemetry.series
    decision_series = [name for name in series if name.endswith(".lb.decisions")]
    assert decision_series, sorted(series)
    assert any(series[name].values()[-1] > 0 for name in decision_series)
    assert any(".lb.port" in name and name.endswith(".packets")
               for name in series)
    # The ecmp passthrough registers no lb probes at all -- its telemetry
    # document stays byte-identical to a run with the section omitted.
    spec_ecmp = _short_spec("ecmp")
    spec_ecmp.telemetry = TelemetrySpec(enabled=True, per_port=True)
    reset_workload_ids()
    result_ecmp = run_scenario(spec_ecmp)
    assert not any(".lb." in name for name in result_ecmp.telemetry.series)


# ----------------------------------------------------------------------
# The headline: adaptive policies beat static hashing under asymmetry
# ----------------------------------------------------------------------
def test_flowlet_and_drill_beat_ecmp_p99_slowdown_on_degraded_fattree():
    """On the degraded fat-tree example (one failed agg<->core link, one
    half-rate edge<->agg uplink), congestion-aware uplink choice must beat
    static flow hashing at the tail: seeded full-length runs, p99 FCT
    slowdown strictly lower for flowlet and drill than for ecmp."""
    p99 = {}
    for policy in ("ecmp", "flowlet", "drill"):
        spec = ScenarioSpec.from_file(DEGRADED_EXAMPLE)
        spec.lb = LoadBalancerSpec(policy)
        reset_workload_ids()
        result = run_scenario(spec)
        p99[policy] = percentile(result.flow_stats.fct_slowdowns(), 99)
    assert p99["flowlet"] < p99["ecmp"], p99
    assert p99["drill"] < p99["ecmp"], p99
