"""Fabric-model tests: per-link rates, failures, degradation, weighted ECMP.

Covers the acceptance criteria of the fabric-model refactor:

* with a failed core link on a k=4 fat-tree, traced per-flow paths never
  traverse the failed link and coverage of the surviving path set stays
  complete;
* capacity-weighted ECMP splits flows across a 2:1 degraded uplink pair in
  ~2:1 ratio (the hash is deterministic, so the statistical check is too);
* link/host/topology constructors reject non-positive rates loudly;
* same-instant link deliveries batch into one event without reordering.
"""

import json
from collections import Counter

import pytest

from repro.core.registry import make_buffer_manager
from repro.netsim.link import Link, LinkSpec
from repro.netsim.network import Network
from repro.netsim.routing import EcmpRoutingTable
from repro.scenario.spec import FabricSpec, ScenarioSpec
from repro.scenario.runner import run_scenario
from repro.sim.engine import Simulator
from repro.switchsim.packet import Packet
from repro.topology.dumbbell import DumbbellTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.leaf_spine import LeafSpineTopology
from repro.topology.raw_switch import RawSwitchTopology
from repro.topology.single_switch import SingleSwitchTopology
from repro.workloads import reset_workload_ids


def _dt():
    return make_buffer_manager("dt")


class _Sink:
    def __init__(self):
        self.order = []

    def deliver(self, packet):
        self.order.append(packet)


# ----------------------------------------------------------------------
# LinkSpec / Link validation and batching
# ----------------------------------------------------------------------
class TestLinkSpec:
    def test_defaults_inherit_rate(self):
        spec = LinkSpec(delay=1e-6)
        assert spec.rate_bps is None
        assert spec.effective_rate_bps is None

    def test_effective_rate_scales_with_degradation(self):
        spec = LinkSpec(rate_bps=10e9, delay=1e-6, degraded_factor=0.25)
        assert spec.effective_rate_bps == pytest.approx(2.5e9)

    def test_degraded_composes(self):
        spec = LinkSpec(rate_bps=10e9).degraded(0.5).degraded(0.5)
        assert spec.effective_rate_bps == pytest.approx(2.5e9)

    @pytest.mark.parametrize("kwargs", [
        {"rate_bps": 0.0},
        {"rate_bps": -1.0},
        {"delay": -1e-9},
        {"degraded_factor": 0.0},
        {"degraded_factor": 1.5},
    ])
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)


class TestLink:
    def test_rejects_non_positive_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="rate must be positive"):
            Link(sim, _Sink(), delay=0.0, rate_bps=0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="cannot be negative"):
            Link(Simulator(), _Sink(), delay=-1e-9)

    def test_same_instant_transmits_share_one_event(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, sink, delay=1e-6)
        packets = [Packet(size_bytes=100 + i) for i in range(4)]
        for packet in packets:
            link.transmit(packet)
        assert sim.pending_events == 1  # one event for four packets
        sim.run()
        assert sink.order == packets  # FIFO preserved

    def test_distinct_instants_deliver_at_their_times(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, sink, delay=1e-6)
        arrivals = []
        sink.deliver = lambda p: arrivals.append(sim.now)
        link.transmit(Packet(size_bytes=1))
        sim.run(until=0.5e-6)
        link.transmit(Packet(size_bytes=1))
        sim.run()
        assert arrivals == [pytest.approx(1e-6), pytest.approx(1.5e-6)]

    def test_mixed_batches_keep_order_and_counts(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, sink, delay=1e-6)
        first = [Packet(size_bytes=1) for _ in range(3)]
        for packet in first:
            link.transmit(packet)
        sim.run(until=0.4e-6)
        second = [Packet(size_bytes=1) for _ in range(2)]
        for packet in second:
            link.transmit(packet)
        assert sim.pending_events == 2
        sim.run()
        assert sink.order == first + second

    def test_failed_link_blackholes_and_repairs(self):
        sim = Simulator()
        sink = _Sink()
        link = Link(sim, sink, delay=1e-6)
        link.transmit(Packet(size_bytes=1))
        link.set_failed()
        link.transmit(Packet(size_bytes=1))
        sim.run()
        assert len(sink.order) == 1
        assert link.dropped_packets == 1
        link.set_failed(False)
        link.transmit(Packet(size_bytes=1))
        sim.run()
        assert len(sink.order) == 2


# ----------------------------------------------------------------------
# Weighted / failure-aware ECMP member selection
# ----------------------------------------------------------------------
class TestWeightedEcmp:
    def _table(self, uplinks=(4, 5)):
        table = EcmpRoutingTable()
        table.add_uplinks(uplinks)
        return table

    def test_equal_weights_match_legacy_hash(self):
        plain = self._table()
        weighted = self._table()
        for port in (4, 5):
            weighted.set_uplink_weight(port, 10e9)
        picks = [(plain.egress_for(0, 99, fid), weighted.egress_for(0, 99, fid))
                 for fid in range(2000)]
        assert all(a == b for a, b in picks)

    def test_two_to_one_split_statistical(self):
        table = self._table()
        table.set_uplink_weight(4, 10e9)
        table.set_uplink_weight(5, 5e9)
        counts = Counter(table.egress_for(0, 99, fid) for fid in range(30000))
        fraction = counts[4] / (counts[4] + counts[5])
        assert 0.63 < fraction < 0.70  # ~2/3 with statistical tolerance

    def test_disabled_uplink_never_selected(self):
        table = self._table()
        table.disable_uplink(4)
        assert table.candidate_ports(99) == [5]
        assert all(table.egress_for(0, 99, fid) == 5 for fid in range(500))

    def test_exclusion_is_per_destination(self):
        table = self._table()
        table.exclude_uplink_for(4, dst_host=7)
        assert table.candidate_ports(7) == [5]
        assert set(table.candidate_ports(8)) == {4, 5}
        assert all(table.egress_for(0, 7, fid) == 5 for fid in range(500))
        assert any(table.egress_for(0, 8, fid) == 4 for fid in range(500))

    def test_all_members_pruned_raises(self):
        table = self._table()
        table.disable_uplink(4)
        table.exclude_uplink_for(5, dst_host=7)
        with pytest.raises(LookupError, match="no surviving uplink"):
            table.candidate_ports(7)

    def test_weight_requires_registered_uplink(self):
        table = self._table()
        with pytest.raises(ValueError, match="not a registered uplink"):
            table.set_uplink_weight(9, 1.0)
        with pytest.raises(ValueError, match="must be positive"):
            table.set_uplink_weight(4, 0.0)


# ----------------------------------------------------------------------
# Input validation (satellite): hosts, networks, topologies
# ----------------------------------------------------------------------
class TestRateValidation:
    def test_network_add_host_rejects_non_positive_rate(self):
        net = Network(Simulator(), bottleneck_bps=10e9, base_rtt=40e-6)
        with pytest.raises(ValueError, match="must be positive"):
            net.add_host(0, nic_rate_bps=0.0)
        with pytest.raises(ValueError, match="must be positive"):
            net.add_host(1, nic_rate_bps=-10e9)

    def test_network_rejects_non_positive_bottleneck(self):
        with pytest.raises(ValueError, match="bottleneck_bps"):
            Network(Simulator(), bottleneck_bps=0.0, base_rtt=40e-6)

    def test_connect_rejects_delay_and_spec_together(self):
        net = Network(Simulator(), bottleneck_bps=10e9, base_rtt=40e-6)
        host = net.add_host(0, nic_rate_bps=10e9)
        topo = SingleSwitchTopology(2, _dt)
        with pytest.raises(ValueError, match="not both"):
            net.connect_host_to_switch(host, topo.switch_node, 0, 1e-6,
                                       spec=LinkSpec(rate_bps=10e9))

    @pytest.mark.parametrize("build", [
        lambda: SingleSwitchTopology(4, _dt, link_rate_bps=0.0),
        lambda: LeafSpineTopology(_dt, link_rate_bps=-1.0),
        lambda: DumbbellTopology(2, _dt, edge_rate_bps=0.0),
        lambda: FatTreeTopology(_dt, link_rate_bps=0.0),
        lambda: RawSwitchTopology(_dt, port_rate_bps=0.0),
    ])
    def test_topologies_reject_non_positive_rates(self, build):
        with pytest.raises(ValueError):
            build()

    def test_unknown_tier_name_rejected(self):
        with pytest.raises(ValueError, match="unknown link tier"):
            LeafSpineTopology(_dt, tier_rates={"core": 10e9})

    def test_non_positive_tier_rate_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            FatTreeTopology(_dt, tier_rates={"core": 0.0})

    def test_dumbbell_rejects_failures(self):
        with pytest.raises(ValueError, match="single-path"):
            DumbbellTopology(2, _dt, failures=[["left", "right"]])

    def test_raw_switch_rejects_failures(self):
        with pytest.raises(ValueError, match="no links to fail"):
            RawSwitchTopology(_dt, failures=[["a", "b"]])

    def test_single_switch_rejects_host_link_failure(self):
        with pytest.raises(ValueError, match="partition"):
            SingleSwitchTopology(4, _dt, failures=[["h0", "s0"]])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="no link between"):
            FatTreeTopology(_dt, k=4, failures=[["agg0_0", "core9"]])

    def test_degraded_factor_bounds(self):
        with pytest.raises(ValueError, match=r"in \(0, 1\]"):
            LeafSpineTopology(_dt, degraded=[["leaf0", "spine1", 1.5]])


# ----------------------------------------------------------------------
# Per-link rates propagate into serializers
# ----------------------------------------------------------------------
class TestRatePropagation:
    def test_tier_rates_retune_ports_and_nics(self):
        topo = LeafSpineTopology(
            _dt, num_leaves=2, num_spines=2, hosts_per_leaf=2,
            link_rate_bps=10e9, tier_rates={"spine": 40e9, "host": 10e9})
        leaf = topo.leaves[0]
        # Host-facing ports at 10G, spine-facing uplinks at 40G.
        assert leaf.switch.ports[0].rate_bps == pytest.approx(10e9)
        assert leaf.switch.ports[2].rate_bps == pytest.approx(40e9)
        assert topo.network.hosts[0].nic_rate_bps == pytest.approx(10e9)

    def test_dumbbell_trunk_serializes_at_bottleneck_rate(self):
        topo = DumbbellTopology(2, _dt, edge_rate_bps=10e9,
                                bottleneck_rate_bps=2.5e9)
        assert topo.left.switch.ports[0].rate_bps == pytest.approx(2.5e9)
        assert topo.right.switch.ports[0].rate_bps == pytest.approx(2.5e9)
        # Host ports keep the edge rate.
        assert topo.left.switch.ports[1].rate_bps == pytest.approx(10e9)

    def test_degraded_host_link_slows_nic_and_port(self):
        topo = SingleSwitchTopology(4, _dt, link_rate_bps=10e9,
                                    degraded=[["h0", "s0", 0.5]])
        assert topo.network.hosts[0].nic_rate_bps == pytest.approx(5e9)
        assert topo.switch.ports[0].rate_bps == pytest.approx(5e9)
        assert topo.network.hosts[1].nic_rate_bps == pytest.approx(10e9)

    def test_raw_switch_degraded_port(self):
        topo = RawSwitchTopology(_dt, num_ports=2, port_rate_bps=10e9,
                                 degraded=[[1, 0.25]])
        assert topo.switch.ports[0].rate_bps == pytest.approx(10e9)
        assert topo.switch.ports[1].rate_bps == pytest.approx(2.5e9)

    def test_abm_port_rate_cache_refreshes(self):
        topo = LeafSpineTopology(
            lambda: make_buffer_manager("abm"), num_leaves=2, num_spines=2,
            hosts_per_leaf=2, degraded=[["leaf0", "spine1", 0.5]])
        leaf = topo.leaves[0]
        manager = leaf.switch.manager
        # Port 3 (uplink to spine1) halved; the attach-time cache followed.
        assert leaf.switch.ports[3].rate_bps == pytest.approx(5e9)
        assert manager._port_rate_bytes[3] == pytest.approx(5e9 / 8.0)


# ----------------------------------------------------------------------
# Degraded uplink pair: capacity-weighted flow spread
# ----------------------------------------------------------------------
class TestDegradedUplinkSplit:
    def test_leaf_spine_two_to_one_split(self):
        topo = LeafSpineTopology(
            _dt, num_leaves=2, num_spines=2, hosts_per_leaf=4,
            degraded=[["leaf0", "spine1", 0.5]])
        leaf0 = topo.leaves[0]
        counts = Counter(
            leaf0.routing.egress_for(src, dst, fid)
            for src in topo.hosts_of_leaf(0)
            for dst in topo.hosts_of_leaf(1)
            for fid in range(2000)
        )
        healthy, degraded = counts[4], counts[5]
        fraction = healthy / (healthy + degraded)
        assert 0.63 < fraction < 0.70  # ~2:1 within statistical tolerance

    def test_fat_tree_degraded_agg_uplink_split(self):
        topo = FatTreeTopology(_dt, k=4,
                               degraded=[["agg0_0", "core1", 0.5]])
        agg = topo.aggs[0]
        # agg0_0 uplinks: port 2 -> core0, port 3 -> core1 (degraded).
        counts = Counter(
            agg.routing.egress_for(src, dst, fid)
            for src in topo.hosts_of_pod(0)
            for dst in topo.hosts_of_pod(1)
            for fid in range(1000)
        )
        fraction = counts[2] / (counts[2] + counts[3])
        assert 0.63 < fraction < 0.70


# ----------------------------------------------------------------------
# Failed links: pruned routing, complete surviving coverage, live traffic
# ----------------------------------------------------------------------
def _crosses(path, a, b):
    hops = list(zip(path, path[1:], strict=False))
    return (a, b) in hops or (b, a) in hops


class TestFailedCoreLink:
    @pytest.fixture(scope="class")
    def topo(self):
        return FatTreeTopology(_dt, k=4, failures=[["agg0_0", "core1"]])

    def test_enumerated_paths_avoid_failed_link(self, topo):
        for src in topo.hosts_of_pod(0):
            for dst in topo.hosts_of_pod(2):
                for path in topo.paths_between(src, dst):
                    assert not _crosses(path, "agg0_0", "core1")

    def test_traced_paths_avoid_failed_link_and_cover_survivors(self, topo):
        for src in topo.hosts_of_pod(0)[:2]:
            for dst in topo.hosts_of_pod(2)[:2]:
                enumerated = set(map(tuple, topo.paths_between(src, dst)))
                traced = {topo.path_of_flow(src, dst, fid)
                          for fid in range(400)}
                assert traced <= enumerated
                # Surviving-path coverage stays complete: every equal-cost
                # survivor still carries flows.
                assert traced == enumerated

    def test_surviving_path_count(self, topo):
        # k=4 inter-pod: 4 paths per pair; pod-0 sources lose the 1 path
        # through agg0_0 -> core1 when they hash to agg0_0... the failed
        # link removes exactly the paths crossing it (4 -> 3 for pod-0
        # pairs routed via agg0_0's plane).
        src = topo.hosts_of_pod(0)[0]
        dst = topo.hosts_of_pod(2)[0]
        assert len(topo.paths_between(src, dst)) == 3

    def test_reverse_direction_also_pruned(self, topo):
        # Traffic towards pod 0 must not reach core1 either (core1 can only
        # reach pod 0 through the failed link).
        for src in topo.hosts_of_pod(2)[:2]:
            for dst in topo.hosts_of_pod(0)[:2]:
                for fid in range(400):
                    path = topo.path_of_flow(src, dst, fid)
                    assert "core1" not in path
                    assert not _crosses(path, "core1", "agg0_0")

    def test_traffic_completes_through_failed_fabric(self):
        reset_workload_ids()
        spec = ScenarioSpec.from_dict({
            "name": "failed-core-smoke",
            "scheme": {"name": "dt"},
            "topology": {"kind": "fat_tree",
                         "params": {"k": 4, "hosts_per_edge": 1,
                                    "buffer_bytes_per_port": 65536,
                                    "ecn_threshold_bytes": 30000}},
            "fabric": {"failures": [["agg0_0", "core1"]]},
            "workloads": [
                {"kind": "permutation",
                 "params": {"flow_size_bytes": 40000, "pattern": "shift"}}
            ],
            "duration": 0.002,
        })
        result = run_scenario(spec)
        stats = result.flow_stats
        assert stats.completion_fraction() == 1.0
        # And the failed link genuinely carried nothing.
        network = result.topology.network
        assert network.link_between("agg0_0", "core1").packets_carried == 0
        assert network.link_between("core1", "agg0_0").packets_carried == 0

    def test_paths_between_refreshes_after_post_construction_failure(self):
        topo = FatTreeTopology(_dt, k=4)
        src = topo.hosts_of_pod(0)[0]
        dst = topo.hosts_of_pod(2)[0]
        assert len(topo.paths_between(src, dst)) == 4  # warms the memo
        topo.network.fail_link("agg0_0", "core1")
        survivors = topo.paths_between(src, dst)
        assert len(survivors) == 3
        assert not any(_crosses(p, "agg0_0", "core1") for p in survivors)

    def test_partitioning_failure_set_rejected(self):
        # Killing both uplinks of edge0_0 cuts its hosts off entirely.
        with pytest.raises(ValueError, match="disconnect"):
            FatTreeTopology(_dt, k=4, failures=[["edge0_0", "agg0_0"],
                                                ["edge0_0", "agg0_1"]])

    def test_leaf_spine_failure_prunes_both_directions(self):
        topo = LeafSpineTopology(_dt, num_leaves=2, num_spines=2,
                                 hosts_per_leaf=2,
                                 failures=[["leaf0", "spine1"]])
        # leaf0's uplink to spine1 is gone.
        assert topo.leaves[0].routing.candidate_ports(3) == [2]
        # leaf1 must not pick spine1 for leaf0-bound traffic either.
        assert topo.leaves[1].routing.candidate_ports(0) == [2]
        # ...but still may use spine1 for reachable destinations? leaf1's
        # only other-leaf destinations sit behind leaf0, so spine1 is fully
        # excluded for them; local hosts keep their direct routes.
        assert topo.leaves[1].routing.candidate_ports(2) == [0]


# ----------------------------------------------------------------------
# Scenario-layer fabric section
# ----------------------------------------------------------------------
class TestFabricSpec:
    def test_default_fabric_omitted_from_document(self):
        spec = ScenarioSpec.from_dict({
            "name": "plain", "scheme": "dt",
            "topology": {"kind": "single_switch", "params": {"num_hosts": 4}},
        })
        assert spec.fabric.is_default()
        assert "fabric" not in spec.to_dict()

    def test_fabric_round_trips_and_changes_hash(self):
        base = {
            "name": "fab", "scheme": "dt",
            "topology": {"kind": "fat_tree", "params": {"k": 4}},
        }
        plain = ScenarioSpec.from_dict(base)
        fabric_doc = dict(base)
        fabric_doc["fabric"] = {"failures": [["agg0_0", "core1"]],
                                "tier_rates": {"core": 40e9}}
        spec = ScenarioSpec.from_dict(fabric_doc)
        assert spec.config_hash() != plain.config_hash()
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.config_hash() == spec.config_hash()
        assert rebuilt.fabric.failures == [["agg0_0", "core1"]]

    def test_invalid_fabric_entries_rejected(self):
        with pytest.raises(ValueError, match="endpoint"):
            FabricSpec(failures=[["only-one"]]).validate()
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            FabricSpec(degraded=[["a", "b", 2.0]]).validate()
        with pytest.raises(ValueError, match="positive"):
            FabricSpec(tier_rates={"core": -1.0}).validate()

    def test_fabric_and_topology_param_collision_rejected(self):
        spec = ScenarioSpec.from_dict({
            "name": "clash", "scheme": "dt",
            "topology": {"kind": "fat_tree",
                         "params": {"k": 4,
                                    "failures": [["agg0_0", "core1"]]}},
            "fabric": {"failures": [["agg0_0", "core0"]]},
            "duration": 0.001,
        })
        with pytest.raises(ValueError, match="declare them once"):
            run_scenario(spec)
        # validate sees the same collision (the runner and CLI share the
        # merge through ScenarioSpec.resolved_topology_params).
        from repro.scenario.runner import ScenarioRunner
        with pytest.raises(ValueError, match="declare them once"):
            ScenarioRunner().validate(spec)
