"""Tests for the metrics package (percentiles, FCT/QCT, time series)."""

import pytest

from repro.metrics import (
    FlowRecord,
    FlowStats,
    cdf_points,
    ideal_fct,
    mean,
    percentile,
    slowdown,
    summarize,
    trace_to_series,
)
from repro.switchsim.stats import QueueTraceSample


class TestPercentiles:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_percentile_interpolation(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == pytest.approx(50.5)
        assert percentile(data, 99) == pytest.approx(99.01)
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_percentile_edges(self):
        assert percentile([], 50) == 0.0
        assert percentile([7], 99) == 7
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["max"] == 3.0
        assert summary["p50"] == 2.0

    def test_cdf_points_monotone_and_ends_at_one(self):
        points = cdf_points([5, 1, 3, 2, 4], num_points=10)
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs[-1] == 1.0
        assert all(0 < p <= 1 for p in probs)

    def test_cdf_points_empty_and_validation(self):
        assert cdf_points([]) == []
        with pytest.raises(ValueError):
            cdf_points([1, 2], num_points=0)

    def test_cdf_points_count_pinned_for_awkward_n(self):
        # Regression: the old integer stride (max(1, n // num_points)) made
        # the point count swing wildly with n (n=199 emitted 199 points,
        # n=250 emitted 126).  The index schedule now hits num_points evenly
        # whenever n >= num_points, and n otherwise.
        for n, num_points in [(101, 100), (150, 100), (199, 100), (250, 100),
                              (1000, 100), (100, 100), (7, 100), (1, 5)]:
            points = cdf_points(range(n), num_points=num_points)
            assert len(points) == min(n, num_points), (n, num_points)

    def test_cdf_points_always_end_at_max_and_prob_one(self):
        for n in (3, 101, 250):
            data = [float(v) for v in range(n)]
            points = cdf_points(data, num_points=10)
            assert points[-1] == (max(data), 1.0)

    def test_cdf_points_anchor_both_tails(self):
        # The downsampled CDF must keep the sample minimum (left anchor) as
        # well as the maximum, whatever the n : num_points ratio.
        for n, num_points in [(1000, 100), (101, 100), (5, 2), (1, 5)]:
            points = cdf_points(range(n), num_points=num_points)
            assert points[-1][0] == n - 1
            if len(points) > 1:
                assert points[0][0] == 0

    def test_cdf_points_sample_tail_evenly(self):
        # 250 values into 100 points: consecutive ranks may differ by at
        # most ceil(n / num_points), including in the tail.
        points = cdf_points(range(250), num_points=100)
        ranks = [int(p * 250) for _, p in points]
        gaps = [b - a for a, b in zip(ranks, ranks[1:], strict=False)]
        assert max(gaps) <= 3
        assert min(gaps) >= 1


class TestFlowMetrics:
    def test_ideal_fct_includes_rtt_and_serialization(self):
        fct = ideal_fct(size_bytes=15000, bottleneck_bps=10e9, base_rtt=40e-6)
        assert fct > 40e-6
        assert fct == pytest.approx(40e-6 + (15000 + 10 * 40) * 8 / 10e9)

    def test_ideal_fct_validation(self):
        with pytest.raises(ValueError):
            ideal_fct(0, 10e9, 1e-5)
        with pytest.raises(ValueError):
            ideal_fct(1000, 0, 1e-5)

    def test_slowdown(self):
        assert slowdown(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            slowdown(1.0, 0.0)

    def test_flow_record_properties(self):
        record = FlowRecord(flow_id=1, src=0, dst=1, size_bytes=50_000, start_time=0.0)
        assert record.is_small
        assert not record.completed
        with pytest.raises(ValueError):
            _ = record.fct
        record.finish_time = 0.01
        assert record.fct == pytest.approx(0.01)

    def test_query_completion_requires_all_flows(self):
        stats = FlowStats(bottleneck_bps=10e9, base_rtt=40e-6)
        for fid in (1, 2):
            stats.register_flow(FlowRecord(flow_id=fid, src=fid, dst=0,
                                           size_bytes=10_000, start_time=0.0,
                                           query_id=7))
        stats.flow_finished(1, 0.001)
        assert not stats.queries[7].completed
        stats.flow_finished(2, 0.003)
        assert stats.queries[7].completed
        assert stats.queries[7].qct == pytest.approx(0.003)
        assert stats.average_qct() == pytest.approx(0.003)

    def test_flow_filters(self):
        stats = FlowStats(bottleneck_bps=10e9, base_rtt=40e-6)
        stats.register_flow(FlowRecord(1, 0, 1, 50_000, 0.0, query_id=1))
        stats.register_flow(FlowRecord(2, 1, 0, 500_000, 0.0))
        stats.flow_finished(1, 0.002)
        stats.flow_finished(2, 0.004)
        assert len(stats.completed_flows(query_traffic=True)) == 1
        assert len(stats.completed_flows(query_traffic=False)) == 1
        assert len(stats.completed_flows(small_only=True)) == 1
        assert stats.completion_fraction() == 1.0

    def test_slowdowns_at_least_one_for_reasonable_fct(self):
        stats = FlowStats(bottleneck_bps=10e9, base_rtt=40e-6)
        stats.register_flow(FlowRecord(1, 0, 1, 100_000, 0.0))
        stats.flow_finished(1, 0.01)
        assert stats.fct_slowdowns()[0] > 1.0


class TestTimeSeries:
    def test_trace_to_series_groups_by_queue(self):
        trace = [
            QueueTraceSample(0.0, 0, 100, 500.0),
            QueueTraceSample(1.0, 1, 200, 400.0),
            QueueTraceSample(2.0, 0, 300, 300.0),
        ]
        series = trace_to_series(trace)
        assert set(series) == {0, 1}
        assert series[0].lengths == [100, 300]
        assert series[0].max_length == 300

    def test_length_at_step_interpolation(self):
        trace = [QueueTraceSample(t, 0, int(t * 100), 0.0) for t in (0.0, 1.0, 2.0)]
        series = trace_to_series(trace)[0]
        assert series.length_at(0.5) == 0
        assert series.length_at(1.5) == 100
        assert series.length_at(5.0) == 200

    def test_sample_every(self):
        trace = [QueueTraceSample(t / 10, 0, t, 0.0) for t in range(10)]
        series = trace_to_series(trace)[0]
        samples = series.sample_every(0.2)
        assert len(samples) == 5
        with pytest.raises(ValueError):
            series.sample_every(0)
