"""Farm tests: worker protocol, dispatch/retry, backends, determinism.

The determinism battery is the load-bearing part: a campaign executed
through ``RunFarm("local")`` and through an ssh-hosts farm pointed at
localhost (via a fake ``ssh`` shim) must persist stores that are
per-entry byte-identical -- modulo ``created_unix``/``elapsed`` -- to the
plain ``--jobs N`` pool path.
"""

import io
import json
import os
import sys
from pathlib import Path

import pytest

from repro.campaign import CampaignExecutor, ResultStore, RunSpec
from repro.campaign.cli import main as campaign_main
from repro.farm import (
    HostSpec,
    LocalFarm,
    PROTOCOL_VERSION,
    SshHostsFarm,
    SubprocessFarm,
    WorkerLossError,
    make_farm,
    parse_response,
    ping_request,
    run_request,
    worker_main,
)
from repro.scenario import ScenarioSpec

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


def _scenario_run(seed: int) -> RunSpec:
    spec = ScenarioSpec.from_file(EXAMPLES_DIR / "scenario_dumbbell_burst.json")
    spec.duration = 0.002
    return RunSpec(experiment="scenario", scale="-", seed=seed,
                   params={"scenario": spec.to_dict()})


def _entries_modulo_timing(store_root: Path):
    """hash -> canonical entry JSON with the wall-clock fields removed."""
    out = {}
    for path in sorted((Path(store_root) / "runs").glob("*.json")):
        document = json.loads(path.read_text())
        document.pop("created_unix")
        document.pop("elapsed")
        out[path.stem] = json.dumps(document, sort_keys=True)
    return out


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------
class TestWorkerProtocol:
    def _invoke(self, request_text: str):
        stdout, stderr = io.StringIO(), io.StringIO()
        rc = worker_main(stdin=io.StringIO(request_text), stdout=stdout,
                         stderr=stderr)
        return rc, stdout.getvalue(), stderr.getvalue()

    def test_run_request_round_trips(self):
        rc, out, _ = self._invoke(
            json.dumps(run_request(RunSpec("table1").to_dict())))
        assert rc == 0
        response = parse_response(out)
        assert response["outcome"]["status"] == "ok"
        assert response["outcome"]["result"]["rows"]

    def test_run_failure_still_exits_zero(self):
        # A failing *run* is a normal outcome, not a worker loss.
        rc, out, _ = self._invoke(
            json.dumps(run_request(RunSpec("fig99").to_dict())))
        assert rc == 0
        outcome = parse_response(out)["outcome"]
        assert outcome["status"] == "failed"
        assert "fig99" in outcome["error"]

    def test_ping(self):
        rc, out, _ = self._invoke(json.dumps(ping_request()))
        assert rc == 0
        assert parse_response(out)["pong"] is True

    @pytest.mark.parametrize("request_text", [
        "not json at all",
        json.dumps(["a", "list"]),
        json.dumps({"spec": {}}),  # no protocol version
        json.dumps({"protocol": 99, "ping": True}),  # wrong version
        json.dumps({"protocol": PROTOCOL_VERSION}),  # neither spec nor ping
    ])
    def test_malformed_request_exits_2(self, request_text):
        rc, out, err = self._invoke(request_text)
        assert rc == 2
        assert not out
        assert "malformed request" in err

    def test_bad_spec_exits_2(self):
        rc, _, err = self._invoke(json.dumps(
            {"protocol": PROTOCOL_VERSION, "spec": {"no_experiment": True}}))
        assert rc == 2
        assert "bad run spec" in err

    def test_parse_response_rejects_garbage(self):
        with pytest.raises(WorkerLossError, match="no output"):
            parse_response("")
        with pytest.raises(WorkerLossError, match="unparseable"):
            parse_response("segfault imminent\n")
        with pytest.raises(WorkerLossError, match="not an object"):
            parse_response("[1, 2]\n")
        with pytest.raises(WorkerLossError, match="protocol version"):
            parse_response(json.dumps({"protocol": 99, "pong": True}))

    def test_parse_response_takes_last_line(self):
        # A stray diagnostic line from a deep dependency must not kill the
        # run; only the final line is the response.
        noise = "loading calibration tables...\n"
        payload = json.dumps({"protocol": PROTOCOL_VERSION, "pong": True})
        assert parse_response(noise + payload + "\n")["pong"] is True

    def test_worker_subprocess_end_to_end(self):
        import subprocess

        proc = subprocess.run(
            [sys.executable, "-m", "repro.farm", "worker"],
            input=json.dumps(run_request(RunSpec("table1").to_dict())),
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": str(SRC_DIR)},
        )
        assert proc.returncode == 0, proc.stderr
        assert parse_response(proc.stdout)["outcome"]["status"] == "ok"


# ----------------------------------------------------------------------
# Farm construction
# ----------------------------------------------------------------------
class TestMakeFarm:
    def test_local(self):
        farm = make_farm("local")
        assert isinstance(farm, LocalFarm)
        assert len(farm.slots) == 1

    def test_subprocess_with_count(self):
        assert len(make_farm("subprocess:3").slots) == 3

    def test_subprocess_defaults_to_jobs(self):
        assert len(make_farm("subprocess", jobs=4).slots) == 4

    def test_ssh_hosts_from_file(self, tmp_path):
        hosts = tmp_path / "hosts.json"
        hosts.write_text(json.dumps([
            {"host": "nodeA", "slots": 2},
            {"host": "nodeB"},
        ]))
        farm = make_farm(f"ssh-hosts:{hosts}")
        assert isinstance(farm, SshHostsFarm)
        assert [slot.name for slot in farm.slots] == [
            "nodeA/0", "nodeA/1", "nodeB/0"]

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown farm spec"):
            make_farm("carrier-pigeon")

    def test_hosts_file_options(self, tmp_path):
        hosts = tmp_path / "hosts.json"
        hosts.write_text(json.dumps({
            "hosts": [{"host": "n1", "workdir": "/opt/my repo",
                       "env": {"PYTHONPATH": "/opt/my repo/src"}}],
            "max_attempts": 5,
            "backoff_s": 0.1,
        }))
        farm = SshHostsFarm.from_file(hosts)
        assert farm.max_attempts == 5
        assert farm.backoff_s == 0.1
        command = farm.hosts[0].remote_command()
        # Paths with spaces must be quoted in the remote command string.
        assert "cd '/opt/my repo'" in command
        assert "PYTHONPATH='/opt/my repo/src'" in command
        assert command.endswith("python3 -m repro.farm worker")

    def test_hosts_file_rejects_empty_and_bad_entries(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        with pytest.raises(ValueError, match="non-empty host list"):
            SshHostsFarm.from_file(empty)
        with pytest.raises(ValueError, match="non-empty 'host'"):
            HostSpec.from_dict({"slots": 2})
        with pytest.raises(ValueError, match="slots must be >= 1"):
            HostSpec.from_dict({"host": "n1", "slots": 0})


# ----------------------------------------------------------------------
# Dispatch: streaming persistence, retry on worker loss, fail_fast
# ----------------------------------------------------------------------
class TestDispatch:
    def test_subprocess_farm_streams_into_store_mid_campaign(self, tmp_path):
        """Every outcome must be readable from the store -- by the analysis
        loader, not just the executor -- while the campaign is running."""
        from repro.analysis import load_documents

        store = ResultStore(tmp_path)
        specs = [RunSpec("table1", seed=seed) for seed in (0, 1, 2)]
        mid_campaign_counts = []

        def progress(completed, total, outcome):
            # The just-finished run is already on disk (streaming), so a
            # concurrent `report`/`analysis` invocation sees it.
            assert store.load(outcome.spec.config_hash()) is not None
            mid_campaign_counts.append(
                len(load_documents([tmp_path])))

        executor = CampaignExecutor(store=store,
                                    farm=SubprocessFarm(workers=2))
        outcomes = executor.run(specs, progress=progress)
        assert all(outcome.ok for outcome in outcomes)
        # The mid-campaign reads saw a growing store, not just the final one.
        assert mid_campaign_counts[0] < mid_campaign_counts[-1]
        assert mid_campaign_counts[-1] == len(specs)

    def test_worker_loss_retried_on_another_attempt(self, tmp_path):
        """A worker SIGKILLed mid-run is a loss: the run is retried and
        succeeds, with the loss recorded in the slot health counters."""
        flag = tmp_path / "killed-once"
        wrapper = tmp_path / "kill_once.py"
        wrapper.write_text(
            "import os, signal, sys\n"
            f"flag = {str(flag)!r}\n"
            "if not os.path.exists(flag):\n"
            "    open(flag, 'w').close()\n"
            "    os.kill(os.getpid(), signal.SIGKILL)\n"
            "os.execv(sys.executable, [sys.executable] + sys.argv[1:])\n")
        farm = SubprocessFarm(workers=2,
                              python=[sys.executable, str(wrapper)],
                              backoff_s=0.01)
        store = ResultStore(tmp_path / "store")
        outcomes = CampaignExecutor(store=store, farm=farm).run(
            [RunSpec("table1")])
        assert [outcome.status for outcome in outcomes] == ["ok"]
        assert sum(slot.losses for slot in farm.slots) == 1
        assert sum(slot.retries for slot in farm.slots) == 1
        entry = store.load(RunSpec("table1").config_hash())
        assert entry is not None and entry.ok

    def test_worker_loss_exhausts_attempts(self, tmp_path):
        wrapper = tmp_path / "always_dies.py"
        wrapper.write_text("import sys; sys.exit(3)\n")
        farm = SubprocessFarm(workers=1,
                              python=[sys.executable, str(wrapper)],
                              max_attempts=2, backoff_s=0.0)
        outcomes = CampaignExecutor(farm=farm).run([RunSpec("table1")])
        assert [outcome.status for outcome in outcomes] == ["failed"]
        assert "worker lost after 2 attempts" in outcomes[0].error
        assert "exited 3" in outcomes[0].error
        assert outcomes[0].elapsed > 0.0
        assert farm.slots[0].losses == 2

    def test_fail_fast_persists_everything_returned(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [RunSpec("table1", seed=0), RunSpec("fig99"),
                 RunSpec("table1", seed=1)]
        outcomes = CampaignExecutor(store=store,
                                    farm=SubprocessFarm(workers=2)).run(
            specs, fail_fast=True)
        assert any(not outcome.ok for outcome in outcomes)
        # The invariant the executor guarantees: every returned outcome is
        # persisted -- in-flight runs are drained, never silently dropped.
        for outcome in outcomes:
            assert store.load(outcome.spec.config_hash()) is not None

    def test_health_rows_shape(self):
        farm = LocalFarm()
        CampaignExecutor(farm=farm).run([RunSpec("table1")])
        (row,) = farm.health_rows()
        assert row["worker"] == "local/0"
        assert row["ok"] == 1
        assert row["failed"] == 0
        assert row["state"] == "idle"
        assert row["lost"] == 0
        assert row["elapsed"] >= 0  # rounded to ms; sub-ms runs read 0.0

    def test_check_local_and_subprocess(self):
        assert all(ok for _, ok, _ in LocalFarm().check())
        rows = SubprocessFarm(workers=1).check()
        assert [(name, ok) for name, ok, _ in rows] == [("proc/0", True)]

    def test_check_reports_unreachable(self, tmp_path):
        wrapper = tmp_path / "dead.py"
        wrapper.write_text("import sys; sys.exit(7)\n")
        rows = SubprocessFarm(workers=1,
                              python=[sys.executable, str(wrapper)]).check()
        (name, ok, detail) = rows[0]
        assert not ok
        assert "exited 7" in detail


# ----------------------------------------------------------------------
# Determinism battery: local farm == pool == ssh-hosts-to-localhost
# ----------------------------------------------------------------------
def _fake_ssh(tmp_path: Path) -> Path:
    """An ``ssh`` stand-in: drop the host argument, run the command locally.

    Exercises the real ssh-hosts code path -- argv construction, remote
    command quoting, the JSON-over-stdio protocol -- without needing sshd.
    """
    shim = tmp_path / "fake_ssh.py"
    shim.write_text(
        "import os, sys\n"
        "os.execvp('sh', ['sh', '-c', sys.argv[-1]])\n")
    return shim


@pytest.mark.slow
class TestDeterminismBattery:
    def _specs(self):
        return [_scenario_run(0), _scenario_run(1), RunSpec("table1")]

    def test_local_farm_matches_jobs_pool_store(self, tmp_path):
        """The acceptance criterion: RunFarm('local') and ``--jobs 2``
        persist per-entry byte-identical stores (modulo wall-clock)."""
        farm_store, pool_store = tmp_path / "farm", tmp_path / "pool"
        farm_outcomes = CampaignExecutor(
            store=ResultStore(farm_store), farm=LocalFarm()).run(self._specs())
        pool_outcomes = CampaignExecutor(
            store=ResultStore(pool_store), jobs=2).run(self._specs())
        assert all(o.ok for o in farm_outcomes + pool_outcomes)
        farm_entries = _entries_modulo_timing(farm_store)
        pool_entries = _entries_modulo_timing(pool_store)
        assert farm_entries == pool_entries
        assert len(farm_entries) == len(self._specs())

    def test_ssh_hosts_to_localhost_matches_local_farm(self, tmp_path):
        local_store, ssh_store = tmp_path / "local", tmp_path / "ssh"
        CampaignExecutor(store=ResultStore(local_store),
                         farm=LocalFarm()).run(self._specs())
        hosts = [HostSpec(host="localhost", slots=2,
                          python=[sys.executable],
                          ssh=[sys.executable, str(_fake_ssh(tmp_path))],
                          env={"PYTHONPATH": str(SRC_DIR)})]
        CampaignExecutor(store=ResultStore(ssh_store),
                         farm=SshHostsFarm(hosts)).run(self._specs())
        assert _entries_modulo_timing(local_store) == _entries_modulo_timing(
            ssh_store)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestFarmCli:
    def _sweep(self, tmp_path: Path) -> Path:
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({
            "name": "farm-cli",
            "grids": [{"experiments": ["table1"], "scales": ["small"],
                       "seeds": [0, 1]}],
        }))
        return spec

    def test_run_with_subprocess_farm(self, tmp_path, capsys):
        rc = campaign_main([
            "run", str(self._sweep(tmp_path)),
            "--farm", "subprocess:2", "--store", str(tmp_path / "store")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "subprocess (2 workers)" in out
        assert "worker proc/0" in out
        assert ResultStore(tmp_path / "store").status_counts() == {"ok": 2}

    def test_run_with_bad_farm_spec(self, tmp_path, capsys):
        rc = campaign_main([
            "run", str(self._sweep(tmp_path)),
            "--farm", "smoke-signals", "--store", str(tmp_path / "store")])
        assert rc == 2
        assert "unknown farm spec" in capsys.readouterr().err

    def test_farm_check_cli(self, capsys):
        from repro.farm.__main__ import main as farm_main

        assert farm_main(["check", "local"]) == 0
        assert "all 1 slots reachable" in capsys.readouterr().out
