"""Tests for the ABM and Pushout baselines."""

import math

import pytest

from repro.core import ABM, Pushout
from repro.sim import Simulator
from repro.sim.units import GBPS, KB, MB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig


def make_switch(manager, num_ports=4, buffer_bytes=200 * KB, queues_per_port=1):
    sim = Simulator()
    config = SwitchConfig(
        num_ports=num_ports,
        queues_per_port=queues_per_port,
        port_rate_bps=10 * GBPS,
        buffer_bytes=buffer_bytes,
    )
    return SharedMemorySwitch(config, manager, sim), sim


class TestABM:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ABM(alpha=0)
        with pytest.raises(ValueError):
            ABM(min_drain_fraction=0)
        with pytest.raises(ValueError):
            ABM(min_drain_fraction=2)

    def test_threshold_divides_by_active_queues(self):
        abm = ABM(alpha=2.0)
        switch, _ = make_switch(abm, num_ports=4, buffer_bytes=1 * MB)
        q0 = switch.queue_for(0)
        t_single = abm.threshold(q0, 0.0)
        # Backlog two other queues of the same priority (the first packet of
        # each port goes straight to the wire, the rest stay queued).
        for port in (1, 2):
            for _ in range(4):
                switch.receive(Packet(size_bytes=1500), port)
        assert switch.active_queue_count(priority=0) == 2
        t_two_active = abm.threshold(q0, 0.0)
        assert t_two_active < t_single
        # Roughly half, modulo the small free-buffer reduction from ~12 KB added.
        assert t_two_active == pytest.approx(t_single / 2, rel=0.05)

    def test_new_queue_gets_full_drain_credit(self):
        abm = ABM(alpha=2.0)
        switch, _ = make_switch(abm)
        q0 = switch.queue_for(0)
        assert abm._normalized_drain(q0) == 1.0

    def test_slow_draining_queue_gets_lower_threshold(self):
        abm = ABM(alpha=2.0)
        switch, _ = make_switch(abm)
        q0, q1 = switch.queue_for(0), switch.queue_for(1)
        # Fake drain-rate estimates: q0 drains at 10% of port rate, q1 at 100%.
        q0._drain_rate = 0.1 * switch.port_rate_bytes_per_sec(0)
        q1._drain_rate = switch.port_rate_bytes_per_sec(1)
        assert abm.threshold(q0, 0.0) < abm.threshold(q1, 0.0)

    def test_drain_fraction_floor(self):
        abm = ABM(alpha=2.0, min_drain_fraction=0.2)
        switch, _ = make_switch(abm)
        q0 = switch.queue_for(0)
        q0._drain_rate = 1.0  # practically zero compared to 10 Gbps
        assert abm._normalized_drain(q0) == pytest.approx(0.2)


class TestPushout:
    def test_threshold_is_unbounded(self):
        po = Pushout()
        switch, _ = make_switch(po)
        assert math.isinf(po.threshold(switch.queue_for(0), 0.0))

    def test_accepts_whenever_buffer_has_room(self):
        po = Pushout()
        switch, _ = make_switch(po, buffer_bytes=100 * KB)
        decision = po.admit(switch.queue_for(0), 1500, 0.0)
        assert decision.accept and not decision.evictions

    def test_evicts_longest_queue_when_full(self):
        po = Pushout()
        switch, _ = make_switch(po, num_ports=2, buffer_bytes=60 * KB)
        # Fill queue 0 (longest) and partially queue 1.
        while switch.cell_pool.can_fit(1500):
            switch.receive(Packet(size_bytes=1500), 0)
        decision = po.admit(switch.queue_for(1), 1500, 0.0)
        assert decision.accept
        assert decision.evictions
        assert all(req.queue_id == 0 for req in decision.evictions)

    def test_drops_arrival_when_own_queue_is_longest(self):
        po = Pushout()
        switch, _ = make_switch(po, num_ports=2, buffer_bytes=60 * KB)
        while switch.cell_pool.can_fit(1500):
            switch.receive(Packet(size_bytes=1500), 0)
        decision = po.admit(switch.queue_for(0), 1500, 0.0)
        assert not decision.accept
        assert decision.reason == "self_longest"

    def test_rejects_packet_larger_than_buffer(self):
        po = Pushout()
        switch, _ = make_switch(po, buffer_bytes=10 * KB)
        decision = po.admit(switch.queue_for(0), 100 * KB, 0.0)
        assert not decision.accept
        assert decision.reason == "packet_larger_than_buffer"

    def test_end_to_end_never_drops_burst_when_others_hold_buffer(self):
        """The key Pushout property: arrivals at a short queue displace the long one."""
        po = Pushout()
        switch, sim = make_switch(po, num_ports=2, buffer_bytes=100 * KB)
        for i in range(200):
            sim.schedule(i * 1e-7, lambda: switch.receive(Packet(size_bytes=1500), 0))
        sim.run(until=200 * 1e-7)
        drops_before = switch.stats.dropped_packets
        # Now a burst arrives at queue 1 while queue 0 holds most of the buffer.
        for i in range(20):
            sim.schedule(1e-9 + i * 1e-7,
                         lambda: switch.receive(Packet(size_bytes=1500), 1))
        sim.run(until=0.01)
        q1 = switch.queue_for(1)
        assert q1.dropped_packets == 0
        assert switch.stats.evicted_packets > 0

    def test_describe(self):
        assert "head" in Pushout(evict_from_head=True).describe()
        assert "tail" in Pushout(evict_from_head=False).describe()
