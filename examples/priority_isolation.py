#!/usr/bin/env python3
"""Example: the buffer-choking problem and how Occamy mitigates it.

High-priority (latency-sensitive) incast queries share an egress port with
low-priority long-lived background flows under strict-priority scheduling --
the Section 3.1 / Figure 15 scenario.  Because the low-priority queues drain
slowly (they only get leftover bandwidth), a non-preemptive buffer manager
cannot reclaim their buffer in time and the high-priority traffic suffers.

Run it with::

    python examples/priority_isolation.py
"""

from repro.core import ABM, DynamicThreshold, Occamy, Pushout
from repro.netsim.transport.base import TransportConfig
from repro.sim.rng import SeededRNG
from repro.sim.units import GBPS
from repro.topology import SingleSwitchTopology
from repro.workloads import FlowSpec, IncastQueryGenerator


def build_flows(topo, rng, duration=0.02, with_background=True):
    """High-priority queries to host 0 plus low-priority long flows to host 0."""
    query_size = int(1.5 * topo.buffer_bytes)
    flows = IncastQueryGenerator(
        clients=[0], servers=topo.hosts[1:], query_size_bytes=query_size,
        fanout=14, queries_per_second=400, rng=rng, priority=0,
    ).generate(duration=duration)
    if with_background:
        long_flow_bytes = int(10 * GBPS / 8 * duration)
        for sender in (1, 2):
            for _ in range(7):
                flows.append(FlowSpec(src=sender, dst=0, size_bytes=long_flow_bytes,
                                      start_time=0.0, priority=1))
    return flows


def run_scheme(label, manager_factory, with_background, seed=3):
    topo = SingleSwitchTopology(
        num_hosts=8,
        manager_factory=manager_factory,
        link_rate_bps=10 * GBPS,
        queues_per_port=2,           # one high-priority + one low-priority queue
        scheduler="strict",
        ecn_threshold_bytes=65 * 1500,
    )
    # Commodity-chip style per-queue alpha: generous for the HP class, tight
    # for the LP class (exactly the paper's configuration).
    for queue in topo.switch.queue_views():
        queue.alpha_override = 8.0 if queue.class_index == 0 else 1.0

    flows = build_flows(topo, SeededRNG(seed), with_background=with_background)
    topo.network.set_transport_config(TransportConfig(min_rto=2e-3))
    query_flows = [f for f in flows if f.query_id is not None]
    bg_flows = [f for f in flows if f.query_id is None]
    topo.network.inject_flows(query_flows, transport="dctcp")
    topo.network.inject_flows(bg_flows, transport="cubic")
    topo.network.run(until=0.2)
    return topo.network.flow_stats.average_qct() * 1e3


def main():
    schemes = [
        ("DT", lambda: DynamicThreshold(alpha=1.0)),
        ("ABM", lambda: ABM(alpha=2.0)),
        ("Pushout", lambda: Pushout()),
        ("Occamy", lambda: Occamy(alpha=8.0)),
    ]
    print("Buffer choking: high-priority queries vs low-priority background")
    print("sharing one egress port under strict priority\n")
    print(f"{'scheme':10s} {'QCT w/o background':>20s} {'QCT w/ background':>20s} {'degradation':>12s}")
    for label, factory in schemes:
        without = run_scheme(label, factory, with_background=False)
        with_bg = run_scheme(label, factory, with_background=True)
        print(f"{label:10s} {without:17.3f} ms {with_bg:17.3f} ms "
              f"{with_bg / max(1e-9, without):11.2f}x")
    print("\nIdeally the low-priority background should not affect the high-priority")
    print("queries at all; preemptive schemes (Occamy, Pushout) come closest.")


if __name__ == "__main__":
    main()
