#!/usr/bin/env python3
"""Quickstart: compare buffer-management schemes on a single shared-memory switch.

This example builds the smallest interesting scenario from the paper: an
incast burst arriving at a switch whose buffer is already largely occupied by
a long-lived flow on another port.  It runs the scenario under DT, ABM,
Pushout and Occamy and prints how much of the burst each scheme absorbed.

Run it with::

    python examples/quickstart.py
"""

from repro.core import ABM, DynamicThreshold, Occamy, Pushout
from repro.sim import Simulator
from repro.sim.units import GBPS, KB, MB
from repro.switchsim import Packet, SharedMemorySwitch, SwitchConfig
from repro.workloads import burst_arrivals, constant_rate_arrivals


def run_scheme(name, manager, burst_kb=600):
    """Congest port 0, then send a burst to port 1; report the burst's fate."""
    sim = Simulator()
    config = SwitchConfig(
        num_ports=2,
        port_rate_bps=10 * GBPS,
        buffer_bytes=2 * MB,
        # The chip has far more memory bandwidth than these two ports use,
        # which is the redundant bandwidth Occamy leverages.
        memory_bandwidth_bps=2 * 32 * 10 * GBPS,
    )
    switch = SharedMemorySwitch(config, manager, sim)

    # Long-lived traffic arrives at 100 Gbps for a 10 Gbps port: queue 0 fills
    # to its threshold and stays there.
    for t, size in constant_rate_arrivals(100 * GBPS, duration=600e-6):
        sim.at(t, lambda s=size: switch.receive(Packet(size_bytes=s), 0))
    # After 300 us, a burst arrives for port 1.
    for t, size in burst_arrivals(burst_kb * KB, 100 * GBPS, start_time=300e-6):
        sim.at(t, lambda s=size: switch.receive(Packet(size_bytes=s), 1))
    sim.run(until=600e-6)

    burst_queue = switch.queue_for(1)
    print(f"{name:10s} burst drops: {burst_queue.dropped_packets:4d}   "
          f"expelled from long-lived queue: {switch.stats.expelled_packets:5d}   "
          f"evicted (pushout): {switch.stats.evicted_packets:5d}")


def main():
    print("Burst absorption with a 600 KB burst and a congested neighbour queue")
    print("(2 MB shared buffer, 10 Gbps ports)\n")
    run_scheme("DT a=1", DynamicThreshold(alpha=1.0))
    run_scheme("DT a=4", DynamicThreshold(alpha=4.0))
    run_scheme("ABM", ABM(alpha=2.0))
    run_scheme("Pushout", Pushout())
    run_scheme("Occamy", Occamy(alpha=8.0))
    print("\nOccamy and Pushout absorb the burst by reclaiming the over-allocated")
    print("buffer; DT with a large alpha drops packets before the burst gets its")
    print("fair share (the anomalous behaviour of Figure 3b / Figure 11).")


if __name__ == "__main__":
    main()
