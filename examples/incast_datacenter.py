#!/usr/bin/env python3
"""End-to-end example: incast queries + web-search background over DCTCP.

This reproduces, at small scale, the paper's DPDK-testbed experiment
(Section 6.2 / Figure 13): a partition-aggregate application issues incast
queries to a set of servers while web-search background flows load the same
shared-memory switch.  The example compares query completion times (QCT)
under DT and Occamy.

Run it with::

    python examples/incast_datacenter.py
"""

from repro.core import DynamicThreshold, Occamy
from repro.netsim.transport.base import TransportConfig
from repro.sim.rng import SeededRNG
from repro.sim.units import GBPS
from repro.topology import SingleSwitchTopology
from repro.workloads import (
    IncastQueryGenerator,
    PoissonFlowGenerator,
    WEB_SEARCH_DISTRIBUTION,
    flows_per_second_for_load,
)


def run_scheme(label, manager_factory, seed=1):
    topo = SingleSwitchTopology(
        num_hosts=8,
        manager_factory=manager_factory,
        link_rate_bps=10 * GBPS,
        buffer_kb_per_port_per_gbps=5.12,   # Broadcom-Tomahawk-like shallow buffer
        ecn_threshold_bytes=65 * 1500,      # DCTCP ECN threshold (65 MTU)
    )
    rng = SeededRNG(seed)

    # Incast queries: host 0 queries the 7 other hosts; the total response is
    # ~80% of the shared buffer, the regime where buffer management matters.
    query_size = int(0.8 * topo.buffer_bytes)
    queries = IncastQueryGenerator(
        clients=[0], servers=topo.hosts[1:], query_size_bytes=query_size,
        fanout=14, queries_per_second=600, rng=rng.child("queries"),
    ).generate(duration=0.02)

    # Web-search background at 50% load between random host pairs.
    bg_rate = flows_per_second_for_load(
        0.5, 10 * GBPS, WEB_SEARCH_DISTRIBUTION.mean(), num_senders=1)
    background = PoissonFlowGenerator(
        topo.hosts, WEB_SEARCH_DISTRIBUTION,
        flows_per_second=bg_rate * len(topo.hosts), rng=rng.child("bg"),
    ).generate(duration=0.02)

    topo.network.set_transport_config(TransportConfig(min_rto=2e-3))
    topo.network.inject_flows(queries + background, transport="dctcp")
    topo.network.run(until=0.2)

    stats = topo.network.flow_stats
    print(f"{label:10s} avg QCT {stats.average_qct() * 1e3:7.3f} ms   "
          f"p99 QCT {stats.p99_qct() * 1e3:7.3f} ms   "
          f"bg FCT {stats.average_fct(query_traffic=False) * 1e3:6.3f} ms   "
          f"drops {topo.switch.stats.dropped_packets:4d}   "
          f"expelled {topo.switch.stats.expelled_packets:4d}   "
          f"RTOs {topo.network.total_timeouts():3d}")


def main():
    print("Incast queries (80% of buffer) + web-search background at 50% load")
    print("8 hosts x 10 Gbps, 410 KB shared buffer, DCTCP\n")
    run_scheme("DT a=1", lambda: DynamicThreshold(alpha=1.0))
    run_scheme("Occamy", lambda: Occamy(alpha=8.0))
    print("\nOccamy admits the bursts with a large alpha and reclaims buffer from")
    print("the background queues, avoiding the retransmission timeouts that")
    print("dominate DT's tail QCT.")


if __name__ == "__main__":
    main()
