#!/usr/bin/env python3
"""Example: leaf-spine fabric sweep using the experiment harness directly.

The :mod:`repro.experiments` package exposes every figure of the paper as a
``run()`` function; this example drives the Figure 17 harness (web-search
background on a leaf-spine fabric) programmatically, which is the easiest way
to script custom parameter sweeps on top of the library.

Run it with::

    python examples/leaf_spine_sweep.py
"""

from repro.experiments import fig17_websearch
from repro.experiments.common import get_scale


def main():
    # The "bench" scale keeps this example fast (a couple of minutes at most);
    # switch to "small" or "paper" for larger fabrics.
    result = fig17_websearch.run(scale="bench", schemes=["occamy", "dt"],
                                 query_size_fractions=(0.4, 0.8))
    print(result)

    # Post-process the rows like any experiment result: compare Occamy vs DT.
    print("\nOccamy vs DT (average QCT slowdown):")
    for fraction in sorted({row["query_size_frac"] for row in result.rows}):
        occ = result.filter(query_size_frac=fraction, scheme="occamy")[0]
        dt = result.filter(query_size_frac=fraction, scheme="dt")[0]
        improvement = 1.0 - occ["avg_qct_slowdown"] / max(1e-9, dt["avg_qct_slowdown"])
        print(f"  query size {fraction:.0%} of buffer: "
              f"occamy {occ['avg_qct_slowdown']:.2f} vs dt {dt['avg_qct_slowdown']:.2f} "
              f"({improvement:+.0%} QCT improvement)")

    config = get_scale("bench")
    print(f"\nFabric: {config.num_leaves} leaves x {config.num_spines} spines, "
          f"{config.hosts_per_leaf} hosts/leaf, "
          f"{config.fabric_link_rate_bps / 1e9:.0f} Gbps links")


if __name__ == "__main__":
    main()
