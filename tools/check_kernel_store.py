"""Verify a kernel-sweep campaign store: pooled results == heap results.

Usage: python tools/check_kernel_store.py <store-dir>

Loads every run document from ``<store-dir>/runs``, groups the runs by
their spec with the ``engine`` section stripped (the kernel choice is the
one intended difference), and requires each group to contain one run per
kernel with byte-identical ``result`` payloads.  This is the campaign-level
counterpart of ``python -m repro.perf differential``: the pooled kernel
must be an allocation strategy, never a behavior change.
"""

from __future__ import annotations

import copy
import json
import pathlib
import sys


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    runs_dir = pathlib.Path(argv[0]) / "runs"
    groups: dict[str, dict[str, str]] = {}
    for path in sorted(runs_dir.glob("*.json")):
        doc = json.loads(path.read_text())
        if doc["status"] != "ok":
            print(f"FAIL: run {path.name} has status {doc['status']!r}")
            return 1
        spec = copy.deepcopy(doc["spec"])
        engine = spec.get("params", {}).get("scenario", {}).pop("engine", None)
        kernel = (engine or {}).get("kernel", "heap")
        key = json.dumps(spec, sort_keys=True)
        payload = json.dumps(doc["result"], sort_keys=True)
        groups.setdefault(key, {})[kernel] = payload
    if not groups:
        print(f"FAIL: no runs found under {runs_dir}")
        return 1
    failures = 0
    for key, by_kernel in sorted(groups.items()):
        spec = json.loads(key)
        name = spec["params"]["scenario"].get("name", "?")
        label = f"{name} seed={spec.get('seed')}"
        if set(by_kernel) != {"heap", "pooled"}:
            print(f"FAIL: {label}: kernels present: {sorted(by_kernel)}")
            failures += 1
        elif by_kernel["heap"] != by_kernel["pooled"]:
            print(f"FAIL: {label}: pooled result diverges from heap")
            failures += 1
        else:
            print(f"ok: {label}: pooled == heap "
                  f"({len(by_kernel['heap'])} canonical bytes)")
    if failures:
        print(f"FAIL: {failures}/{len(groups)} groups diverged")
        return 1
    print(f"OK: {len(groups)} spec groups byte-identical across kernels")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
