"""Run farms: dispatch campaign runs across local workers and ssh hosts."""

from repro.farm.farm import (
    HostSpec,
    LocalFarm,
    RunFarm,
    SshHostsFarm,
    SubprocessFarm,
    WorkerSlot,
    make_farm,
)
from repro.farm.protocol import (
    PROTOCOL_VERSION,
    WorkerLossError,
    parse_response,
    ping_request,
    run_request,
    worker_main,
)

__all__ = [
    "HostSpec",
    "LocalFarm",
    "PROTOCOL_VERSION",
    "RunFarm",
    "SshHostsFarm",
    "SubprocessFarm",
    "WorkerLossError",
    "WorkerSlot",
    "make_farm",
    "parse_response",
    "ping_request",
    "run_request",
    "worker_main",
]
