"""Run farms: dispatch campaign runs across workers and machines.

A :class:`RunFarm` owns a fixed set of :class:`WorkerSlot`\\ s and turns a
list of ``(index, RunSpec)`` jobs into ``(index, RunOutcome)`` results in
completion order, which the :class:`~repro.campaign.executor.CampaignExecutor`
streams into its :class:`~repro.campaign.store.ResultStore` as they arrive.
Three backends (the FireSim run-farm shape: one abstraction, pluggable
provisioning):

* ``local`` -- one inline slot in this process; byte-identical results to
  the serial executor path, useful as the determinism oracle;
* ``subprocess`` -- N slots, each run executed by a fresh
  ``python -m repro.farm worker`` subprocess on this machine;
* ``ssh-hosts`` -- slots on remote hosts reached via stdlib ``subprocess``
  + ``ssh``, described by a JSON hosts file (the externally-provisioned
  farm: the hosts already exist, the farm only dispatches).

All remote execution speaks the pickle-free JSON protocol of
:mod:`repro.farm.protocol`.  A worker loss (death, garbage output, protocol
mismatch) is distinct from a run failure: the run is retried with
exponential backoff, preferentially landing on another worker because the
losing slot sits out the backoff window; only after ``max_attempts`` losses
does the run surface as a failed outcome.
"""

from __future__ import annotations

import json
import os
import queue
import shlex
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.campaign.executor import (
    RunOutcome,
    STATUS_FAILED,
    execute_run,
    outcome_from_payload,
)
from repro.campaign.spec import RunSpec
from repro.farm.protocol import (
    WorkerLossError,
    parse_response,
    ping_request,
    run_request,
)

#: Called with the farm's health rows whenever any slot changes state.
WorkerCallback = Callable[[List[Dict[str, object]]], None]


@dataclass
class WorkerSlot:
    """One unit of execution capacity plus its health counters."""

    name: str
    host: str
    runs_ok: int = 0
    runs_failed: int = 0
    #: Worker deaths observed on this slot (not run failures).
    losses: int = 0
    #: Runs this slot handed back for retry elsewhere after a loss.
    retries: int = 0
    elapsed: float = 0.0
    busy: bool = False
    current: str = ""

    def health_row(self) -> Dict[str, object]:
        return {
            "worker": self.name,
            "host": self.host,
            "ok": self.runs_ok,
            "failed": self.runs_failed,
            "lost": self.losses,
            "retried": self.retries,
            "elapsed": round(self.elapsed, 3),
            "state": (f"running {self.current}" if self.busy else "idle"),
        }


class RunFarm:
    """Base farm: slot bookkeeping plus the threaded dispatch loop."""

    kind = "farm"

    def __init__(self, slots: Sequence[WorkerSlot],
                 max_attempts: int = 3, backoff_s: float = 0.5) -> None:
        if not slots:
            raise ValueError("a farm needs at least one worker slot")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s cannot be negative, got {backoff_s}")
        self.slots = list(slots)
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        #: Optional health hook (the CampaignBoard's worker section).
        self.on_worker: Optional[WorkerCallback] = None
        self._lock = threading.Lock()

    # -- backend interface ---------------------------------------------
    def run_payload(self, slot: WorkerSlot,
                    request: Dict[str, object]) -> Dict[str, object]:
        """Execute one protocol request on ``slot``; returns the response.

        Must raise :class:`WorkerLossError` on worker death or garbage
        output (a failed *run* comes back inside a normal response).
        """
        raise NotImplementedError

    # -- health ---------------------------------------------------------
    def health_rows(self) -> List[Dict[str, object]]:
        return [slot.health_row() for slot in self.slots]

    def describe(self) -> str:
        return f"{self.kind} ({len(self.slots)} workers)"

    def check(self) -> List[Tuple[str, bool, str]]:
        """Ping every slot; returns ``(slot name, reachable, detail)`` rows."""
        rows: List[Tuple[str, bool, str]] = []
        for slot in self.slots:
            start = time.perf_counter()
            try:
                response = self.run_payload(slot, ping_request())
                if not response.get("pong"):
                    raise WorkerLossError(f"unexpected response {response!r}")
            except WorkerLossError as exc:
                rows.append((slot.name, False, str(exc)))
            else:
                rows.append((slot.name, True,
                             f"pong in {time.perf_counter() - start:.2f}s"))
        return rows

    def _notify(self) -> None:
        if self.on_worker is None:
            return
        with self._lock:
            self.on_worker(self.health_rows())

    # -- dispatch -------------------------------------------------------
    def dispatch(self, jobs: Iterable[Tuple[int, RunSpec]],
                 fail_fast: bool = False
                 ) -> Iterator[Tuple[int, RunOutcome]]:
        """Run ``jobs`` across the slots, yielding in completion order.

        With ``fail_fast``, the first failed outcome stops new work from
        being dispensed; runs already in flight still finish and are
        yielded (the executor persists them -- nothing silently dropped).
        """
        jobs = list(jobs)
        if not jobs:
            return
        work: "queue.Queue[Tuple[int, RunSpec, int]]" = queue.Queue()
        results: "queue.Queue[Tuple[int, RunOutcome]]" = queue.Queue()
        for index, spec in jobs:
            work.put((index, spec, 1))
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=self._slot_loop, args=(slot, work, results, stop),
                name=f"farm-{slot.name}", daemon=True)
            for slot in self.slots
        ]
        for thread in threads:
            thread.start()
        remaining = len(jobs)
        halted = False
        try:
            while remaining:
                index, outcome = results.get()
                remaining -= 1
                yield index, outcome
                if fail_fast and not outcome.ok and not halted:
                    halted = True
                    stop.set()
                    # Drain undispensed jobs; anything a slot already holds
                    # stays in flight and arrives through `results` above.
                    while True:
                        try:
                            work.get_nowait()
                        except queue.Empty:
                            break
                        remaining -= 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)

    def _slot_loop(self, slot: WorkerSlot,
                   work: "queue.Queue[Tuple[int, RunSpec, int]]",
                   results: "queue.Queue[Tuple[int, RunOutcome]]",
                   stop: threading.Event) -> None:
        while not stop.is_set():
            try:
                index, spec, attempt = work.get(timeout=0.05)
            except queue.Empty:
                continue
            slot.busy, slot.current = True, spec.label()
            self._notify()
            start = time.perf_counter()
            try:
                outcome = self._run_once(slot, spec)
            except WorkerLossError as exc:
                slot.losses += 1
                slot.busy, slot.current = False, ""
                self._notify()
                if attempt >= self.max_attempts:
                    results.put((index, RunOutcome(
                        spec=spec,
                        status=STATUS_FAILED,
                        elapsed=time.perf_counter() - start,
                        error=(f"worker lost after {attempt} attempts "
                               f"(last on {slot.name}): {exc}"),
                        traceback=str(exc),
                    )))
                    continue
                slot.retries += 1
                # Exponential backoff, slept by the *losing* slot: the job
                # goes straight back on the queue after the wait, but this
                # slot is the last to ask for more work, so an idle healthy
                # worker picks the retry up first.
                stop.wait(min(self.backoff_s * (2 ** (attempt - 1)), 10.0))
                if stop.is_set():
                    results.put((index, RunOutcome(
                        spec=spec,
                        status=STATUS_FAILED,
                        elapsed=time.perf_counter() - start,
                        error=(f"worker lost on {slot.name} and campaign "
                               f"halted before retry: {exc}"),
                        traceback=str(exc),
                    )))
                    return
                work.put((index, spec, attempt + 1))
                continue
            slot.busy, slot.current = False, ""
            if outcome.status == STATUS_FAILED:
                slot.runs_failed += 1
            else:
                slot.runs_ok += 1
            slot.elapsed += outcome.elapsed
            self._notify()
            results.put((index, outcome))

    def _run_once(self, slot: WorkerSlot, spec: RunSpec) -> RunOutcome:
        response = self.run_payload(slot, run_request(spec.to_dict()))
        payload = response.get("outcome")
        if not isinstance(payload, dict):
            raise WorkerLossError(
                f"worker response carries no outcome: {response!r}")
        try:
            return outcome_from_payload(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkerLossError(
                f"malformed outcome payload: {exc}") from exc


class LocalFarm(RunFarm):
    """One inline slot in this process -- the degenerate (oracle) farm."""

    kind = "local"

    def __init__(self) -> None:
        super().__init__([WorkerSlot(name="local/0", host="inline")])

    def dispatch(self, jobs: Iterable[Tuple[int, RunSpec]],
                 fail_fast: bool = False
                 ) -> Iterator[Tuple[int, RunOutcome]]:
        # Inline and serial: exactly the executor's jobs=1 code path, so
        # results (and the persisted store) are byte-identical to it.
        slot = self.slots[0]
        for index, spec in jobs:
            slot.busy, slot.current = True, spec.label()
            self._notify()
            outcome = execute_run(spec)
            slot.busy, slot.current = False, ""
            if outcome.status == STATUS_FAILED:
                slot.runs_failed += 1
            else:
                slot.runs_ok += 1
            slot.elapsed += outcome.elapsed
            self._notify()
            yield index, outcome
            if fail_fast and not outcome.ok:
                break

    def run_payload(self, slot: WorkerSlot,
                    request: Dict[str, object]) -> Dict[str, object]:
        # Only `check` lands here; runs go through the inline dispatch.
        if request.get("ping"):
            return {"protocol": request["protocol"], "pong": True}
        raise NotImplementedError("LocalFarm executes runs inline")


def _subprocess_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """The spawn environment: inherit, then guarantee ``repro`` is importable."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_dir + os.pathsep + existing if existing
                             else src_dir)
    if extra:
        env.update(extra)
    return env


class SubprocessFarm(RunFarm):
    """N slots, each run executed by a fresh local worker subprocess."""

    kind = "subprocess"

    def __init__(self, workers: int = 2,
                 python: Optional[Sequence[str]] = None,
                 env: Optional[Dict[str, str]] = None,
                 timeout_s: Optional[float] = None,
                 max_attempts: int = 3, backoff_s: float = 0.5) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        super().__init__(
            [WorkerSlot(name=f"proc/{i}", host="subprocess")
             for i in range(workers)],
            max_attempts=max_attempts, backoff_s=backoff_s)
        self.python = list(python) if python is not None else [sys.executable]
        self.env = dict(env) if env else {}
        self.timeout_s = timeout_s

    def worker_argv(self) -> List[str]:
        return [*self.python, "-m", "repro.farm", "worker"]

    def run_payload(self, slot: WorkerSlot,
                    request: Dict[str, object]) -> Dict[str, object]:
        return _invoke_worker(self.worker_argv(), request,
                              env=_subprocess_env(self.env),
                              timeout_s=self.timeout_s)


@dataclass
class HostSpec:
    """One entry of an ``ssh-hosts`` farm's JSON hosts file."""

    host: str
    slots: int = 1
    python: List[str] = field(default_factory=lambda: ["python3"])
    ssh: List[str] = field(default_factory=lambda: ["ssh", "-o", "BatchMode=yes"])
    workdir: str = ""
    env: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HostSpec":
        host = str(data.get("host", "")).strip()
        if not host:
            raise ValueError(f"host entry needs a non-empty 'host': {data!r}")
        slots = int(data.get("slots", 1))
        if slots < 1:
            raise ValueError(f"host {host}: slots must be >= 1, got {slots}")
        python = data.get("python", ["python3"])
        if isinstance(python, str):
            python = [python]
        ssh = data.get("ssh", ["ssh", "-o", "BatchMode=yes"])
        if isinstance(ssh, str):
            ssh = [ssh]
        return cls(
            host=host,
            slots=slots,
            python=[str(t) for t in python],
            ssh=[str(t) for t in ssh],
            workdir=str(data.get("workdir", "")),
            env={str(k): str(v) for k, v in dict(data.get("env", {})).items()},
        )

    def remote_command(self) -> str:
        """The shell command ssh runs on the remote side, fully quoted."""
        worker = [*self.python, "-m", "repro.farm", "worker"]
        parts: List[str] = []
        if self.workdir:
            parts.append(f"cd {shlex.quote(self.workdir)} &&")
        if self.env:
            parts.append("env " + " ".join(
                f"{key}={shlex.quote(value)}"
                for key, value in sorted(self.env.items())))
        parts.append(" ".join(shlex.quote(token) for token in worker))
        return " ".join(parts)

    def argv(self) -> List[str]:
        return [*self.ssh, self.host, self.remote_command()]


class SshHostsFarm(RunFarm):
    """Externally-provisioned hosts reached via stdlib subprocess + ssh."""

    kind = "ssh-hosts"

    def __init__(self, hosts: Sequence[HostSpec],
                 timeout_s: Optional[float] = None,
                 max_attempts: int = 3, backoff_s: float = 0.5) -> None:
        if not hosts:
            raise ValueError("ssh-hosts farm needs at least one host")
        slots: List[WorkerSlot] = []
        self._slot_hosts: Dict[str, HostSpec] = {}
        for host in hosts:
            for i in range(host.slots):
                slot = WorkerSlot(name=f"{host.host}/{i}", host=host.host)
                slots.append(slot)
                self._slot_hosts[slot.name] = host
        super().__init__(slots, max_attempts=max_attempts, backoff_s=backoff_s)
        self.hosts = list(hosts)
        self.timeout_s = timeout_s

    @classmethod
    def from_file(cls, path: str | Path,
                  timeout_s: Optional[float] = None) -> "SshHostsFarm":
        """Load a hosts file: a JSON list of host entries, or
        ``{"hosts": [...], "max_attempts": ..., "backoff_s": ...}``."""
        data = json.loads(Path(path).read_text())
        options: Dict[str, object] = {}
        if isinstance(data, dict):
            options = data
            data = data.get("hosts")
        if not isinstance(data, list) or not data:
            raise ValueError(
                f"hosts file {path} must contain a non-empty host list")
        return cls(
            [HostSpec.from_dict(entry) for entry in data],
            timeout_s=timeout_s,
            max_attempts=int(options.get("max_attempts", 3)),
            backoff_s=float(options.get("backoff_s", 0.5)),
        )

    def run_payload(self, slot: WorkerSlot,
                    request: Dict[str, object]) -> Dict[str, object]:
        host = self._slot_hosts[slot.name]
        return _invoke_worker(host.argv(), request, env=None,
                              timeout_s=self.timeout_s)


def _invoke_worker(argv: Sequence[str], request: Dict[str, object],
                   env: Optional[Dict[str, str]],
                   timeout_s: Optional[float]) -> Dict[str, object]:
    """One worker invocation: request on stdin, response line on stdout."""
    try:
        proc = subprocess.run(
            list(argv),
            input=json.dumps(request, sort_keys=True),
            capture_output=True, text=True, env=env, timeout=timeout_s,
        )
    except subprocess.TimeoutExpired as exc:
        raise WorkerLossError(
            f"worker timed out after {timeout_s}s: {argv[0]}") from exc
    except OSError as exc:
        raise WorkerLossError(f"cannot launch worker {argv!r}: {exc}") from exc
    if proc.returncode != 0:
        stderr_tail = proc.stderr.strip().splitlines()[-3:]
        raise WorkerLossError(
            f"worker exited {proc.returncode}: "
            + (" | ".join(stderr_tail) or "no stderr"))
    return parse_response(proc.stdout)


def make_farm(spec: str, jobs: int = 1) -> RunFarm:
    """Build a farm from a CLI ``--farm`` string.

    Forms: ``local``, ``subprocess`` (slot count from ``jobs`` when > 1,
    else the machine's CPU count), ``subprocess:N``, and
    ``ssh-hosts:HOSTS.json`` (alias ``ssh:``).
    """
    spec = spec.strip()
    if spec == "local":
        return LocalFarm()
    if spec == "subprocess" or spec.startswith("subprocess:"):
        _, _, count = spec.partition(":")
        if count:
            workers = int(count)
        elif jobs > 1:
            workers = jobs
        else:
            workers = os.cpu_count() or 2
        return SubprocessFarm(workers=workers)
    for prefix in ("ssh-hosts:", "ssh:"):
        if spec.startswith(prefix):
            return SshHostsFarm.from_file(spec[len(prefix):])
    raise ValueError(
        f"unknown farm spec {spec!r}; expected 'local', 'subprocess[:N]' "
        "or 'ssh-hosts:HOSTS.json'")
