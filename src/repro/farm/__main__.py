"""``python -m repro.farm``: the worker entry point and farm health checks.

Subcommands:

* ``worker`` -- execute one JSON request from stdin and print the response
  (the remote end of every subprocess / ssh-hosts farm slot);
* ``check FARMSPEC`` -- ping every slot of a farm and report reachability,
  e.g. ``python -m repro.farm check ssh-hosts:hosts.json``.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.farm.farm import make_farm
from repro.farm.protocol import worker_main


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="Farm worker entry point and health checks.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "worker",
        help="read one JSON request from stdin, print one response line")

    check = sub.add_parser("check", help="ping every slot of a farm")
    check.add_argument(
        "farm", help="farm spec: local, subprocess[:N] or ssh-hosts:HOSTS.json")

    args = parser.parse_args(argv)

    if args.command == "worker":
        return worker_main()

    farm = make_farm(args.farm)
    print(f"farm: {farm.describe()}")
    failures = 0
    for name, reachable, detail in farm.check():
        status = "ok" if reachable else "UNREACHABLE"
        print(f"  {name:<24} {status:<12} {detail}")
        failures += 0 if reachable else 1
    if failures:
        print(f"{failures}/{len(farm.slots)} slots unreachable")
        return 1
    print(f"all {len(farm.slots)} slots reachable")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
