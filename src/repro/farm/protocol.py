"""The farm's JSON-over-stdio worker protocol.

A farm worker is one invocation of ``python -m repro.farm worker``: it reads
a single JSON request from stdin, executes it, prints a single JSON response
line to stdout and exits.  Everything is plain JSON -- no pickling -- so the
same worker runs under a local subprocess pool, through ``ssh`` on a remote
host, or inside a container, and a worker built from a different checkout
fails loudly on a protocol-version mismatch instead of silently
mis-executing.

Requests::

    {"protocol": 1, "spec": {... RunSpec dict ...}}   execute one run
    {"protocol": 1, "ping": true}                     health check

Responses (one line on stdout)::

    {"protocol": 1, "outcome": {... outcome payload ...}}
    {"protocol": 1, "pong": true}

A malformed request is a *worker-side* error: the worker writes the problem
to stderr and exits nonzero, which the farm surfaces as a worker loss (and
retries the run elsewhere).  A run that merely fails still exits zero -- the
failure travels inside the outcome payload, exactly like the local pool.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Optional, TextIO

#: Bump when the request/response shape changes incompatibly.
PROTOCOL_VERSION = 1


class WorkerLossError(RuntimeError):
    """A worker died or spoke garbage (as opposed to a run merely failing)."""


def run_request(spec_payload: Dict[str, object]) -> Dict[str, object]:
    """The request dict asking a worker to execute one run."""
    return {"protocol": PROTOCOL_VERSION, "spec": spec_payload}


def ping_request() -> Dict[str, object]:
    return {"protocol": PROTOCOL_VERSION, "ping": True}


def parse_response(stdout_text: str) -> Dict[str, object]:
    """Extract the response payload from a worker's stdout.

    Only the *last* non-empty line is parsed: library code on the worker
    side must not print to stdout, but a stray diagnostic line from a deep
    dependency should not kill the run.  Raises :class:`WorkerLossError`
    when no parseable response is found or the version disagrees.
    """
    lines = [line for line in stdout_text.splitlines() if line.strip()]
    if not lines:
        raise WorkerLossError("worker produced no output")
    try:
        response = json.loads(lines[-1])
    except json.JSONDecodeError as exc:
        raise WorkerLossError(
            f"unparseable worker response {lines[-1][:200]!r}: {exc}") from exc
    if not isinstance(response, dict):
        raise WorkerLossError(
            f"worker response is not an object: {response!r}")
    version = response.get("protocol")
    if version != PROTOCOL_VERSION:
        raise WorkerLossError(
            f"worker protocol version {version!r} != {PROTOCOL_VERSION} "
            "(mismatched checkouts between driver and host?)")
    return response


def worker_main(stdin: Optional[TextIO] = None,
                stdout: Optional[TextIO] = None,
                stderr: Optional[TextIO] = None) -> int:
    """``python -m repro.farm worker``: one request in, one response out."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr

    raw = stdin.read()
    try:
        request = json.loads(raw)
        if not isinstance(request, dict):
            raise ValueError(f"request must be an object, got {request!r}")
        version = request.get("protocol")
        if version != PROTOCOL_VERSION:
            raise ValueError(
                f"protocol version {version!r} != {PROTOCOL_VERSION}")
        if not request.get("ping") and "spec" not in request:
            raise ValueError("request carries neither 'spec' nor 'ping'")
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"repro.farm worker: malformed request: {exc}", file=stderr)
        return 2

    if request.get("ping"):
        response: Dict[str, object] = {"protocol": PROTOCOL_VERSION,
                                       "pong": True}
    else:
        # Imported lazily so a ping stays cheap on slow hosts.
        from repro.campaign.executor import execute_run, outcome_to_payload
        from repro.campaign.spec import RunSpec

        try:
            spec = RunSpec.from_dict(request["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            print(f"repro.farm worker: bad run spec: {exc}", file=stderr)
            return 2
        outcome = execute_run(spec)
        response = {"protocol": PROTOCOL_VERSION,
                    "outcome": outcome_to_payload(outcome)}

    stdout.write(json.dumps(response, sort_keys=True) + "\n")
    stdout.flush()
    return 0
