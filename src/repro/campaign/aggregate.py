"""Cross-run aggregation over the campaign result store.

Builds comparison tables purely from persisted artifacts -- no
re-simulation.  The central structure is a flat list of *tagged rows*: every
row of every stored :class:`~repro.experiments.common.ExperimentResult`,
augmented with the run's identity columns (``_experiment``, ``_scale``,
``_seed``, ``_hash``).  On top of that:

* :func:`scheme_summary` -- per-scheme percentile summary (mean/p50/p95/p99
  via :mod:`repro.metrics.percentiles`) of one metric column;
* :func:`scheme_deltas` -- scheme-vs-scheme deltas of the metric means
  against a baseline scheme (the paper's occamy-vs-dt style comparisons).

Both return :class:`ExperimentResult` so the runner's table formatting is
reused for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.campaign.store import ResultStore, StoreEntry
from repro.experiments.common import ExperimentResult
from repro.metrics.percentiles import summarize

#: Identity columns attached to every tagged row.
TAG_COLUMNS = ("_experiment", "_scale", "_seed", "_hash")


@dataclass
class CampaignReport:
    """Comparison tables plus per-experiment skip warnings."""

    tables: List[ExperimentResult] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


def tagged_rows(entries: Iterable[StoreEntry]) -> List[Dict[str, object]]:
    """Flatten successful entries into rows tagged with their run identity."""
    rows: List[Dict[str, object]] = []
    for entry in entries:
        if not entry.ok or entry.result is None:
            continue
        for row in entry.result.rows:
            tagged = dict(row)
            tagged["_experiment"] = entry.spec.experiment
            tagged["_scale"] = entry.spec.scale
            tagged["_seed"] = entry.spec.seed
            tagged["_hash"] = entry.config_hash
            rows.append(tagged)
    return rows


def load_rows(
    store: ResultStore, experiment: Optional[str] = None
) -> List[Dict[str, object]]:
    """All tagged rows in the store, optionally for one experiment."""
    entries = store.ok_entries()
    if experiment is not None:
        entries = [e for e in entries if e.spec.experiment == experiment]
    return tagged_rows(entries)


def numeric_columns(rows: Sequence[Dict[str, object]]) -> List[str]:
    """Metric-candidate columns: numeric, non-bool, non-tag, in first-seen order."""
    columns: List[str] = []
    for row in rows:
        for key, value in row.items():
            if key in TAG_COLUMNS or key in columns:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            columns.append(key)
    return columns


def _metric_values(
    rows: Sequence[Dict[str, object]], metric: str, group_key: str
) -> Dict[str, List[float]]:
    """metric samples per group value, insertion-ordered."""
    groups: Dict[str, List[float]] = {}
    for row in rows:
        group = row.get(group_key)
        value = row.get(metric)
        if group is None or not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        groups.setdefault(str(group), []).append(float(value))
    return groups


def scheme_summary(
    rows: Sequence[Dict[str, object]],
    metric: str,
    group_key: str = "scheme",
) -> ExperimentResult:
    """Percentile summary of ``metric`` for each scheme (or other group)."""
    result = ExperimentResult(
        f"summary[{metric}]", notes=f"grouped by {group_key}; all runs in store"
    )
    for group, values in _metric_values(rows, metric, group_key).items():
        stats = summarize(values)
        result.add_row(
            **{group_key: group},
            count=stats["count"],
            mean=round(stats["mean"], 6),
            p50=round(stats["p50"], 6),
            p95=round(stats["p95"], 6),
            p99=round(stats["p99"], 6),
            max=round(stats["max"], 6),
        )
    return result


def scheme_deltas(
    rows: Sequence[Dict[str, object]],
    metric: str,
    baseline: Optional[str] = None,
    group_key: str = "scheme",
) -> ExperimentResult:
    """Mean-``metric`` deltas of every scheme against a baseline scheme.

    ``delta`` is ``mean(scheme) - mean(baseline)`` and ``delta_pct`` the same
    relative to the baseline mean (0.0 when the baseline mean is zero).  The
    baseline defaults to the first scheme seen in the rows.
    """
    groups = _metric_values(rows, metric, group_key)
    result = ExperimentResult(f"deltas[{metric}]")
    if not groups:
        return result
    if baseline is None:
        baseline = next(iter(groups))
    if baseline not in groups:
        raise KeyError(
            f"baseline {baseline!r} not in store; have: {', '.join(groups)}"
        )
    base_mean = sum(groups[baseline]) / len(groups[baseline])
    result.notes = f"baseline {group_key}={baseline}, mean {metric}={base_mean:.6g}"
    for group, values in groups.items():
        group_mean = sum(values) / len(values)
        delta = group_mean - base_mean
        result.add_row(
            **{group_key: group},
            runs=len(values),
            mean=round(group_mean, 6),
            delta=round(delta, 6),
            delta_pct=round(100.0 * delta / base_mean, 2) if base_mean else 0.0,
        )
    return result


def campaign_report(
    store: ResultStore,
    experiment: Optional[str] = None,
    metric: Optional[str] = None,
    baseline: Optional[str] = None,
    group_key: str = "scheme",
) -> "CampaignReport":
    """Assemble the full report for one or all experiments in the store.

    For each experiment with rows containing ``group_key``: a percentile
    summary plus a baseline-delta table of the chosen (or first numeric)
    metric column.  An explicitly requested ``metric`` or ``baseline`` that
    an experiment's rows don't contain is never silently substituted -- the
    experiment is skipped with a warning instead.
    """
    entries = store.ok_entries()
    experiments = sorted({e.spec.experiment for e in entries})
    if experiment is not None:
        experiments = [e for e in experiments if e == experiment]
    report = CampaignReport()
    for name in experiments:
        rows = tagged_rows([e for e in entries if e.spec.experiment == name])
        grouped = [r for r in rows if group_key in r]
        if not grouped:
            report.warnings.append(
                f"{name}: no rows with a {group_key!r} column; skipped"
            )
            continue
        metrics = numeric_columns(grouped)
        if metric is not None:
            if metric not in metrics:
                report.warnings.append(
                    f"{name}: metric {metric!r} not in columns "
                    f"({', '.join(metrics) or 'none numeric'}); skipped"
                )
                continue
            chosen = metric
        elif metrics:
            chosen = metrics[0]
        else:
            report.warnings.append(f"{name}: no numeric metric columns; skipped")
            continue
        present = {str(r.get(group_key)) for r in grouped}
        if baseline is not None and baseline not in present:
            report.warnings.append(
                f"{name}: baseline {baseline!r} not among "
                f"{group_key}s ({', '.join(sorted(present))}); skipped"
            )
            continue
        summary = scheme_summary(grouped, chosen, group_key=group_key)
        summary.experiment = f"{name} {summary.experiment}"
        deltas = scheme_deltas(grouped, chosen, baseline=baseline, group_key=group_key)
        deltas.experiment = f"{name} {deltas.experiment}"
        report.tables.extend([summary, deltas])
    return report
