"""Parallel sweep orchestration with a persistent result store.

This package separates *what to run* from *how it runs*, in the style of
firesim's run-farm configs and conweave-ns3's autorun + analysis pipeline:

* :mod:`repro.campaign.spec` -- declarative sweep specs (:class:`SweepSpec`,
  :class:`GridSpec`, :class:`RunSpec`) with stable config hashing;
* :mod:`repro.campaign.executor` -- a multiprocess executor with per-run
  isolation, progress reporting and failure capture;
* :mod:`repro.campaign.store` -- a JSON result store keyed by config hash,
  enabling cache-hit skip / ``--resume``;
* :mod:`repro.campaign.aggregate` -- cross-run comparison tables (percentile
  summaries, scheme-vs-scheme deltas);
* :mod:`repro.campaign.cli` -- the ``python -m repro.campaign`` command
  (``run`` / ``status`` / ``report`` / ``clean``).
"""

from repro.campaign.aggregate import (
    CampaignReport,
    campaign_report,
    load_rows,
    numeric_columns,
    scheme_deltas,
    scheme_summary,
    tagged_rows,
)
from repro.campaign.executor import (
    CampaignExecutor,
    RunOutcome,
    execute_run,
    print_progress,
)
from repro.campaign.spec import (
    GridSpec,
    RunSpec,
    ScenarioGridSpec,
    SweepSpec,
    canonical_json,
    grid_from_dict,
    set_by_path,
)
from repro.campaign.store import ResultStore, StoreEntry

__all__ = [
    "CampaignExecutor",
    "CampaignReport",
    "GridSpec",
    "ResultStore",
    "RunOutcome",
    "RunSpec",
    "ScenarioGridSpec",
    "StoreEntry",
    "SweepSpec",
    "campaign_report",
    "canonical_json",
    "execute_run",
    "grid_from_dict",
    "set_by_path",
    "load_rows",
    "numeric_columns",
    "print_progress",
    "scheme_deltas",
    "scheme_summary",
    "tagged_rows",
]
