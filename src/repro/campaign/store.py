"""Persistent on-disk store for campaign results.

Every completed run is persisted as one JSON artifact under
``<root>/runs/<config_hash>.json`` holding the originating :class:`RunSpec`,
the run status, timing, and (on success) the full
:class:`~repro.experiments.common.ExperimentResult` via its lossless
``to_dict``/``from_dict`` round-trip.  The config hash is the primary key:
re-running an identical spec overwrites the same artifact, and ``--resume``
skips any hash already stored with status ``ok``.

Writes are atomic (temp file + ``os.replace``) so a killed campaign never
leaves a half-written artifact behind, and concurrent workers can never
corrupt each other's entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.campaign.spec import RunSpec
from repro.experiments.common import ExperimentResult

#: Store-entry status values.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass
class StoreEntry:
    """One persisted run: spec + status + (result | error)."""

    spec: RunSpec
    status: str
    elapsed: float = 0.0
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    created_unix: float = 0.0
    config_hash: str = field(default="")

    def __post_init__(self) -> None:
        if not self.config_hash:
            self.config_hash = self.spec.config_hash()

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, object]:
        return {
            "config_hash": self.config_hash,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "elapsed": self.elapsed,
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.error,
            "traceback": self.traceback,
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StoreEntry":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            status=str(data["status"]),
            elapsed=float(data.get("elapsed", 0.0)),
            result=ExperimentResult.from_optional_dict(data.get("result")),
            error=data.get("error"),
            traceback=data.get("traceback"),
            created_unix=float(data.get("created_unix", 0.0)),
            config_hash=str(data.get("config_hash", "")),
        )


class ResultStore:
    """JSON-file result store keyed by :meth:`RunSpec.config_hash`."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"

    # -- paths ---------------------------------------------------------
    def path_for(self, config_hash: str) -> Path:
        return self.runs_dir / f"{config_hash}.json"

    # -- write ---------------------------------------------------------
    def save(self, entry: StoreEntry) -> Path:
        """Atomically persist ``entry``; returns the artifact path."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(entry.config_hash)
        payload = json.dumps(entry.to_dict(), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.runs_dir, prefix=f".{entry.config_hash}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- read ----------------------------------------------------------
    def contains(self, config_hash: str) -> bool:
        return self.path_for(config_hash).exists()

    def load(self, config_hash: str) -> Optional[StoreEntry]:
        """The stored entry for ``config_hash``, or ``None``."""
        path = self.path_for(config_hash)
        if not path.exists():
            return None
        return StoreEntry.from_dict(json.loads(path.read_text()))

    def completed(self, config_hash: str) -> bool:
        """True if a run with this hash finished successfully."""
        entry = self.load(config_hash)
        return entry is not None and entry.ok

    def entries(self) -> Iterator[StoreEntry]:
        """All stored entries (any status), in stable hash order."""
        if not self.runs_dir.is_dir():
            return
        for path in sorted(self.runs_dir.glob("*.json")):
            yield StoreEntry.from_dict(json.loads(path.read_text()))

    def ok_entries(self) -> List[StoreEntry]:
        return [e for e in self.entries() if e.ok]

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries():
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    # -- maintenance ---------------------------------------------------
    def clean(self, failed_only: bool = False) -> int:
        """Delete stored artifacts; returns how many were removed."""
        removed = 0
        for entry in list(self.entries()):
            if failed_only and entry.ok:
                continue
            self.path_for(entry.config_hash).unlink(missing_ok=True)
            removed += 1
        return removed
