"""Command-line interface for experiment campaigns.

Usage::

    python -m repro.campaign run sweep.json --jobs 4 --store results/
    python -m repro.campaign run sweep.json --jobs 4 --store results/ --resume
    python -m repro.campaign run sweep.json --farm subprocess:4 --store results/
    python -m repro.campaign run sweep.json --farm ssh-hosts:hosts.json --live
    python -m repro.campaign status --store results/
    python -m repro.campaign report --store results/ --metric avg_qct_ms --baseline dt
    python -m repro.campaign report --store results/ --format csv
    python -m repro.campaign clean --store results/ --failed-only

``run`` expands the JSON sweep spec into its run grid, executes it on a
worker pool, and persists one JSON artifact per run (keyed by config hash)
under ``<store>/runs/``.  With ``--resume``, runs whose hash is already
stored successfully are served from the store instead of re-simulated.
``report`` rebuilds cross-scheme comparison tables purely from the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.aggregate import campaign_report
from repro.campaign.executor import CampaignExecutor, print_progress
from repro.campaign.spec import SweepSpec
from repro.campaign.store import ResultStore

DEFAULT_STORE = "campaign-results"


def _store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=DEFAULT_STORE,
        help=f"result store directory (default: {DEFAULT_STORE})",
    )


def cmd_run(args: argparse.Namespace) -> int:
    spec = SweepSpec.from_file(args.spec)
    runs = spec.expand()
    if args.dry_run:
        for run in runs:
            print(f"{run.config_hash()}  {run.label()}")
        print(f"[campaign {spec.name}: {len(runs)} runs]")
        return 0
    store = ResultStore(args.store)
    farm = None
    if args.farm is not None:
        from repro.farm import make_farm

        try:
            farm = make_farm(args.farm, jobs=args.jobs)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    executor = CampaignExecutor(store=store, jobs=args.jobs, farm=farm)
    backend = farm.describe() if farm is not None else f"jobs={args.jobs}"
    print(f"[campaign {spec.name}: {len(runs)} runs, {backend}, "
          f"store={store.root}]", flush=True)
    progress = print_progress
    board = None
    if args.live:
        from repro.telemetry.dashboard import CampaignBoard

        board = CampaignBoard(runs)
        progress = board
        if farm is not None:
            farm.on_worker = board.update_workers
    outcomes = executor.run(runs, resume=args.resume, progress=progress)
    if board is not None:
        board.finish()
    failed = [o for o in outcomes if not o.ok]
    cached = sum(1 for o in outcomes if o.status == "cached")
    print(f"[campaign {spec.name}: {len(outcomes) - len(failed)} ok "
          f"({cached} cached), {len(failed)} failed]")
    if farm is not None:
        for row in farm.health_rows():
            print(f"  worker {row['worker']}: ok {row['ok']} "
                  f"failed {row['failed']} lost {row['lost']} "
                  f"retried {row['retried']} busy {row['elapsed']}s")
    return 1 if failed else 0


def cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    entries = {entry.config_hash: entry for entry in store.entries()}
    counts: dict = {}
    for entry in entries.values():
        counts[entry.status] = counts.get(entry.status, 0) + 1
    print(f"store {store.root}: {len(entries)} stored runs")
    for status in sorted(counts):
        print(f"  {status}: {counts[status]}")
    if args.spec:
        runs = SweepSpec.from_file(args.spec).expand()
        done = sum(
            1 for r in runs
            if (e := entries.get(r.config_hash())) is not None and e.ok
        )
        print(f"spec {Path(args.spec).name}: {done}/{len(runs)} runs completed")
    for entry in entries.values():
        if not entry.ok:
            print(f"  failed {entry.config_hash} {entry.spec.label()}: {entry.error}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    report = campaign_report(
        store,
        experiment=args.experiment,
        metric=args.metric,
        baseline=args.baseline,
        group_key=args.group_by,
    )
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if not report.tables:
        print(f"store {store.root}: no completed runs with a "
              f"{args.group_by!r} column to report on")
        return 1
    if args.format == "json":
        print(json.dumps([table.to_dict() for table in report.tables],
                         indent=2, sort_keys=True))
    elif args.format == "csv":
        for table in report.tables:
            # One CSV block per table, prefixed with a comment naming it so
            # multi-table output still splits cleanly.
            print(f"# {table.experiment}")
            print(table.to_csv(), end="")
            print()
    else:
        for table in report.tables:
            print(table)
            print()
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    removed = store.clean(failed_only=args.failed_only)
    kind = "failed artifacts" if args.failed_only else "artifacts"
    print(f"store {store.root}: removed {removed} {kind}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a sweep spec")
    p_run.add_argument("spec", help="path to a JSON sweep spec")
    p_run.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: 1 = serial)")
    p_run.add_argument("--resume", action="store_true",
                       help="skip runs already completed in the store")
    p_run.add_argument("--dry-run", action="store_true",
                       help="print the expanded run grid and exit")
    p_run.add_argument("--live", action="store_true",
                       help="render an in-place progress board (one row per "
                            "experiment) instead of per-run progress lines")
    p_run.add_argument("--farm", default=None, metavar="SPEC",
                       help="execute on a run farm instead of the local "
                            "pool: 'local', 'subprocess[:N]' or "
                            "'ssh-hosts:HOSTS.json'")
    _store_arg(p_run)
    p_run.set_defaults(func=cmd_run)

    p_status = sub.add_parser("status", help="summarize the result store")
    p_status.add_argument("--spec", default=None,
                          help="also report completion against this sweep spec")
    _store_arg(p_status)
    p_status.set_defaults(func=cmd_status)

    p_report = sub.add_parser("report",
                              help="cross-scheme comparison tables from the store")
    p_report.add_argument("--experiment", default=None,
                          help="restrict to one experiment")
    p_report.add_argument("--metric", default=None,
                          help="metric column (default: first numeric column)")
    p_report.add_argument("--baseline", default=None,
                          help="baseline scheme for deltas (default: first seen)")
    p_report.add_argument("--group-by", default="scheme",
                          help="grouping column (default: scheme)")
    p_report.add_argument("--format", default="table",
                          choices=["table", "csv", "json"],
                          help="output format for downstream plotting "
                               "(default: table)")
    _store_arg(p_report)
    p_report.set_defaults(func=cmd_report)

    p_clean = sub.add_parser("clean", help="delete stored artifacts")
    p_clean.add_argument("--failed-only", action="store_true",
                         help="only delete failed runs")
    _store_arg(p_clean)
    p_clean.set_defaults(func=cmd_clean)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
