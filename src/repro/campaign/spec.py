"""Declarative sweep specifications for experiment campaigns.

A campaign is a grid of experiment runs: experiment x scale x seed x
parameter overrides.  :class:`RunSpec` pins down one run; :class:`GridSpec`
describes a cartesian product of runs; :class:`SweepSpec` names a list of
grids and expands them into the concrete run list the executor consumes.

Specs are expressible both in Python (construct the dataclasses directly)
and as JSON files::

    {
      "name": "occamy-vs-dt",
      "grids": [
        {
          "experiments": ["fig13"],
          "scales": ["bench"],
          "seeds": [0, 1],
          "params": {
            "schemes": [["occamy"], ["dt"]],
            "background_load": [0.3, 0.7]
          }
        }
      ]
    }

Each entry of ``params`` maps a keyword argument of the experiment's ``run``
function to the list of values to sweep; the grid is the cartesian product
over every axis (the example expands to 2 seeds x 2 schemes x 2 loads = 8
runs).

A second grid type, ``"scenario"``, sweeps *declarative scenarios*
(:mod:`repro.scenario`) instead of figure harnesses: a base
:class:`~repro.scenario.spec.ScenarioSpec` document plus dotted-path axes
that can vary **any** scenario dimension -- scheme kwargs, topology shape,
workload mix, buffer size -- with no Python changes::

    {
      "name": "alpha-sweep",
      "grids": [
        {
          "type": "scenario",
          "seeds": [0, 1],
          "scenario": { ... a ScenarioSpec document ... },
          "axes": {
            "scheme.kwargs.alpha": [1.0, 2.0, 4.0, 8.0],
            "topology.params.num_spines": [2, 4]
          }
        }
      ]
    }

Axis paths address nested dict keys with ``.`` and list elements with
``[i]`` (e.g. ``workloads[0].params.load``).

Every :class:`RunSpec` has a stable :meth:`~RunSpec.config_hash` derived
from the canonical JSON encoding of its fields, so the same configuration
hashes identically across processes and sessions -- this is the key of the
on-disk result store and what makes ``--resume`` work.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Sequence, Union


def canonical_json(data: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _require_list(value: object, name: str) -> list:
    """Reject strings/scalars where a JSON list is required.

    Guards against e.g. ``"experiments": "fig13"`` silently fanning out into
    one run per character.
    """
    if isinstance(value, (str, bytes)) or not isinstance(value, (list, tuple)):
        raise ValueError(f"{name} must be a list, got {value!r}")
    return list(value)


@dataclass
class RunSpec:
    """One fully-determined experiment run."""

    experiment: str
    scale: str = "small"
    seed: int = 0
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        return cls(
            experiment=str(data["experiment"]),
            scale=str(data.get("scale", "small")),
            seed=int(data.get("seed", 0)),
            params=dict(data.get("params", {})),
        )

    def config_hash(self) -> str:
        """A 16-hex-digit digest stable across processes and sessions."""
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def label(self) -> str:
        """Compact human-readable identity for progress lines."""
        parts = [self.experiment, f"scale={self.scale}", f"seed={self.seed}"]
        for key in sorted(self.params):
            value = self.params[key]
            if isinstance(value, dict):
                # Scenario documents are large; show their name, not the dict.
                value = value.get("name", f"<{len(value)} keys>")
            parts.append(f"{key}={value}")
        return " ".join(parts)


@dataclass
class GridSpec:
    """A cartesian product of runs over experiments, scales, seeds and params."""

    experiments: List[str]
    scales: List[str] = field(default_factory=lambda: ["small"])
    seeds: List[int] = field(default_factory=lambda: [0])
    #: parameter name -> list of values to sweep (cartesian product).
    params: Dict[str, List[object]] = field(default_factory=dict)

    def expand(self) -> Iterator[RunSpec]:
        param_names = sorted(self.params)
        value_lists = [self.params[name] for name in param_names]
        for experiment in self.experiments:
            for scale in self.scales:
                for seed in self.seeds:
                    for combo in itertools.product(*value_lists):
                        yield RunSpec(
                            experiment=experiment,
                            scale=scale,
                            seed=seed,
                            params=dict(zip(param_names, combo, strict=True)),
                        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "grid",
            "experiments": list(self.experiments),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "params": {k: list(v) for k, v in self.params.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GridSpec":
        experiments = _require_list(data.get("experiments"), "experiments")
        if not experiments:
            raise ValueError("grid spec needs a non-empty 'experiments' list")
        return cls(
            experiments=[str(e) for e in experiments],
            scales=[str(s) for s in _require_list(data.get("scales", ["small"]), "scales")],
            seeds=[int(s) for s in _require_list(data.get("seeds", [0]), "seeds")],
            params={
                str(k): list(_require_list(v, f"params[{k!r}]"))
                for k, v in data.get("params", {}).items()
            },
        )


_PATH_SEGMENT = re.compile(r"^(?P<key>[^\[\]]+)?(?P<indices>(\[\d+\])*)$")


def _parse_path(path: str) -> List[Union[str, int]]:
    """``"workloads[0].params.load"`` -> ``["workloads", 0, "params", "load"]``."""
    segments: List[Union[str, int]] = []
    for part in path.split("."):
        match = _PATH_SEGMENT.match(part)
        if match is None or (match.group("key") is None and not match.group("indices")):
            raise ValueError(f"malformed axis path {path!r}")
        if match.group("key"):
            segments.append(match.group("key"))
        for index in re.findall(r"\[(\d+)\]", match.group("indices")):
            segments.append(int(index))
    if not segments:
        raise ValueError("axis path must be non-empty")
    return segments


def set_by_path(data: Dict[str, object], path: str, value: object) -> None:
    """Set a nested value addressed by a dotted ``[i]``-indexed path.

    Intermediate dicts are created on demand; list indices must already
    exist (a sweep cannot invent workload slots).
    """
    segments = _parse_path(path)
    target = data
    for here, ahead in zip(segments[:-1], segments[1:], strict=True):
        if isinstance(here, int):
            if not isinstance(target, list) or here >= len(target):
                raise ValueError(f"axis path {path!r}: index [{here}] out of range")
            target = target[here]
        else:
            if not isinstance(target, dict):
                raise ValueError(f"axis path {path!r}: {here!r} is not a mapping")
            if here not in target:
                target[here] = [] if isinstance(ahead, int) else {}
            target = target[here]
    last = segments[-1]
    if isinstance(last, int):
        if not isinstance(target, list) or last >= len(target):
            raise ValueError(f"axis path {path!r}: index [{last}] out of range")
        target[last] = value
    else:
        if not isinstance(target, dict):
            raise ValueError(f"axis path {path!r}: {last!r} is not a mapping")
        target[last] = value


@dataclass
class ScenarioGridSpec:
    """A sweep over declarative scenarios: base document x axes x seeds.

    ``scenario`` is a :class:`~repro.scenario.spec.ScenarioSpec` dict; each
    ``axes`` entry maps a dotted path inside that document to the values to
    sweep.  Every combination expands to a ``RunSpec`` of the pseudo
    experiment ``"scenario"``.  An explicit ``seeds`` list overrides the
    document's embedded seed; when omitted, the document's own seed (default
    0) is the single seed, so both entry points agree on what one document
    means.
    """

    scenario: Dict[str, object]
    axes: Dict[str, List[object]] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=lambda: [0])

    @classmethod
    def default_seeds(cls, scenario: Mapping[str, object]) -> List[int]:
        return [int(scenario.get("seed", 0))]

    def expand(self) -> Iterator[RunSpec]:
        axis_paths = sorted(self.axes)
        value_lists = [self.axes[path] for path in axis_paths]
        for seed in self.seeds:
            for combo in itertools.product(*value_lists):
                document = copy.deepcopy(self.scenario)
                for path, value in zip(axis_paths, combo, strict=True):
                    set_by_path(document, path, value)
                yield RunSpec(
                    experiment="scenario",
                    scale="-",
                    seed=seed,
                    params={"scenario": document},
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "scenario",
            "scenario": copy.deepcopy(self.scenario),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioGridSpec":
        scenario = data.get("scenario")
        if not isinstance(scenario, Mapping):
            raise ValueError("scenario grid needs a 'scenario' document (object)")
        seeds = data.get("seeds")
        return cls(
            scenario=copy.deepcopy(dict(scenario)),
            axes={
                str(k): list(_require_list(v, f"axes[{k!r}]"))
                for k, v in data.get("axes", {}).items()
            },
            seeds=(cls.default_seeds(scenario) if seeds is None
                   else [int(s) for s in _require_list(seeds, "seeds")]),
        )


AnyGridSpec = Union[GridSpec, ScenarioGridSpec]


def grid_from_dict(data: Mapping[str, object]) -> AnyGridSpec:
    """Dispatch on the optional ``"type"`` field (default ``"grid"``)."""
    grid_type = str(data.get("type", "grid"))
    if grid_type == "grid":
        return GridSpec.from_dict(data)
    if grid_type == "scenario":
        return ScenarioGridSpec.from_dict(data)
    raise ValueError(f"unknown grid type {grid_type!r} (expected 'grid' or 'scenario')")


@dataclass
class SweepSpec:
    """A named campaign: a list of grids expanded into concrete runs."""

    name: str
    grids: List[AnyGridSpec] = field(default_factory=list)

    def expand(self) -> List[RunSpec]:
        """All runs of the campaign, deduplicated by config hash."""
        seen: Dict[str, RunSpec] = {}
        for grid in self.grids:
            for spec in grid.expand():
                seen.setdefault(spec.config_hash(), spec)
        return list(seen.values())

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "grids": [g.to_dict() for g in self.grids]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        return cls(
            name=str(data.get("name", "campaign")),
            grids=[grid_from_dict(g) for g in data.get("grids", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def single(cls, name: str, specs: Sequence[RunSpec]) -> "SweepSpec":
        """Wrap pre-built :class:`RunSpec`s (one single-point grid each)."""
        grids = [
            GridSpec(
                experiments=[s.experiment],
                scales=[s.scale],
                seeds=[s.seed],
                params={k: [v] for k, v in s.params.items()},
            )
            for s in specs
        ]
        return cls(name=name, grids=grids)
