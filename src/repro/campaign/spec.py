"""Declarative sweep specifications for experiment campaigns.

A campaign is a grid of experiment runs: experiment x scale x seed x
parameter overrides.  :class:`RunSpec` pins down one run; :class:`GridSpec`
describes a cartesian product of runs; :class:`SweepSpec` names a list of
grids and expands them into the concrete run list the executor consumes.

Specs are expressible both in Python (construct the dataclasses directly)
and as JSON files::

    {
      "name": "occamy-vs-dt",
      "grids": [
        {
          "experiments": ["fig13"],
          "scales": ["bench"],
          "seeds": [0, 1],
          "params": {
            "schemes": [["occamy"], ["dt"]],
            "background_load": [0.3, 0.7]
          }
        }
      ]
    }

Each entry of ``params`` maps a keyword argument of the experiment's ``run``
function to the list of values to sweep; the grid is the cartesian product
over every axis (the example expands to 2 seeds x 2 schemes x 2 loads = 8
runs).

Every :class:`RunSpec` has a stable :meth:`~RunSpec.config_hash` derived
from the canonical JSON encoding of its fields, so the same configuration
hashes identically across processes and sessions -- this is the key of the
on-disk result store and what makes ``--resume`` work.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Sequence


def canonical_json(data: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _require_list(value: object, name: str) -> list:
    """Reject strings/scalars where a JSON list is required.

    Guards against e.g. ``"experiments": "fig13"`` silently fanning out into
    one run per character.
    """
    if isinstance(value, (str, bytes)) or not isinstance(value, (list, tuple)):
        raise ValueError(f"{name} must be a list, got {value!r}")
    return list(value)


@dataclass
class RunSpec:
    """One fully-determined experiment run."""

    experiment: str
    scale: str = "small"
    seed: int = 0
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        return cls(
            experiment=str(data["experiment"]),
            scale=str(data.get("scale", "small")),
            seed=int(data.get("seed", 0)),
            params=dict(data.get("params", {})),
        )

    def config_hash(self) -> str:
        """A 16-hex-digit digest stable across processes and sessions."""
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8"))
        return digest.hexdigest()[:16]

    def label(self) -> str:
        """Compact human-readable identity for progress lines."""
        parts = [self.experiment, f"scale={self.scale}", f"seed={self.seed}"]
        for key in sorted(self.params):
            parts.append(f"{key}={self.params[key]}")
        return " ".join(parts)


@dataclass
class GridSpec:
    """A cartesian product of runs over experiments, scales, seeds and params."""

    experiments: List[str]
    scales: List[str] = field(default_factory=lambda: ["small"])
    seeds: List[int] = field(default_factory=lambda: [0])
    #: parameter name -> list of values to sweep (cartesian product).
    params: Dict[str, List[object]] = field(default_factory=dict)

    def expand(self) -> Iterator[RunSpec]:
        param_names = sorted(self.params)
        value_lists = [self.params[name] for name in param_names]
        for experiment in self.experiments:
            for scale in self.scales:
                for seed in self.seeds:
                    for combo in itertools.product(*value_lists):
                        yield RunSpec(
                            experiment=experiment,
                            scale=scale,
                            seed=seed,
                            params=dict(zip(param_names, combo)),
                        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiments": list(self.experiments),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "params": {k: list(v) for k, v in self.params.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GridSpec":
        experiments = _require_list(data.get("experiments"), "experiments")
        if not experiments:
            raise ValueError("grid spec needs a non-empty 'experiments' list")
        return cls(
            experiments=[str(e) for e in experiments],
            scales=[str(s) for s in _require_list(data.get("scales", ["small"]), "scales")],
            seeds=[int(s) for s in _require_list(data.get("seeds", [0]), "seeds")],
            params={
                str(k): list(_require_list(v, f"params[{k!r}]"))
                for k, v in data.get("params", {}).items()
            },
        )


@dataclass
class SweepSpec:
    """A named campaign: a list of grids expanded into concrete runs."""

    name: str
    grids: List[GridSpec] = field(default_factory=list)

    def expand(self) -> List[RunSpec]:
        """All runs of the campaign, deduplicated by config hash."""
        seen: Dict[str, RunSpec] = {}
        for grid in self.grids:
            for spec in grid.expand():
                seen.setdefault(spec.config_hash(), spec)
        return list(seen.values())

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "grids": [g.to_dict() for g in self.grids]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        return cls(
            name=str(data.get("name", "campaign")),
            grids=[GridSpec.from_dict(g) for g in data.get("grids", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def single(cls, name: str, specs: Sequence[RunSpec]) -> "SweepSpec":
        """Wrap pre-built :class:`RunSpec`s (one single-point grid each)."""
        grids = [
            GridSpec(
                experiments=[s.experiment],
                scales=[s.scale],
                seeds=[s.seed],
                params={k: [v] for k, v in s.params.items()},
            )
            for s in specs
        ]
        return cls(name=name, grids=grids)
