"""Parallel campaign execution over a worker-process pool.

The executor turns a list of :class:`~repro.campaign.spec.RunSpec`s into
:class:`RunOutcome`s.  Each run executes in isolation -- its own worker
process when ``jobs > 1`` (via :class:`concurrent.futures.ProcessPoolExecutor`),
inline when ``jobs == 1`` -- and a crashing run is captured as a ``failed``
outcome instead of aborting the campaign.  Outcomes are returned in the order
the specs were given, regardless of completion order, so parallel campaigns
are reproducible run-for-run.

When a :class:`~repro.campaign.store.ResultStore` is attached, every outcome
is persisted as it completes, and ``resume=True`` skips any spec whose config
hash is already stored with status ``ok`` (the cached result is loaded back
instead of re-simulated).
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.spec import RunSpec
from repro.campaign.store import (
    STATUS_FAILED,
    STATUS_OK,
    ResultStore,
    StoreEntry,
)
from repro.experiments.common import ExperimentResult

#: Outcome statuses (superset of store statuses: ``cached`` never hits disk
#: again, it is a resume hit served from the store).
STATUS_CACHED = "cached"

#: Called after every finished run: (completed_count, total, outcome).
ProgressCallback = Callable[[int, int, "RunOutcome"], None]


@dataclass
class RunOutcome:
    """The result of attempting one run of a campaign."""

    spec: RunSpec
    status: str  # "ok" | "failed" | "cached"
    elapsed: float = 0.0
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)


def execute_run(spec: RunSpec) -> RunOutcome:
    """Execute one run inline, capturing any failure as an outcome."""
    start = time.perf_counter()
    try:
        # Imported lazily so worker processes pay the import cost once and
        # spec construction stays importable without the experiment stack.
        from repro.experiments.runner import get_runner
        from repro.workloads import reset_workload_ids

        runner = get_runner(spec.experiment)
        # Per-run isolation: results must depend only on the spec, not on
        # whatever ran earlier in this (possibly reused worker) process.
        reset_workload_ids()
        result = runner(scale=spec.scale, seed=spec.seed, **spec.params)
        if not isinstance(result, ExperimentResult):
            raise TypeError(
                f"experiment {spec.experiment!r} returned {type(result).__name__}, "
                "expected ExperimentResult"
            )
        return RunOutcome(
            spec=spec,
            status=STATUS_OK,
            elapsed=time.perf_counter() - start,
            result=result,
        )
    except Exception as exc:  # campaign must survive any run failure;
        # KeyboardInterrupt/SystemExit still propagate and abort the sweep.
        return RunOutcome(
            spec=spec,
            status=STATUS_FAILED,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
        )


def outcome_to_payload(outcome: RunOutcome) -> Dict[str, object]:
    """The JSON-serializable form of an outcome (pool and farm wire format)."""
    return {
        "spec": outcome.spec.to_dict(),
        "status": outcome.status,
        "elapsed": outcome.elapsed,
        "result": outcome.result.to_dict() if outcome.result is not None else None,
        "error": outcome.error,
        "traceback": outcome.traceback,
    }


def outcome_from_payload(data: Dict[str, object]) -> RunOutcome:
    """Rebuild an outcome from :func:`outcome_to_payload` output."""
    return RunOutcome(
        spec=RunSpec.from_dict(data["spec"]),
        status=str(data["status"]),
        elapsed=float(data.get("elapsed", 0.0)),
        result=ExperimentResult.from_optional_dict(data.get("result")),
        error=data.get("error"),
        traceback=data.get("traceback"),
    )


def _execute_run_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker-process entry point: dict in, dict out (both picklable)."""
    return outcome_to_payload(execute_run(RunSpec.from_dict(payload)))


class CampaignExecutor:
    """Runs campaigns, optionally in parallel and against a result store.

    Three execution backends, picked per construction:

    * ``jobs == 1`` and no farm -- inline, serial;
    * ``jobs > 1`` -- a local :class:`~concurrent.futures.ProcessPoolExecutor`;
    * ``farm`` -- a :class:`repro.farm.RunFarm` (inline / subprocess pool /
      ssh hosts) with retry-on-worker-loss; ``jobs`` is ignored.

    All three persist outcomes into the store *as they complete* (streaming
    persistence), so ``python -m repro.campaign report`` and the analysis
    CLI work against a still-running campaign.
    """

    def __init__(self, store: Optional[ResultStore] = None, jobs: int = 1,
                 farm: Optional[object] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.store = store
        self.jobs = jobs
        self.farm = farm

    def run(
        self,
        specs: Sequence[RunSpec],
        resume: bool = False,
        progress: Optional[ProgressCallback] = None,
        fail_fast: bool = False,
    ) -> List[RunOutcome]:
        """Execute ``specs``; outcomes come back in the input order.

        With ``fail_fast`` the campaign stops at the first failure: remaining
        serial runs are skipped, queued parallel runs are cancelled, and the
        returned list only contains the outcomes that finished.
        """
        specs = list(specs)
        total = len(specs)
        outcomes: List[Optional[RunOutcome]] = [None] * total
        completed = 0

        # Resume: serve cache hits from the store without re-running.
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._cached_outcome(spec) if resume else None
            if cached is not None:
                outcomes[index] = cached
                completed += 1
                if progress:
                    progress(completed, total, cached)
            else:
                pending.append(index)

        if self.farm is not None and pending:
            # Farm dispatch yields outcomes in completion order and handles
            # fail_fast itself (stops dispensing, drains in-flight runs).
            for index, outcome in self.farm.dispatch(
                [(index, specs[index]) for index in pending],
                fail_fast=fail_fast,
            ):
                completed += 1
                self._record(outcomes, index, outcome, completed, total, progress)
        elif self.jobs == 1 or len(pending) <= 1:
            for index in pending:
                outcome = execute_run(specs[index])
                completed += 1
                self._record(outcomes, index, outcome, completed, total, progress)
                if fail_fast and not outcome.ok:
                    break
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_execute_run_payload, specs[index].to_dict()):
                        (index, time.perf_counter())
                    for index in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    index, _ = futures[future]
                    outcome = self._pool_outcome(future, futures, specs)
                    completed += 1
                    self._record(outcomes, index, outcome, completed, total, progress)
                    if fail_fast and not outcome.ok:
                        pool.shutdown(wait=True, cancel_futures=True)
                        # Runs that were already in flight when the failure
                        # surfaced have finished by now (shutdown waited).
                        # Drain them into the store -- dropping them would
                        # silently re-simulate finished-ok runs on --resume.
                        for other, (other_index, _) in futures.items():
                            if outcomes[other_index] is not None:
                                continue
                            if other.cancelled() or not other.done():
                                continue
                            drained = self._pool_outcome(other, futures, specs)
                            completed += 1
                            self._record(outcomes, other_index, drained,
                                         completed, total, progress)
                        break

        return [outcome for outcome in outcomes if outcome is not None]

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _pool_outcome(future, futures, specs) -> RunOutcome:
        """The outcome of one pool future, surviving worker death.

        A worker that dies mid-run (OOM kill, segfault in a C extension)
        raises from ``future.result()`` instead of returning a payload.
        The outcome then carries the wall time since submission and the
        pool-side exception's traceback, so ``status`` reports show when
        and why the run was lost instead of ``elapsed=0.0`` and nothing.
        """
        index, submitted = futures[future]
        try:
            return outcome_from_payload(future.result())
        except Exception as exc:  # worker died (e.g. OOM kill)
            return RunOutcome(
                spec=specs[index],
                status=STATUS_FAILED,
                elapsed=time.perf_counter() - submitted,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback_module.format_exc(),
            )

    def _cached_outcome(self, spec: RunSpec) -> Optional[RunOutcome]:
        if self.store is None:
            return None
        entry = self.store.load(spec.config_hash())
        if entry is None or not entry.ok:
            return None
        return RunOutcome(
            spec=spec,
            status=STATUS_CACHED,
            elapsed=entry.elapsed,
            result=entry.result,
        )

    def _record(
        self,
        outcomes: List[Optional[RunOutcome]],
        index: int,
        outcome: RunOutcome,
        completed: int,
        total: int,
        progress: Optional[ProgressCallback],
    ) -> None:
        outcomes[index] = outcome
        if self.store is not None:
            self.store.save(
                StoreEntry(
                    spec=outcome.spec,
                    status=outcome.status,
                    elapsed=outcome.elapsed,
                    result=outcome.result,
                    error=outcome.error,
                    traceback=outcome.traceback,
                    created_unix=time.time(),
                )
            )
        if progress:
            progress(completed, total, outcome)


def print_progress(completed: int, total: int, outcome: RunOutcome) -> None:
    """Default progress reporter: one line per finished run."""
    mark = {STATUS_OK: "ok", STATUS_CACHED: "cached", STATUS_FAILED: "FAILED"}.get(
        outcome.status, outcome.status
    )
    line = (
        f"[{completed}/{total}] {outcome.spec.label()} "
        f"({outcome.spec.config_hash()}) .. {mark} ({outcome.elapsed:.2f}s)"
    )
    if outcome.error:
        line += f"  {outcome.error}"
    print(line, flush=True)
