"""Adaptive load balancing: the fifth scenario registry.

ECMP's static flow hash is exactly wrong on an asymmetric fabric: a failed
or degraded uplink keeps its hash share of the flows until the end of the
run.  This package adds uplink-choice *policies* that the switch data path
delegates to -- bound per switch at attach time by
:meth:`~repro.netsim.switch_node.SwitchNode.set_load_balancer`:

* ``ecmp`` -- the default passthrough: the node keeps its direct hash path,
  zero per-packet cost, byte-identical to pre-LB behaviour;
* ``flowlet`` -- gap-timeout flowlet tables (re-pick at idle gaps, no
  reordering inside a burst);
* ``drill`` -- DRILL-style per-packet least-local-backlog among ``d``
  deterministic samples plus a one-entry memory;
* ``spray`` -- per-packet round-robin over the surviving candidates.

Scenario documents select a policy through the canonically-hashed-but-
default-omitted ``lb`` section (``{"lb": {"name": "flowlet", "kwargs":
{"gap": 5e-05}}}``); campaigns sweep it with the ``lb.name`` dotted axis.
"""

from repro.lb.base import (
    DrillBalancer,
    EcmpPassthrough,
    FlowletBalancer,
    LoadBalancer,
    SprayBalancer,
)
from repro.lb.registry import (
    available_load_balancers,
    load_balancer_defaults,
    make_load_balancer,
    register_load_balancer,
    unregister_load_balancer,
)

__all__ = [
    "DrillBalancer",
    "EcmpPassthrough",
    "FlowletBalancer",
    "LoadBalancer",
    "SprayBalancer",
    "available_load_balancers",
    "load_balancer_defaults",
    "make_load_balancer",
    "register_load_balancer",
    "unregister_load_balancer",
]
