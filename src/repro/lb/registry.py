"""The load-balancer registry: names -> per-switch policy factories.

The fifth scenario registry, shaped exactly like the scheme registry
(:mod:`repro.core.registry`): registrations carry default keyword arguments
(the literature's parameter choices -- flowlet gap ~ one fabric RTT, DRILL's
``d=2`` samples), name collisions raise unless ``override=True``, and
:func:`make_load_balancer` merges call-site kwargs over the defaults.

Factories return a **fresh instance per call**: the runner binds one policy
object per switch, so flowlet tables and spray counters are never shared
across switches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.lb.base import (
    DrillBalancer,
    EcmpPassthrough,
    FlowletBalancer,
    LoadBalancer,
    SprayBalancer,
)

_FACTORIES: Dict[str, Callable[..., LoadBalancer]] = {}
_DEFAULTS: Dict[str, Dict[str, object]] = {}


def register_load_balancer(
    name: str,
    factory: Callable[..., LoadBalancer],
    defaults: Optional[Mapping[str, object]] = None,
    override: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    Args:
        name: policy name (non-empty).
        factory: callable (usually the policy class) returning a fresh
            :class:`~repro.lb.base.LoadBalancer` per call.
        defaults: default keyword arguments applied by
            :func:`make_load_balancer`; call-site kwargs take precedence.
        override: allow replacing an existing registration.  Without it a
            name collision raises :class:`ValueError`.
    """
    if not name:
        raise ValueError("load balancer name must be non-empty")
    if name in _FACTORIES and not override:
        raise ValueError(
            f"load balancer {name!r} is already registered; "
            "pass override=True to replace it"
        )
    _FACTORIES[name] = factory
    _DEFAULTS[name] = dict(defaults or {})


def unregister_load_balancer(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    _FACTORIES.pop(name, None)
    _DEFAULTS.pop(name, None)


def available_load_balancers() -> List[str]:
    """Names of all registered load balancers, sorted."""
    return sorted(_FACTORIES)


def load_balancer_defaults(name: str) -> Dict[str, object]:
    """The registered default kwargs of policy ``name`` (a copy)."""
    if name not in _DEFAULTS:
        raise KeyError(
            f"unknown load balancer {name!r}; "
            f"available: {', '.join(available_load_balancers())}"
        )
    return dict(_DEFAULTS[name])


def make_load_balancer(name: str, **kwargs) -> LoadBalancer:
    """Instantiate the policy registered under ``name`` (fresh per call).

    The registered default kwargs are applied first; explicit ``kwargs``
    override them.

    Raises:
        KeyError: if no policy with that name is registered.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown load balancer {name!r}; "
            f"available: {', '.join(available_load_balancers())}"
        ) from None
    merged = {**_DEFAULTS[name], **kwargs}
    return factory(**merged)


# ----------------------------------------------------------------------
# Built-in policies
# ----------------------------------------------------------------------
register_load_balancer("ecmp", EcmpPassthrough)
# Default gap ~ one fat-tree base RTT: long enough that packets inside a
# window-paced burst stay together, short enough to re-balance between
# bursts.
register_load_balancer("flowlet", FlowletBalancer, defaults={"gap": 100e-6})
register_load_balancer("drill", DrillBalancer, defaults={"d": 2})
register_load_balancer("spray", SprayBalancer)
