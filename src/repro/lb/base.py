"""The load-balancer interface: per-switch uplink-choice policies.

A :class:`LoadBalancer` decides which surviving ECMP uplink a packet leaves
through.  :meth:`SwitchNode.set_load_balancer` binds one instance per switch
at attach time: the ``ecmp`` entry is a *passthrough* (the node keeps its
direct ``routing.route`` data path, so the default costs nothing per packet),
every other policy swaps the node's ``deliver`` method for a delegating
variant that resolves the candidate set and asks :meth:`choose`.

Policies read only state the switch already maintains -- the routing table's
surviving candidate list and the egress ports' ``backlog_bytes()`` -- and
every "random" choice derives from the deterministic :func:`~
repro.netsim.routing._mix` hash over per-switch counters, never from dict
order or :mod:`random`, so flowlet/drill/spray runs are byte-identical
across processes (the determinism battery pins this).

Shared bookkeeping (``decisions``, ``reroutes``, per-port packet counts)
lives on the base class so the telemetry bus can probe any policy uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.routing import _mix, switch_salt
from repro.switchsim.packet import Packet

#: A flow's identity at one switch: (flow_id, destination host).  The dst
#: disambiguates the data and ACK directions of a flow, which carry the same
#: flow_id but face different candidate sets.
FlowKey = Tuple[int, int]


class LoadBalancer:
    """Base class of uplink-choice policies (one instance per switch).

    Attributes:
        name: registry name of the policy.
        passthrough: ``True`` for the ``ecmp`` entry only -- the node keeps
            its direct hash path and no per-packet delegate exists.
        decisions: packets that faced a multi-uplink choice.
        reroutes: decisions that moved an already-seen flow to a new port.
        flowlets: flowlet table entries created (0 for non-flowlet policies).
        port_packets: per-egress-port packet counts of this policy's choices.
    """

    name = "base"
    passthrough = False

    def __init__(self) -> None:
        self.node = None
        self._salt = 0
        self.decisions = 0
        self.reroutes = 0
        self.flowlets = 0
        self.port_packets: Dict[int, int] = {}
        self._last_port: Dict[FlowKey, int] = {}

    # -- binding -------------------------------------------------------
    def bind(self, node) -> None:
        """Attach to a :class:`~repro.netsim.switch_node.SwitchNode`.

        The per-switch salt decorrelates "random" candidate sampling across
        switches the same way the ECMP hash salt does (CRC32 of the name:
        stable across processes, unlike ``hash(str)``).
        """
        self.node = node
        self._salt = switch_salt(node.name)

    # -- shared state readers ------------------------------------------
    def _backlog(self, port_id: int) -> int:
        """The local congestion signal: queued bytes on ``port_id``."""
        return self.node.switch.port(port_id).backlog_bytes()

    def _record(self, key: FlowKey, port: int) -> int:
        """Count one choice (decisions, reroutes, per-port) and return it."""
        self.decisions += 1
        self.port_packets[port] = self.port_packets.get(port, 0) + 1
        prev = self._last_port.get(key)
        if prev is None:
            self._last_port[key] = port
        elif prev != port:
            self.reroutes += 1
            self._last_port[key] = port
        return port

    # -- the decision --------------------------------------------------
    def choose(self, packet: Packet, candidates: Sequence[int]) -> int:
        """Pick an egress port for ``packet`` among >= 2 ``candidates``.

        ``candidates`` is the routing table's surviving member list (failed
        and per-destination-excluded uplinks already removed), in stable
        registration order.  Treat it as read-only -- it may be a memoized
        list shared with the routing table.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        where = self.node.name if self.node is not None else "unbound"
        return f"<{type(self).__name__} {self.name} @ {where}>"


class EcmpPassthrough(LoadBalancer):
    """The default: keep the static flow-hash ECMP data path untouched.

    Binding a passthrough is a no-op on the node (no method swap, no
    ``node.lb``), so an explicit ``lb: ecmp`` scenario runs byte-identically
    to one with the section omitted -- and the per-packet path is exactly
    the pre-LB direct ``routing.route`` call.
    """

    name = "ecmp"
    passthrough = True

    def choose(self, packet: Packet, candidates: Sequence[int]) -> int:
        raise RuntimeError(
            "EcmpPassthrough never chooses: the switch keeps its direct "
            "ECMP hash path (set_load_balancer does not swap deliver)")


class FlowletBalancer(LoadBalancer):
    """Flowlet switching: re-pick the least-backlogged uplink at idle gaps.

    Packets of a flow reuse the cached port while they arrive within
    ``gap`` seconds of the previous one (no reordering inside a burst); a
    longer pause starts a new flowlet, re-chosen as the candidate with the
    smallest local backlog.  Ties -- the common case on an uncongested
    switch, where every backlog reads 0 -- break by a deterministic hash
    over the flowlet counter, not by port id: a fixed tie-break would herd
    every new flowlet onto the same uplink and *concentrate* load exactly
    when the congestion signal is silent.  A cached port that left the
    candidate set (its link failed) is dropped immediately -- rerouting
    around failures without waiting for the gap.
    """

    name = "flowlet"

    def __init__(self, gap: float = 100e-6) -> None:
        super().__init__()
        if not gap > 0:
            raise ValueError(f"flowlet gap must be positive, got {gap!r}")
        self.gap = float(gap)
        #: flow key -> [port, last packet time] (a list: updated in place).
        self._table: Dict[FlowKey, List[float]] = {}

    def choose(self, packet: Packet, candidates: Sequence[int]) -> int:
        key = (packet.flow_id, packet.dst)
        now = self.node.sim.now
        entry = self._table.get(key)
        if (entry is not None and now - entry[1] <= self.gap
                and entry[0] in candidates):
            entry[1] = now
            return self._record(key, entry[0])
        n = self.flowlets
        port = min(candidates,
                   key=lambda p: (self._backlog(p), _mix(n, self._salt, p)))
        self.flowlets += 1
        self._table[key] = [port, now]
        return self._record(key, port)


class DrillBalancer(LoadBalancer):
    """DRILL-style per-packet choice: least-backlogged of ``d`` samples.

    Every packet samples ``d`` deterministic pseudo-random candidates (the
    :func:`~repro.netsim.routing._mix` hash over a per-switch decision
    counter -- stable across processes), adds the previously best port for
    this destination (DRILL's one-entry memory), and sends the packet to
    the sample with the smallest local backlog, breaking backlog ties by
    the sampling hash (a fixed port-id tie-break would herd the fabric
    onto one uplink whenever queues are empty).  Per-packet balancing can
    reorder flows; the transport's cumulative-ACK reassembly absorbs it at
    the cost of occasional duplicate ACKs, which is the realistic penalty.
    """

    name = "drill"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        if int(d) < 1:
            raise ValueError(f"drill sample count d must be >= 1, got {d!r}")
        self.d = int(d)
        self._n = 0
        #: Per-destination memory of the previous best port.
        self._memory: Dict[int, int] = {}

    def choose(self, packet: Packet, candidates: Sequence[int]) -> int:
        self._n += 1
        count = len(candidates)
        sample: List[int] = []
        remembered = self._memory.get(packet.dst)
        if remembered is not None and remembered in candidates:
            sample.append(remembered)
        for i in range(self.d):
            port = candidates[_mix(self._n, self._salt, i) % count]
            if port not in sample:
                sample.append(port)
        port = min(sample, key=lambda p: (
            self._backlog(p), _mix(self._n, self._salt, p)))
        self._memory[packet.dst] = port
        return self._record((packet.flow_id, packet.dst), port)


class SprayBalancer(LoadBalancer):
    """Per-packet round-robin spraying over the surviving candidates.

    The simplest oblivious baseline: a per-switch counter cycles through
    the candidate list, so consecutive packets fan out maximally.  Great
    link utilization, worst-case reordering -- the bracket the adaptive
    policies are judged against.
    """

    name = "spray"

    def __init__(self) -> None:
        super().__init__()
        self._n = 0

    def choose(self, packet: Packet, candidates: Sequence[int]) -> int:
        port = candidates[self._n % len(candidates)]
        self._n += 1
        return self._record((packet.flow_id, packet.dst), port)


def default_load_balancer() -> Optional[LoadBalancer]:
    """The policy of a spec with no ``lb`` section: the ecmp passthrough."""
    return EcmpPassthrough()
