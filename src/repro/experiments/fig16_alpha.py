"""Figure 16: impact of the alpha parameter on DT and Occamy.

Same two-service-queue DRR scenario as Figure 14, but sweeping alpha for both
DT and Occamy.  The paper's finding: DT performs best around alpha = 1-2 and
degrades for larger alpha (anomalous behaviour) or smaller alpha
(inefficiency), while Occamy keeps improving up to alpha = 4-8 because
expulsion removes the downside of a large alpha.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.common import (
    ExperimentResult,
    get_scale,
)
from repro.scenario import run_scenario, single_switch_scenario


def run(scale: str = "small", seed: int = 0,
        alphas: Optional[Iterable[float]] = None,
        query_size_fractions: Optional[Iterable[float]] = None,
        background_load: float = 0.5) -> ExperimentResult:
    """p99 QCT for DT and Occamy across alpha values."""
    config = get_scale(scale)
    if alphas is None:
        alphas = (1.0, 8.0) if scale == "bench" else (0.5, 1.0, 2.0, 4.0, 8.0)
    if query_size_fractions is None:
        query_size_fractions = (1.2,) if scale == "bench" else (1.0, 1.2, 1.4, 1.6, 1.8)
    buffer_bytes = int(config.buffer_kb_per_port_per_gbps * 1024
                       * config.num_hosts * config.link_rate_bps / 1e9)

    result = ExperimentResult(
        "fig16_alpha",
        notes="p99 QCT, 2 DRR queues, background load "
              f"{background_load:.0%}; alpha swept for DT and Occamy",
    )
    for fraction in query_size_fractions:
        query_size = max(2000, int(fraction * buffer_bytes))
        for alpha in alphas:
            for scheme in ("dt", "occamy"):
                spec = single_switch_scenario(
                    scheme=scheme, config=config, query_size_bytes=query_size,
                    seed=seed, background_load=background_load,
                    queues_per_port=2, scheduler="drr",
                    query_priority=0, background_priority=1,
                    scheme_kwargs={"alpha": alpha},
                    name="fig16_alpha",
                )
                run_result = run_scenario(spec)
                stats = run_result.flow_stats
                result.add_row(
                    query_size_frac=round(fraction, 2),
                    alpha=alpha,
                    scheme=scheme,
                    avg_qct_ms=stats.average_qct() * 1e3,
                    p99_qct_ms=stats.p99_qct() * 1e3,
                    drops=run_result.switch_stats.dropped_packets,
                )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
