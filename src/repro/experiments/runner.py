"""Command-line runner for the experiment harnesses.

Usage::

    python -m repro.experiments.runner list
    python -m repro.experiments.runner fig12 --scale small --seed 1
    python -m repro.experiments.runner all --scale bench --jobs 4

``all`` runs every experiment at the requested scale and prints each table;
it is the closest thing to "regenerate the paper's evaluation section".
With ``--jobs N`` the experiments execute on the campaign worker pool
(:mod:`repro.campaign`) instead of serially; results are identical
run-for-run because every experiment still receives the same seed.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Callable, Dict, List

from repro.experiments.common import ExperimentResult

#: Experiment name -> module path (each module exposes ``run``).
EXPERIMENTS: Dict[str, str] = {
    "fig03": "repro.experiments.fig03_dt_behavior",
    "fig06": "repro.experiments.fig06_anomalous",
    "fig07": "repro.experiments.fig07_utilization",
    "table1": "repro.experiments.table1_hw_cost",
    "fig11": "repro.experiments.fig11_queue_evolution",
    "fig12": "repro.experiments.fig12_burst_absorption",
    "fig13": "repro.experiments.fig13_qct_fct",
    "fig14": "repro.experiments.fig14_isolation",
    "fig15": "repro.experiments.fig15_buffer_choking",
    "fig16": "repro.experiments.fig16_alpha",
    "fig17": "repro.experiments.fig17_websearch",
    "fig18": "repro.experiments.fig18_all_to_all",
    "fig19": "repro.experiments.fig19_all_reduce",
    "fig20": "repro.experiments.fig20_query_load",
    "fig21": "repro.experiments.fig21_round_robin",
    "fig22": "repro.experiments.fig22_heavy_load",
    "fig23": "repro.experiments.fig23_buffer_size",
}


def get_runner(name: str) -> Callable[..., ExperimentResult]:
    """Import and return the ``run`` function of experiment ``name``.

    Besides the figure/table harnesses, the pseudo-experiment ``scenario``
    resolves to :func:`repro.scenario.experiment.run`, which executes a
    declarative scenario document passed via ``params={"scenario": {...}}``
    (the campaign layer's ``"scenario"`` grid type).  It is not part of
    :data:`EXPERIMENTS` because it cannot run without a document (so
    ``runner all`` skips it).
    """
    if name == "scenario":
        module = importlib.import_module("repro.scenario.experiment")
        return module.run
    try:
        module_path = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    module = importlib.import_module(module_path)
    return module.run


def run_experiment(name: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Run one experiment by name and return its result.

    Flow/query id counters are reset first so a run's results depend only on
    its (name, scale, seed) -- not on what ran earlier in this process (flow
    ids feed the ECMP path hash).
    """
    from repro.workloads import reset_workload_ids

    reset_workload_ids()
    return get_runner(name)(scale=scale, seed=seed)


def specs_for_all(scale: str = "small", seed: int = 0,
                  names: List[str] | None = None,
                  vary_seed: bool = False) -> List["RunSpec"]:
    """The campaign run specs behind :func:`run_all`.

    With ``vary_seed`` every experiment gets ``seed + index`` (its position
    in the run order) instead of all experiments sharing one seed.
    """
    from repro.campaign.spec import RunSpec

    ordered = names or sorted(EXPERIMENTS)
    return [
        RunSpec(experiment=name, scale=scale,
                seed=seed + index if vary_seed else seed)
        for index, name in enumerate(ordered)
    ]


def run_all(scale: str = "small", seed: int = 0,
            names: List[str] | None = None,
            jobs: int = 1,
            vary_seed: bool = False,
            progress: Callable[[str, float], None] | None = None,
    ) -> List[ExperimentResult]:
    """Run every (or the selected) experiment and return all results.

    ``jobs > 1`` delegates to the campaign executor's worker pool; the
    results come back in the same order either way, and each experiment sees
    the same seed, so parallel and serial runs match row-for-row.  A failing
    experiment raises and stops further experiments (the single-shot runner
    keeps its fail-fast contract; use ``python -m repro.campaign`` for
    failure-tolerant sweeps).  ``progress(name, elapsed_s)`` is called as
    each experiment completes (in completion order when parallel).
    """
    from repro.campaign.executor import CampaignExecutor

    specs = specs_for_all(scale=scale, seed=seed, names=names, vary_seed=vary_seed)

    def on_progress(done: int, total: int, outcome) -> None:
        if progress and outcome.ok:
            progress(outcome.spec.experiment, outcome.elapsed)

    outcomes = CampaignExecutor(jobs=jobs).run(
        specs, progress=on_progress, fail_fast=True
    )
    results: List[ExperimentResult] = []
    for outcome in outcomes:
        if not outcome.ok or outcome.result is None:
            message = f"experiment {outcome.spec.experiment!r} failed: {outcome.error}"
            if outcome.traceback:
                message += f"\n{outcome.traceback}"
            raise RuntimeError(message)
        results.append(outcome.result)
    return results


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment",
                        help="experiment name (e.g. fig12, table1), 'all' or 'list'")
    parser.add_argument("--scale", default="small", choices=["bench", "small", "paper"],
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for 'all' (default: 1 = serial)")
    parser.add_argument("--vary-seed", action="store_true",
                        help="give each experiment of 'all' seed + its index "
                             "instead of one shared seed")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    start = time.time()

    def report_progress(name: str, run_elapsed: float) -> None:
        print(f"[{name} completed in {run_elapsed:.1f}s]", flush=True)

    results = run_all(scale=args.scale, seed=args.seed, names=names,
                      jobs=args.jobs, vary_seed=args.vary_seed,
                      progress=report_progress)
    elapsed = time.time() - start
    for result in results:
        print(result)
        print()
    print(f"[{len(results)} experiment(s) completed in {elapsed:.1f}s, "
          f"jobs={args.jobs}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
