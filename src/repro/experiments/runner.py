"""Command-line runner for the experiment harnesses.

Usage::

    python -m repro.experiments.runner list
    python -m repro.experiments.runner fig12 --scale small --seed 1
    python -m repro.experiments.runner all --scale bench

``all`` runs every experiment at the requested scale and prints each table;
it is the closest thing to "regenerate the paper's evaluation section".
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Callable, Dict, List

from repro.experiments.common import ExperimentResult

#: Experiment name -> module path (each module exposes ``run``).
EXPERIMENTS: Dict[str, str] = {
    "fig03": "repro.experiments.fig03_dt_behavior",
    "fig06": "repro.experiments.fig06_anomalous",
    "fig07": "repro.experiments.fig07_utilization",
    "table1": "repro.experiments.table1_hw_cost",
    "fig11": "repro.experiments.fig11_queue_evolution",
    "fig12": "repro.experiments.fig12_burst_absorption",
    "fig13": "repro.experiments.fig13_qct_fct",
    "fig14": "repro.experiments.fig14_isolation",
    "fig15": "repro.experiments.fig15_buffer_choking",
    "fig16": "repro.experiments.fig16_alpha",
    "fig17": "repro.experiments.fig17_websearch",
    "fig18": "repro.experiments.fig18_all_to_all",
    "fig19": "repro.experiments.fig19_all_reduce",
    "fig20": "repro.experiments.fig20_query_load",
    "fig21": "repro.experiments.fig21_round_robin",
    "fig22": "repro.experiments.fig22_heavy_load",
    "fig23": "repro.experiments.fig23_buffer_size",
}


def get_runner(name: str) -> Callable[..., ExperimentResult]:
    """Import and return the ``run`` function of experiment ``name``."""
    try:
        module_path = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    module = importlib.import_module(module_path)
    return module.run


def run_experiment(name: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Run one experiment by name and return its result."""
    return get_runner(name)(scale=scale, seed=seed)


def run_all(scale: str = "small", seed: int = 0,
            names: List[str] | None = None) -> List[ExperimentResult]:
    """Run every (or the selected) experiment and return all results."""
    results = []
    for name in names or sorted(EXPERIMENTS):
        results.append(run_experiment(name, scale=scale, seed=seed))
    return results


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment",
                        help="experiment name (e.g. fig12, table1), 'all' or 'list'")
    parser.add_argument("--scale", default="small", choices=["bench", "small", "paper"],
                        help="scenario scale (default: small)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        result = run_experiment(name, scale=args.scale, seed=args.seed)
        elapsed = time.time() - start
        print(result)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
