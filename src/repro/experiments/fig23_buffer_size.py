"""Figure 23: impact of the buffer size (per port per Gbps).

Future, faster switch chips will have even shallower buffers.  This experiment
sweeps the buffer from ~3.44 KB/port/Gbps (Intel Tofino) to 9.6 KB/port/Gbps
(Broadcom Trident2) and reports the QCT/FCT slowdowns, confirming that
Occamy's benefit persists across buffer depths.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.metrics.percentiles import mean, percentile
from repro.scenario import leaf_spine_scenario, run_scenario
from repro.sim.units import KB


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        buffer_kb_per_port_per_gbps: Optional[Iterable[float]] = None,
        background_load: float = 0.4) -> ExperimentResult:
    """QCT / FCT slowdowns as the shared buffer shrinks or grows."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if buffer_kb_per_port_per_gbps is None:
        buffer_kb_per_port_per_gbps = (5.12,) if scale == "bench" else (3.44, 5.12, 9.6)

    result = ExperimentResult(
        "fig23_buffer_size",
        notes="leaf-spine, query size 40% of buffer, background load "
              f"{background_load:.0%}",
    )
    gbps = config.fabric_link_rate_bps / 1e9
    for kb_per_port_gbps in buffer_kb_per_port_per_gbps:
        buffer_per_port = int(kb_per_port_gbps * KB * gbps)
        query_size = max(4000, int(0.4 * buffer_per_port * 8))
        for scheme in schemes:
            run_result = run_scenario(leaf_spine_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=background_load,
                buffer_bytes_per_port=buffer_per_port,
                name="fig23_buffer_size",
            ))
            stats = run_result.flow_stats
            result.add_row(
                buffer_kb_per_port_per_gbps=kb_per_port_gbps,
                scheme=scheme,
                avg_qct_slowdown=mean(stats.qct_slowdowns()),
                p99_qct_slowdown=percentile(stats.qct_slowdowns(), 99),
                avg_bg_fct_slowdown=mean(stats.fct_slowdowns(query_traffic=False)),
                p99_small_bg_fct_slowdown=percentile(
                    stats.fct_slowdowns(query_traffic=False, small_only=True), 99
                ),
                drops=run_result.total_drops(),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
