"""Figure 22: performance under heavy (120%) network load.

Occamy relies on redundant memory bandwidth; this experiment over-subscribes
the background traffic (120% offered load) to check that Occamy still helps --
in practice congestion is unbalanced across ports, so redundant bandwidth
remains available where it is needed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.metrics.percentiles import mean, percentile
from repro.scenario import leaf_spine_scenario, run_scenario


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        query_size_fractions: Optional[Iterable[float]] = None,
        background_load: float = 1.2) -> ExperimentResult:
    """QCT / FCT slowdowns at 120% offered background load."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if query_size_fractions is None:
        query_size_fractions = (0.6,) if scale == "bench" else (0.2, 0.6, 1.0)
    reference_buffer = config.fabric_buffer_bytes_per_port * 8

    result = ExperimentResult(
        "fig22_heavy_load",
        notes=f"leaf-spine, background offered load {background_load:.0%}",
    )
    for fraction in query_size_fractions:
        query_size = max(4000, int(fraction * reference_buffer))
        for scheme in schemes:
            run_result = run_scenario(leaf_spine_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=background_load,
                name="fig22_heavy_load",
            ))
            stats = run_result.flow_stats
            result.add_row(
                query_size_frac=round(fraction, 2),
                scheme=scheme,
                avg_qct_slowdown=mean(stats.qct_slowdowns()),
                p99_qct_slowdown=percentile(stats.qct_slowdowns(), 99),
                avg_bg_fct_slowdown=mean(stats.fct_slowdowns(query_traffic=False)),
                p99_small_bg_fct_slowdown=percentile(
                    stats.fct_slowdowns(query_traffic=False, small_only=True), 99
                ),
                drops=run_result.total_drops(),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
