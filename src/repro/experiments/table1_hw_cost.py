"""Table 1: hardware cost of Occamy's components.

The paper synthesizes the head-drop selector (64-queue bitmap), the
fixed-priority arbiter and the head-drop executor with Vivado (FPGA) and
Design Compiler (45 nm ASIC).  This harness reports the analytical cost model
of :mod:`repro.hw.components` in the same row format, plus the comparison
against the Maximum Finder circuit Pushout would need (Difficulty 3).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw import MaximumFinder, occamy_hardware_report


def run(scale: str = "small", seed: int = 0, num_queues: int = 64,
        bit_width: int = 20) -> ExperimentResult:
    """Hardware cost rows for the Occamy components and the Pushout MF."""
    del scale, seed  # the cost model is analytic and scale-free
    report = occamy_hardware_report(num_queues=num_queues, bit_width=bit_width)
    result = ExperimentResult(
        "table1_hw_cost",
        notes=f"{num_queues}-queue selector, {bit_width}-bit queue lengths, 45nm model",
    )
    for row in report.rows():
        result.add_row(**row)

    # Context row: the maximum finder Pushout would need instead.
    finder = MaximumFinder(num_inputs=num_queues, bit_width=bit_width)
    cost = finder.cost()
    result.add_row(
        module="pushout_max_finder",
        loc=0,
        luts=cost.gate_count // 6,
        flip_flops=0,
        timing_ns=round(cost.delay_ns(), 2),
        area_mm2=float("nan"),
        power_mw=float("nan"),
    )
    result.add_row(
        module="occamy_total",
        loc=286,
        luts=report.total_luts,
        flip_flops=report.total_flip_flops,
        timing_ns=report.critical_path_ns,
        area_mm2=round(report.total_area_mm2, 4),
        power_mw=round(report.total_power_mw, 3),
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
