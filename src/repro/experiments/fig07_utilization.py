"""Figure 7: buffer and memory-bandwidth utilization CDFs under DT.

7(a): CDF of buffer utilization sampled at packet-drop time with DT alpha in
{0.5, 1} -- DT leaves a large fraction of the (scarce) buffer unused even when
it is dropping packets.

7(b): CDF of memory-bandwidth utilization at packet-drop time for different
network loads -- even at high load, a sizeable fraction of the memory
bandwidth is idle, which is the redundant bandwidth Occamy exploits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments.common import ExperimentResult, get_scale
from repro.metrics.percentiles import percentile
from repro.scenario import leaf_spine_scenario, run_scenario


def _collect_utilizations(run_result) -> Dict[str, List[float]]:
    buffer_samples: List[float] = []
    bandwidth_samples: List[float] = []
    for node in run_result.topology.all_switches():
        buffer_samples.extend(node.stats.buffer_utilization_on_drop)
        bandwidth_samples.extend(node.stats.bandwidth_utilization_on_drop)
    return {"buffer": buffer_samples, "bandwidth": bandwidth_samples}


def run(scale: str = "small", seed: int = 0,
        alphas: Iterable[float] = (0.5, 1.0),
        loads: Optional[Iterable[float]] = None) -> ExperimentResult:
    """Percentiles of utilization-on-drop for the two sub-figures."""
    config = get_scale(scale)
    if loads is None:
        loads = (0.2, 0.4, 0.9) if scale != "bench" else (0.4,)
    query_size = 4 * config.fabric_buffer_bytes_per_port

    result = ExperimentResult(
        "fig07_utilization",
        notes="utilization sampled at packet-drop time, leaf-spine web-search",
    )

    # 7(a): buffer utilization for DT alpha in {0.5, 1} at 40% load.
    for alpha in alphas:
        run_result = run_scenario(leaf_spine_scenario(
            scheme="dt", config=config, query_size_bytes=query_size, seed=seed,
            background_load=0.4, scheme_kwargs={"alpha": alpha},
            name="fig07_utilization",
        ))
        samples = _collect_utilizations(run_result)["buffer"]
        result.add_row(
            subfigure="a_buffer",
            alpha=alpha,
            load=0.4,
            samples=len(samples),
            p50_util=percentile(samples, 50),
            p90_util=percentile(samples, 90),
            p99_util=percentile(samples, 99),
        )

    # 7(b): memory bandwidth utilization for several loads (DT alpha = 1).
    for load in loads:
        run_result = run_scenario(leaf_spine_scenario(
            scheme="dt", config=config, query_size_bytes=query_size, seed=seed,
            background_load=load, scheme_kwargs={"alpha": 1.0},
            name="fig07_utilization",
        ))
        samples = _collect_utilizations(run_result)["bandwidth"]
        result.add_row(
            subfigure="b_bandwidth",
            alpha=1.0,
            load=load,
            samples=len(samples),
            p50_util=percentile(samples, 50),
            p90_util=percentile(samples, 90),
            p99_util=percentile(samples, 99),
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
