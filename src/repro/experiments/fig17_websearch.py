"""Figure 17: large-scale leaf-spine simulation with web-search background.

Incast query traffic plus web-search background (90% load in the paper) on a
leaf-spine fabric; the figure reports QCT slowdown (average and p99) for the
query traffic and FCT slowdown for the background (overall average and p99 of
small flows) as the query size sweeps from 20% to 100% of the buffer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.metrics.percentiles import mean, percentile
from repro.scenario import leaf_spine_scenario, run_scenario


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        query_size_fractions: Optional[Iterable[float]] = None,
        background_load: float = 0.6) -> ExperimentResult:
    """QCT/FCT slowdowns on the leaf-spine fabric with web-search background."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if query_size_fractions is None:
        query_size_fractions = (0.6,) if scale == "bench" else (0.2, 0.4, 0.6, 0.8, 1.0)
    # "Buffer size" here follows the paper: the buffer shared by one port group.
    reference_buffer = config.fabric_buffer_bytes_per_port * 8

    result = ExperimentResult(
        "fig17_websearch",
        notes=f"leaf-spine, web-search background at {background_load:.0%} load",
    )
    for fraction in query_size_fractions:
        query_size = max(4000, int(fraction * reference_buffer))
        for scheme in schemes:
            run_result = run_scenario(leaf_spine_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=background_load,
                name="fig17_websearch",
            ))
            stats = run_result.flow_stats
            small_bg = stats.fct_slowdowns(query_traffic=False, small_only=True)
            result.add_row(
                query_size_frac=round(fraction, 2),
                scheme=scheme,
                avg_qct_slowdown=mean(stats.qct_slowdowns()),
                p99_qct_slowdown=percentile(stats.qct_slowdowns(), 99),
                avg_bg_fct_slowdown=mean(stats.fct_slowdowns(query_traffic=False)),
                p99_small_bg_fct_slowdown=percentile(small_bg, 99),
                drops=run_result.total_drops(),
                completion=round(stats.completion_fraction(), 3),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
