"""Experiment harnesses reproducing every table and figure of the paper.

Each ``figXX_*`` / ``table1_*`` module exposes a ``run(scale=..., seed=...)``
function returning an :class:`repro.experiments.common.ExperimentResult`
(rows of the same series the paper plots) and can be executed from the
command line through :mod:`repro.experiments.runner`::

    python -m repro.experiments.runner fig12 --scale small
    occamy-exp fig17 --scale bench

Scales:

* ``bench`` -- minimal parameter grid, used by the pytest-benchmark harness;
* ``small`` -- scaled-down but complete grid (default);
* ``paper`` -- the paper's dimensions (slow in pure Python).
"""

from repro.experiments.common import (
    ExperimentResult,
    ScenarioConfig,
    default_schemes,
)

__all__ = [
    "ExperimentResult",
    "ScenarioConfig",
    "default_schemes",
]
