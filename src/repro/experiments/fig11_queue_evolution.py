"""Figure 11: queue-length evolution of Occamy vs DT (P4 testbed scenario).

One sender pushes long-lived traffic at 100 Gbps towards receiver 1 (a 10 Gbps
port), keeping that queue at its DT threshold.  A short burst (~0.8 us at
100 Gbps in the paper; scaled here to a configurable size) then arrives for
receiver 2 (another 10 Gbps port).  With Occamy, the over-allocated queue 1 is
actively drained by head drops so queue 2 reaches its fair share without
dropping packets; with DT and a large alpha, queue 2 drops packets before it
is allocated its fair share.

The run reports, per (scheme, alpha): the burst's drop count, queue 2's
maximum length, queue 1's length at the end of the burst, and the threshold at
that time -- the quantities visible in the paper's time-series plots.  The raw
traces are also returned for plotting.

Sampling rides the telemetry subsystem (:mod:`repro.telemetry`): each run
executes with the sampling bus enabled, the per-event queue series come from
:mod:`repro.telemetry.series` (their home since the bus landed), and every
:class:`EvolutionTrace` carries the bus's cadence-sampled document, which
``main(--csv ...)`` emits through the same ``repro.telemetry.plot`` path as
``python -m repro.telemetry plot``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentResult
from repro.scenario import packet_burst_scenario, run_scenario
from repro.scenario.runner import ScenarioResult
from repro.scenario.spec import TelemetrySpec
from repro.sim.units import GBPS, KB, MB
from repro.telemetry import QueueLengthSeries, trace_to_series


@dataclass
class EvolutionTrace:
    """Raw traces of one run (for plotting).

    ``q1``/``q2`` are the per-event queue series (full resolution, the
    paper's plots); ``telemetry`` is the run's cadence-sampled bus document
    (occupancy, backlogs, drop counters over time), consumable by
    :func:`repro.telemetry.plot.write_csv`.
    """

    scheme: str
    alpha: float
    q1: QueueLengthSeries
    q2: QueueLengthSeries
    telemetry: Dict[str, object] = field(default_factory=dict)


def drive_burst_scenario(
    scheme: str,
    alpha: float,
    burst_bytes: int = 600 * KB,
    buffer_bytes: int = 2 * MB,
    sender_rate_bps: float = 100 * GBPS,
    port_rate_bps: float = 10 * GBPS,
    warmup: float = 300e-6,
    tail: float = 300e-6,
    chip_ports: int = 32,
) -> ScenarioResult:
    """Run the long-lived + burst scenario for one (scheme, alpha) pair.

    Only two ports carry traffic, but the chip is dimensioned for
    ``chip_ports`` ports (the paper's Tofino has far more switching capacity
    than the two 10 Gbps receivers), so its memory bandwidth leaves plenty of
    redundant read bandwidth for Occamy's expulsions.

    The run executes with the telemetry bus attached (read-only sampling:
    rows and traces are byte-identical to a bus-less run), so the returned
    result also carries cadence-sampled series under ``result.telemetry``.
    """
    if scheme not in ("occamy", "dt"):
        raise ValueError(f"figure 11 compares occamy and dt, not {scheme!r}")
    burst_time = burst_bytes * 8 / sender_rate_bps
    total = warmup + burst_time + tail
    spec = packet_burst_scenario(
        scheme=scheme,
        scheme_kwargs={"alpha": alpha},
        stream_specs=[
            {"rate_bps": sender_rate_bps, "port": 0, "duration": total},
        ],
        burst_specs=[
            {"burst_bytes": burst_bytes, "rate_bps": sender_rate_bps,
             "port": 1, "start_time": warmup},
        ],
        port_rate_bps=port_rate_bps,
        buffer_bytes=buffer_bytes,
        memory_bandwidth_bps=2 * chip_ports * port_rate_bps,
        duration=total,
        name="fig11_queue_evolution",
    )
    spec.telemetry = TelemetrySpec(enabled=True)
    return run_scenario(spec)


def run(scale: str = "small", seed: int = 0,
        alphas: Tuple[float, ...] = (1.0, 4.0)) -> ExperimentResult:
    """Queue-length evolution summary for Occamy and DT at each alpha."""
    del seed  # deterministic experiment
    burst_bytes = 400 * KB if scale == "bench" else 600 * KB
    result = ExperimentResult(
        "fig11_queue_evolution",
        notes="long-lived traffic on q1, burst on q2; P4 prototype scenario",
    )
    result.traces: List[EvolutionTrace] = []  # type: ignore[attr-defined]
    for scheme in ("occamy", "dt"):
        for alpha in alphas:
            scenario_result = drive_burst_scenario(scheme, alpha,
                                                   burst_bytes=burst_bytes)
            switch = scenario_result.switch
            series = trace_to_series(switch.stats.queue_trace)
            q1 = series.get(0, QueueLengthSeries(0))
            q2 = series.get(1, QueueLengthSeries(1))
            # Steady-state fair share with two congested queues: alpha*B/(1+2*alpha).
            fair_queue_len = alpha * switch.buffer_size_bytes / (1 + 2 * alpha)
            fair_target = min(fair_queue_len, burst_bytes)
            burst_drops = switch.stats.per_queue_drops.get(1, 0)
            first_drop_len = switch.stats.first_drop_queue_length.get(1)
            result.add_row(
                scheme=scheme,
                alpha=alpha,
                burst_bytes=burst_bytes,
                burst_drops=burst_drops,
                q2_max_kb=round(q2.max_length / KB, 1),
                q1_max_kb=round(q1.max_length / KB, 1),
                q1_expelled=switch.stats.per_queue_expulsions.get(0, 0),
                first_drop_at_kb=(
                    round(first_drop_len / KB, 1) if first_drop_len is not None else None
                ),
                dropped_before_fair=bool(
                    first_drop_len is not None and first_drop_len < 0.9 * fair_target
                ),
            )
            result.traces.append(  # type: ignore[attr-defined]
                EvolutionTrace(scheme=scheme, alpha=alpha, q1=q1, q2=q2,
                               telemetry=scenario_result.telemetry.to_dict())
            )
    return result


def main(argv: List[str] = None) -> None:  # pragma: no cover - CLI convenience
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Figure 11 summary table; optionally emit the sampled "
                    "queue-evolution series of each run as CSV")
    parser.add_argument("--csv", type=Path, default=None, metavar="DIR",
                        help="write one telemetry CSV per (scheme, alpha) "
                             "run into this directory")
    args = parser.parse_args(argv)
    result = run()
    print(result)
    if args.csv is not None:
        from repro.telemetry.plot import write_csv

        args.csv.mkdir(parents=True, exist_ok=True)
        for trace in result.traces:  # type: ignore[attr-defined]
            path = args.csv / f"fig11_{trace.scheme}_alpha{trace.alpha}.csv"
            with open(path, "w") as stream:
                write_csv(trace.telemetry, stream)
            print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
