"""Shared infrastructure for the experiment harnesses.

The paper's evaluation compares four buffer-management schemes (DT, ABM,
Pushout, Occamy) across single-switch testbeds and a leaf-spine fabric.
Since the :mod:`repro.scenario` layer landed, this module is mostly glue:

* :class:`ExperimentResult` -- the rows-of-dicts container every experiment
  returns (with table/CSV/JSON rendering);
* re-exports of :class:`~repro.scenario.scales.ScenarioConfig` /
  :func:`~repro.scenario.scales.get_scale` (their historical home);
* the two legacy workhorse runners :func:`run_single_switch` and
  :func:`run_leaf_spine`, kept as deprecated thin wrappers over
  :func:`repro.scenario.builders.single_switch_scenario` /
  :func:`~repro.scenario.builders.leaf_spine_scenario` plus
  :class:`~repro.scenario.runner.ScenarioRunner`.

New code should build :class:`~repro.scenario.spec.ScenarioSpec`s directly
instead of calling the wrappers.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import BufferManager
from repro.core.registry import available_schemes, make_buffer_manager
from repro.metrics.flows import FlowStats
from repro.scenario.builders import leaf_spine_scenario, single_switch_scenario
from repro.scenario.runner import ScenarioRunner
from repro.scenario.scales import ScenarioConfig, get_scale
from repro.sim.units import KB
from repro.topology.leaf_spine import LeafSpineTopology
from repro.topology.single_switch import SingleSwitchTopology
from repro.workloads.spec import FlowSpec

__all__ = [
    "ExperimentResult",
    "LeafSpineRun",
    "ScenarioConfig",
    "SingleSwitchRun",
    "default_schemes",
    "get_scale",
    "run_leaf_spine",
    "run_single_switch",
    "scheme_factory",
]


def default_schemes() -> List[str]:
    """The four schemes compared throughout the paper's evaluation."""
    return ["occamy", "abm", "dt", "pushout"]


def scheme_factory(name: str, **overrides) -> Callable[[], BufferManager]:
    """Deprecated: a zero-arg factory for scheme ``name``.

    The paper's default parameters now live in the scheme registry
    (:mod:`repro.core.registry`); call
    :func:`~repro.core.registry.make_buffer_manager` directly instead.
    """
    if name not in available_schemes():
        raise KeyError(f"unknown scheme {name!r}")
    return lambda: make_buffer_manager(name, **overrides)


# ----------------------------------------------------------------------
# Results container
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """Rows of an experiment (one dict per measured point) plus metadata.

    ``artifacts`` carries non-tabular payloads (today: the telemetry
    section of a telemetry-enabled scenario run) through the campaign
    ``ResultStore``; it is omitted from the serialized document when empty,
    so pre-artifact documents are unchanged.
    """

    experiment: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""
    artifacts: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching all of the given column values."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def to_dict(self) -> Dict[str, object]:
        """A plain-dict form suitable for JSON serialization.

        Row values must themselves be JSON-serializable (the experiments only
        emit strings, numbers and booleans); a JSON round-trip is lossless for
        those types.
        """
        doc: Dict[str, object] = {
            "experiment": self.experiment,
            "notes": self.notes,
            "rows": [dict(row) for row in self.rows],
        }
        if self.artifacts:
            doc["artifacts"] = dict(self.artifacts)
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``rows`` and ``notes`` default so older artifacts without them
        resume cleanly, and a bare ``{}`` (a legitimately empty result
        artifact) rebuilds into an empty result.  Any other payload must
        carry its ``experiment`` name: a corrupted store entry should fail
        loudly on resume, not round-trip as a nameless result.
        """
        if not data:
            return cls(experiment="")
        return cls(
            experiment=str(data["experiment"]),
            rows=[dict(row) for row in data.get("rows", [])],
            notes=str(data.get("notes", "")),
            artifacts=dict(data.get("artifacts", {})),
        )

    @classmethod
    def from_optional_dict(
        cls, data: Optional[Dict[str, object]]
    ) -> Optional["ExperimentResult"]:
        """:meth:`from_dict` for an optional payload: ``None`` stays ``None``.

        The shared deserialization contract for run outcomes and store
        entries -- ``is not None``, never truthiness, so an empty-but-present
        payload rebuilds into an (empty) result instead of being dropped.
        """
        if data is None:
            return None
        return cls.from_dict(data)

    def to_csv(self) -> str:
        """The rows as RFC-4180 CSV text (header + one line per row).

        Missing cells render empty; values are written with ``str()`` so the
        output feeds straight into pandas / gnuplot / spreadsheet tooling.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        cols = self.columns()
        writer.writerow(cols)
        for row in self.rows:
            writer.writerow(["" if row.get(c) is None else row.get(c)
                             for c in cols])
        return buffer.getvalue()

    def format_table(self, float_digits: int = 4) -> str:
        """Render the rows as an aligned text table."""
        cols = self.columns()
        if not cols:
            return f"[{self.experiment}] (no rows)"

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}g}"
            return str(value)

        table = [[fmt(row.get(c, "")) for c in cols] for row in self.rows]
        widths = [max(len(c), *(len(r[i]) for r in table)) if table else len(c)
                  for i, c in enumerate(cols)]
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(cols, widths, strict=True)),
            "  ".join("-" * w for w in widths),
        ]
        for row in table:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths, strict=True)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        header = f"== {self.experiment} =="
        if self.notes:
            header += f"  ({self.notes})"
        return header + "\n" + self.format_table()


# ----------------------------------------------------------------------
# Deprecated workhorse runners (thin wrappers over the scenario layer)
# ----------------------------------------------------------------------
@dataclass
class SingleSwitchRun:
    """Everything an experiment needs from one single-switch run."""

    topology: SingleSwitchTopology
    flow_stats: FlowStats

    @property
    def switch_stats(self):
        return self.topology.switch.stats


def run_single_switch(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.5,
    background_transport: str = "dctcp",
    query_transport: str = "dctcp",
    queues_per_port: int = 1,
    scheduler: str = "fifo",
    query_priority: int = 0,
    background_priority: int = 0,
    alpha_overrides: Optional[Dict[int, float]] = None,
    scheme_overrides: Optional[Dict[str, object]] = None,
    extra_flows: Optional[Sequence[FlowSpec]] = None,
    include_background: bool = True,
) -> SingleSwitchRun:
    """Deprecated: run the DPDK-testbed-style scenario.

    Thin wrapper over
    :func:`~repro.scenario.builders.single_switch_scenario`; build the
    :class:`~repro.scenario.spec.ScenarioSpec` yourself for new code.
    """
    spec = single_switch_scenario(
        scheme=scheme,
        config=config,
        query_size_bytes=query_size_bytes,
        seed=seed,
        background_load=background_load,
        background_transport=background_transport,
        query_transport=query_transport,
        queues_per_port=queues_per_port,
        scheduler=scheduler,
        query_priority=query_priority,
        background_priority=background_priority,
        alpha_overrides=alpha_overrides,
        scheme_kwargs=scheme_overrides,
        extra_flows=extra_flows,
        include_background=include_background,
    )
    result = ScenarioRunner().run(spec)
    return SingleSwitchRun(topology=result.topology,
                           flow_stats=result.flow_stats)


@dataclass
class LeafSpineRun:
    """Everything an experiment needs from one leaf-spine run."""

    topology: LeafSpineTopology
    flow_stats: FlowStats

    def total_drops(self) -> int:
        return self.topology.total_switch_drops()


def run_leaf_spine(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.4,
    background_kind: str = "websearch",
    background_flow_size: int = 256 * KB,
    query_load_queries: Optional[int] = None,
    scheme_overrides: Optional[Dict[str, object]] = None,
    buffer_bytes_per_port: Optional[int] = None,
) -> LeafSpineRun:
    """Deprecated: run the ns-3-style leaf-spine scenario (Section 6.4).

    Thin wrapper over
    :func:`~repro.scenario.builders.leaf_spine_scenario`; build the
    :class:`~repro.scenario.spec.ScenarioSpec` yourself for new code.
    """
    spec = leaf_spine_scenario(
        scheme=scheme,
        config=config,
        query_size_bytes=query_size_bytes,
        seed=seed,
        background_load=background_load,
        background_kind=background_kind,
        background_flow_size=background_flow_size,
        query_load_queries=query_load_queries,
        scheme_kwargs=scheme_overrides,
        buffer_bytes_per_port=buffer_bytes_per_port,
    )
    result = ScenarioRunner().run(spec)
    return LeafSpineRun(topology=result.topology,
                        flow_stats=result.flow_stats)
