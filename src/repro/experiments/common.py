"""Shared infrastructure for the experiment harnesses.

The paper's evaluation compares four buffer-management schemes (DT, ABM,
Pushout, Occamy) across single-switch testbeds and a leaf-spine fabric.  This
module centralizes:

* the scheme factories with the paper's parameter choices;
* scaled scenario configurations (``bench`` / ``small`` / ``paper``);
* the two workhorse scenario runners -- a single-switch incast+background
  scenario (the DPDK testbed of Section 6.2) and a leaf-spine scenario (the
  ns-3 simulations of Section 6.4);
* the :class:`ExperimentResult` container used to print/compare rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import ABM, BufferManager, DynamicThreshold, Occamy, Pushout
from repro.core.occamy import OccamyLongestDrop
from repro.metrics.flows import FlowStats
from repro.netsim.transport.base import TransportConfig
from repro.sim.rng import SeededRNG
from repro.sim.units import GBPS, KB, MB
from repro.topology.leaf_spine import LeafSpineTopology
from repro.topology.single_switch import SingleSwitchTopology
from repro.workloads import (
    IncastQueryGenerator,
    PoissonFlowGenerator,
    WEB_SEARCH_DISTRIBUTION,
    all_reduce_flows,
    all_to_all_flows,
    flows_per_second_for_load,
)
from repro.workloads.spec import FlowSpec


# ----------------------------------------------------------------------
# Scheme factories (paper parameter choices, Section 6.2)
# ----------------------------------------------------------------------
SCHEME_FACTORIES: Dict[str, Callable[[], BufferManager]] = {
    "dt": lambda: DynamicThreshold(alpha=1.0),
    "abm": lambda: ABM(alpha=2.0),
    "occamy": lambda: Occamy(alpha=8.0),
    "occamy_longest": lambda: OccamyLongestDrop(alpha=8.0),
    "pushout": lambda: Pushout(),
}


def default_schemes() -> List[str]:
    """The four schemes compared throughout the paper's evaluation."""
    return ["occamy", "abm", "dt", "pushout"]


def scheme_factory(name: str, **overrides) -> Callable[[], BufferManager]:
    """A factory for scheme ``name``; ``overrides`` replace constructor args."""
    if name not in SCHEME_FACTORIES:
        raise KeyError(f"unknown scheme {name!r}")
    if not overrides:
        return SCHEME_FACTORIES[name]
    base = {
        "dt": DynamicThreshold,
        "abm": ABM,
        "occamy": Occamy,
        "occamy_longest": OccamyLongestDrop,
        "pushout": Pushout,
    }[name]
    return lambda: base(**overrides)


# ----------------------------------------------------------------------
# Scenario configuration / scaling
# ----------------------------------------------------------------------
@dataclass
class ScenarioConfig:
    """Dimensions of a scenario, scaled for pure-Python runtimes.

    The ``paper`` scale mirrors the published setup; ``small`` and ``bench``
    shrink host counts, durations and query counts while keeping the ratios
    (buffer per port, query size relative to buffer, loads) that the results
    depend on.
    """

    name: str = "small"
    # Single-switch (DPDK-testbed-like) dimensions.
    num_hosts: int = 8
    link_rate_bps: float = 10 * GBPS
    buffer_kb_per_port_per_gbps: float = 5.12
    ecn_threshold_packets: int = 65
    duration: float = 0.02
    queries: int = 12
    incast_fanout: int = 14
    # Leaf-spine dimensions.
    num_leaves: int = 4
    num_spines: int = 4
    hosts_per_leaf: int = 4
    fabric_link_rate_bps: float = 10 * GBPS
    fabric_buffer_bytes_per_port: int = 256 * KB
    fabric_ecn_threshold_bytes: int = 90 * KB
    fabric_duration: float = 0.02
    fabric_queries: int = 8
    fabric_incast_fanout: int = 8
    # Transport.
    min_rto: float = 2e-3
    run_slack: float = 10.0  # run the sim this many x the workload duration

    def mtu_ecn_threshold_bytes(self, mtu: int = 1500) -> int:
        return self.ecn_threshold_packets * mtu


_SCALES: Dict[str, ScenarioConfig] = {
    "bench": ScenarioConfig(
        name="bench",
        num_hosts=8,
        duration=0.006,
        queries=4,
        incast_fanout=8,
        num_leaves=2,
        num_spines=2,
        hosts_per_leaf=3,
        fabric_duration=0.006,
        fabric_queries=3,
        fabric_incast_fanout=4,
        fabric_buffer_bytes_per_port=64 * KB,
        fabric_ecn_threshold_bytes=30 * KB,
        min_rto=2e-3,
    ),
    "small": ScenarioConfig(
        name="small",
        fabric_buffer_bytes_per_port=128 * KB,
        fabric_ecn_threshold_bytes=45 * KB,
    ),
    "paper": ScenarioConfig(
        name="paper",
        num_hosts=8,
        duration=0.2,
        queries=60,
        incast_fanout=16,
        num_leaves=8,
        num_spines=8,
        hosts_per_leaf=16,
        fabric_link_rate_bps=100 * GBPS,
        fabric_buffer_bytes_per_port=512 * KB,
        fabric_ecn_threshold_bytes=720 * KB,
        fabric_duration=0.05,
        fabric_queries=40,
        fabric_incast_fanout=16,
        min_rto=5e-3,
    ),
}


def get_scale(scale: str) -> ScenarioConfig:
    """Look up a named scale (``bench``, ``small`` or ``paper``)."""
    try:
        return replace(_SCALES[scale])
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; available: {', '.join(sorted(_SCALES))}"
        ) from None


# ----------------------------------------------------------------------
# Results container
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """Rows of an experiment (one dict per measured point) plus metadata."""

    experiment: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching all of the given column values."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def to_dict(self) -> Dict[str, object]:
        """A plain-dict form suitable for JSON serialization.

        Row values must themselves be JSON-serializable (the experiments only
        emit strings, numbers and booleans); a JSON round-trip is lossless for
        those types.
        """
        return {
            "experiment": self.experiment,
            "notes": self.notes,
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            experiment=str(data["experiment"]),
            rows=[dict(row) for row in data.get("rows", [])],
            notes=str(data.get("notes", "")),
        )

    def format_table(self, float_digits: int = 4) -> str:
        """Render the rows as an aligned text table."""
        cols = self.columns()
        if not cols:
            return f"[{self.experiment}] (no rows)"

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}g}"
            return str(value)

        table = [[fmt(row.get(c, "")) for c in cols] for row in self.rows]
        widths = [max(len(c), *(len(r[i]) for r in table)) if table else len(c)
                  for i, c in enumerate(cols)]
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in table:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        header = f"== {self.experiment} =="
        if self.notes:
            header += f"  ({self.notes})"
        return header + "\n" + self.format_table()


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------
@dataclass
class SingleSwitchRun:
    """Everything an experiment needs from one single-switch run."""

    topology: SingleSwitchTopology
    flow_stats: FlowStats

    @property
    def switch_stats(self):
        return self.topology.switch.stats


def run_single_switch(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.5,
    background_transport: str = "dctcp",
    query_transport: str = "dctcp",
    queues_per_port: int = 1,
    scheduler: str = "fifo",
    query_priority: int = 0,
    background_priority: int = 0,
    alpha_overrides: Optional[Dict[int, float]] = None,
    scheme_overrides: Optional[Dict[str, object]] = None,
    extra_flows: Optional[Sequence[FlowSpec]] = None,
    include_background: bool = True,
) -> SingleSwitchRun:
    """Run the DPDK-testbed-style scenario: incast queries + web-search background.

    Args:
        scheme: buffer-management scheme name (see :data:`SCHEME_FACTORIES`).
        config: scenario scale.
        query_size_bytes: total response bytes per query (the paper sweeps
            this as a percentage of the buffer size).
        background_load: offered load of the 1-to-1 background traffic.
        queues_per_port / scheduler: switch queueing structure (e.g. 2 DRR
            queues for the isolation experiment, strict priority for the
            buffer-choking experiment).
        query_priority / background_priority: traffic classes of the two
            traffic types.
        alpha_overrides: per-class-index alpha overrides applied to every
            port's queues (e.g. ``{0: 8.0, 1: 1.0}``).
        scheme_overrides: keyword overrides for the scheme constructor.
        extra_flows: additional flows to inject unchanged.
        include_background: disable the background traffic entirely (used by
            the "without background" baselines).
    """
    factory = scheme_factory(scheme, **(scheme_overrides or {}))
    topo = SingleSwitchTopology(
        num_hosts=config.num_hosts,
        manager_factory=factory,
        link_rate_bps=config.link_rate_bps,
        buffer_kb_per_port_per_gbps=config.buffer_kb_per_port_per_gbps,
        queues_per_port=queues_per_port,
        scheduler=scheduler,
        ecn_threshold_bytes=config.mtu_ecn_threshold_bytes(),
    )
    if alpha_overrides:
        for queue in topo.switch.queue_views():
            if queue.class_index in alpha_overrides:
                queue.alpha_override = alpha_overrides[queue.class_index]

    rng = SeededRNG(seed)
    hosts = topo.hosts
    client = hosts[0]
    servers = hosts[1:]

    queries_per_second = max(1.0, config.queries / config.duration)
    query_gen = IncastQueryGenerator(
        clients=[client],
        servers=servers,
        query_size_bytes=query_size_bytes,
        fanout=min(config.incast_fanout, max(1, 2 * len(servers))),
        queries_per_second=queries_per_second,
        rng=rng.child("query"),
        priority=query_priority,
    )
    flows: List[FlowSpec] = query_gen.generate(config.duration, start_time=0.0)

    if include_background and background_load > 0:
        bg_rate = flows_per_second_for_load(
            background_load,
            config.link_rate_bps,
            WEB_SEARCH_DISTRIBUTION.mean(),
            num_senders=len(hosts),
        )
        bg_gen = PoissonFlowGenerator(
            hosts,
            WEB_SEARCH_DISTRIBUTION,
            flows_per_second=bg_rate * len(hosts),
            rng=rng.child("bg"),
            priority=background_priority,
        )
        # A single aggregate Poisson process over all hosts (equivalent to
        # independent per-host processes with 1/N the rate each).
        bg_gen.flows_per_second = bg_rate * len(hosts)
        flows.extend(bg_gen.generate(config.duration, start_time=0.0))

    if extra_flows:
        flows.extend(extra_flows)

    transport_config = TransportConfig(min_rto=config.min_rto)
    network = topo.network
    network.set_transport_config(transport_config)
    query_flows = [f for f in flows if f.query_id is not None]
    bg_flows = [f for f in flows if f.query_id is None]
    network.inject_flows(query_flows, transport=query_transport)
    network.inject_flows(bg_flows, transport=background_transport)
    network.run(until=config.duration * config.run_slack)
    return SingleSwitchRun(topology=topo, flow_stats=network.flow_stats)


@dataclass
class LeafSpineRun:
    """Everything an experiment needs from one leaf-spine run."""

    topology: LeafSpineTopology
    flow_stats: FlowStats

    def total_drops(self) -> int:
        return self.topology.total_switch_drops()


def run_leaf_spine(
    scheme: str,
    config: ScenarioConfig,
    query_size_bytes: int,
    seed: int = 0,
    background_load: float = 0.4,
    background_kind: str = "websearch",
    background_flow_size: int = 256 * KB,
    query_load_queries: Optional[int] = None,
    scheme_overrides: Optional[Dict[str, object]] = None,
    buffer_bytes_per_port: Optional[int] = None,
) -> LeafSpineRun:
    """Run the ns-3-style leaf-spine scenario (Section 6.4).

    ``background_kind`` selects the background workload: ``websearch``
    (Poisson web-search flows at ``background_load``), ``all_to_all`` or
    ``all_reduce`` (one collective round of ``background_flow_size`` flows).
    """
    factory = scheme_factory(scheme, **(scheme_overrides or {}))
    topo = LeafSpineTopology(
        manager_factory=factory,
        num_leaves=config.num_leaves,
        num_spines=config.num_spines,
        hosts_per_leaf=config.hosts_per_leaf,
        link_rate_bps=config.fabric_link_rate_bps,
        buffer_bytes_per_port=(
            buffer_bytes_per_port
            if buffer_bytes_per_port is not None
            else config.fabric_buffer_bytes_per_port
        ),
        ecn_threshold_bytes=config.fabric_ecn_threshold_bytes,
    )
    rng = SeededRNG(seed)
    hosts = topo.hosts

    num_queries = query_load_queries if query_load_queries is not None else config.fabric_queries
    fanout = min(config.fabric_incast_fanout, len(hosts) - 1)
    query_gen = IncastQueryGenerator(
        clients=[hosts[0]],
        servers=hosts[1:],
        query_size_bytes=query_size_bytes,
        fanout=fanout,
        queries_per_second=max(1.0, num_queries / config.fabric_duration),
        rng=rng.child("query"),
    )
    # Issue exactly ``num_queries`` queries, evenly spaced across the run, so
    # that every scheme sees the same (deterministic) query workload even at
    # the smallest scales.
    flows: List[FlowSpec] = []
    spacing = config.fabric_duration / max(1, num_queries)
    for i in range(num_queries):
        flows.extend(query_gen.make_query(hosts[0], start_time=i * spacing))

    if background_kind == "websearch":
        if background_load > 0:
            bg_rate = flows_per_second_for_load(
                background_load,
                config.fabric_link_rate_bps,
                WEB_SEARCH_DISTRIBUTION.mean(),
                num_senders=1,
            ) * len(hosts)
            bg_gen = PoissonFlowGenerator(
                hosts,
                WEB_SEARCH_DISTRIBUTION,
                flows_per_second=bg_rate,
                rng=rng.child("bg"),
            )
            flows.extend(bg_gen.generate(config.fabric_duration, start_time=0.0))
    elif background_kind == "all_to_all":
        flows.extend(all_to_all_flows(hosts, background_flow_size, start_time=0.0))
    elif background_kind == "all_reduce":
        flows.extend(all_reduce_flows(hosts, background_flow_size, start_time=0.0))
    else:
        raise ValueError(f"unknown background kind {background_kind!r}")

    transport_config = TransportConfig(min_rto=config.min_rto)
    network = topo.network
    network.set_transport_config(transport_config)
    network.inject_flows(flows, transport="dctcp")
    network.run(until=config.fabric_duration * config.run_slack)
    return LeafSpineRun(topology=topo, flow_stats=network.flow_stats)
