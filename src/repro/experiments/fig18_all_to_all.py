"""Figure 18: performance with all-to-all background traffic (AI workloads).

Every host sends an identical amount of data to every other host while the
incast query traffic runs on top.  The figure sweeps the per-flow size of the
all-to-all traffic and reports the query traffic's average QCT slowdown and
the background's p99 FCT slowdown.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.metrics.percentiles import mean, percentile
from repro.scenario import leaf_spine_scenario, run_scenario
from repro.sim.units import KB


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        flow_sizes_kb: Optional[Iterable[int]] = None,
        background_kind: str = "all_to_all") -> ExperimentResult:
    """QCT / FCT slowdowns with collective background traffic."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if flow_sizes_kb is None:
        flow_sizes_kb = (64,) if scale == "bench" else (16, 64, 256, 1024)
    query_size = 4 * config.fabric_buffer_bytes_per_port

    result = ExperimentResult(
        f"fig18_{background_kind}",
        notes=f"leaf-spine, {background_kind} background + incast queries",
    )
    for size_kb in flow_sizes_kb:
        for scheme in schemes:
            run_result = run_scenario(leaf_spine_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_kind=background_kind,
                background_flow_size=size_kb * KB,
                name=f"fig18_{background_kind}",
            ))
            stats = run_result.flow_stats
            result.add_row(
                flow_size_kb=size_kb,
                scheme=scheme,
                avg_qct_slowdown=mean(stats.qct_slowdowns()),
                p99_bg_fct_slowdown=percentile(
                    stats.fct_slowdowns(query_traffic=False), 99
                ),
                drops=run_result.total_drops(),
                completion=round(stats.completion_fraction(), 3),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
