"""Figure 12: burst absorption (loss rate vs burst size) for Occamy and DT.

Same scenario as Figure 11 (long-lived traffic keeping queue 1 congested, a
burst arriving at queue 2), but sweeping the burst size and the alpha
parameter.  The paper's observations to reproduce:

1. for the same alpha, Occamy starts dropping at substantially larger burst
   sizes than DT (~57 % more at alpha = 4);
2. Occamy's burst absorption *improves* as alpha grows (more efficient use of
   the buffer), whereas DT's degrades (less headroom reserved and no way to
   reclaim it).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.fig11_queue_evolution import drive_burst_scenario
from repro.sim.units import KB, MB


def loss_rate_for(scheme: str, alpha: float, burst_bytes: int,
                  buffer_bytes: int = 2 * MB) -> float:
    """Loss rate of the bursty traffic for one configuration."""
    switch = drive_burst_scenario(scheme, alpha, burst_bytes=burst_bytes,
                                  buffer_bytes=buffer_bytes).switch
    q2 = switch.queue_for(1, 0)
    total = q2.enqueued_packets + q2.dropped_packets
    if total == 0:
        return 0.0
    # Expelled packets belong to the over-allocated queue (queue 1); burst
    # losses are admission drops at queue 2.
    return q2.dropped_packets / total


def max_absorbable_burst(scheme: str, alpha: float,
                         burst_sizes: Sequence[int]) -> int:
    """Largest burst in ``burst_sizes`` absorbed with zero loss."""
    best = 0
    for burst in burst_sizes:
        if loss_rate_for(scheme, alpha, burst) == 0.0:
            best = max(best, burst)
    return best


def run(scale: str = "small", seed: int = 0,
        alphas: Tuple[float, ...] = (1.0, 2.0, 4.0),
        burst_sizes_kb: Optional[Iterable[int]] = None) -> ExperimentResult:
    """Loss rate of the bursty traffic for every (scheme, alpha, burst size)."""
    del seed  # deterministic experiment
    if burst_sizes_kb is None:
        burst_sizes_kb = (300, 400, 500, 600, 700, 800)
    if scale == "bench":
        burst_sizes_kb = (400, 800)
        alphas = (1.0, 4.0)

    result = ExperimentResult(
        "fig12_burst_absorption",
        notes="loss rate of bursty traffic; 2MB buffer, q1 congested by long-lived traffic",
    )
    for alpha in alphas:
        for burst_kb in burst_sizes_kb:
            for scheme in ("occamy", "dt"):
                rate = loss_rate_for(scheme, alpha, burst_kb * KB)
                result.add_row(
                    alpha=alpha,
                    burst_kb=burst_kb,
                    scheme=scheme,
                    loss_rate=round(rate, 4),
                )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
