"""Figure 6: QCT degradation caused by DT's anomalous behaviour.

Two sub-experiments, both DT-only (they motivate the need for Occamy):

* **6(a) buffer choking** -- high-priority incast queries share an egress port
  with low-priority long-lived background flows under strict-priority
  scheduling.  DT is configured so that the query traffic deserves the same
  buffer with or without the background (alpha = 8 with background, 1
  without), yet the measured QCT degrades by several x with background because
  the slowly draining low-priority queues hold the buffer hostage.
* **6(b) inter-port influence** -- the same comparison but with the background
  congesting *different* ports, isolating the effect of a high arrival rate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    ScenarioConfig,
    get_scale,
)
from repro.scenario import run_scenario, single_switch_scenario


def _long_lived_background(config: ScenarioConfig, hosts: List[int], client: int,
                           priority: int) -> List[Dict[str, object]]:
    """Long-lived low-priority flows from two hosts towards the query client."""
    senders = [h for h in hosts if h != client][:2]
    flows: List[Dict[str, object]] = []
    size = int(config.link_rate_bps / 8 * config.duration)  # enough to last the run
    for sender in senders:
        for _ in range(7):
            flows.append(dict(src=sender, dst=client,
                              size_bytes=max(size, 100_000),
                              start_time=0.0, priority=priority))
    return flows


def run(scale: str = "small", seed: int = 0,
        query_fractions: Optional[Iterable[float]] = None) -> ExperimentResult:
    """Average QCT with and without competing traffic, for both sub-figures."""
    config = get_scale(scale)
    if query_fractions is None:
        query_fractions = (0.3, 0.6, 1.0) if scale != "bench" else (0.5,)

    buffer_bytes = int(config.buffer_kb_per_port_per_gbps * 1024
                       * config.num_hosts * config.link_rate_bps / 1e9)
    result = ExperimentResult(
        "fig06_anomalous_behavior",
        notes="DT only; QCT degradation from buffer choking (a) and inter-port bursts (b)",
    )

    for fraction in query_fractions:
        query_size = int(fraction * buffer_bytes)

        # ---- (a) buffer choking: queries and background share a port -------
        hosts = list(range(config.num_hosts))
        client = hosts[0]
        lp_flows = _long_lived_background(config, hosts, client, priority=1)
        with_lp = run_scenario(single_switch_scenario(
            scheme="dt", config=config, query_size_bytes=query_size, seed=seed,
            include_background=False, queues_per_port=2, scheduler="strict",
            query_priority=0, alpha_overrides={0: 8.0, 1: 1.0},
            extra_flows=lp_flows, background_transport="cubic",
            name="fig06_buffer_choking",
        ))
        without_lp = run_scenario(single_switch_scenario(
            scheme="dt", config=config, query_size_bytes=query_size, seed=seed,
            include_background=False, queues_per_port=2, scheduler="strict",
            query_priority=0, alpha_overrides={0: 1.0, 1: 1.0},
            name="fig06_buffer_choking",
        ))
        result.add_row(
            subfigure="a_buffer_choking",
            query_size_frac=fraction,
            qct_with_competitor_ms=with_lp.flow_stats.average_qct() * 1e3,
            qct_without_competitor_ms=without_lp.flow_stats.average_qct() * 1e3,
            degradation=(
                with_lp.flow_stats.average_qct()
                / max(1e-9, without_lp.flow_stats.average_qct())
            ),
        )

        # ---- (b) inter-port influence: background on other ports -----------
        with_bg = run_scenario(single_switch_scenario(
            scheme="dt", config=config, query_size_bytes=query_size, seed=seed,
            background_load=0.6, include_background=True,
            name="fig06_inter_port",
        ))
        without_bg = run_scenario(single_switch_scenario(
            scheme="dt", config=config, query_size_bytes=query_size, seed=seed,
            include_background=False,
            name="fig06_inter_port",
        ))
        result.add_row(
            subfigure="b_inter_port",
            query_size_frac=fraction,
            qct_with_competitor_ms=with_bg.flow_stats.average_qct() * 1e3,
            qct_without_competitor_ms=without_bg.flow_stats.average_qct() * 1e3,
            degradation=(
                with_bg.flow_stats.average_qct()
                / max(1e-9, without_bg.flow_stats.average_qct())
            ),
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
