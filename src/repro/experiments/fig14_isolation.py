"""Figure 14: performance isolation between service queues (DRR scheduling).

Query traffic and background traffic are assigned to two different service
queues on every port, scheduled by Deficit Round Robin.  The background flows
use CUBIC (loss-driven, buffer-filling) and their load is swept; the figure
reports how much the query traffic's QCT suffers.  Non-preemptive schemes let
the background queue hold on to over-allocated buffer, driving the query
traffic into retransmission timeouts; Occamy reclaims it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.scenario import run_scenario, single_switch_scenario


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        background_loads: Optional[Iterable[float]] = None,
        query_size_fraction: float = 0.8) -> ExperimentResult:
    """Average / p99 QCT vs background load with two DRR service queues."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if background_loads is None:
        background_loads = (0.3, 0.6) if scale == "bench" else (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    buffer_bytes = int(config.buffer_kb_per_port_per_gbps * 1024
                       * config.num_hosts * config.link_rate_bps / 1e9)
    query_size = max(2000, int(query_size_fraction * buffer_bytes))

    result = ExperimentResult(
        "fig14_isolation",
        notes="2 DRR service queues per port; CUBIC background, DCTCP queries",
    )
    for load in background_loads:
        for scheme in schemes:
            spec = single_switch_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=load,
                queues_per_port=2, scheduler="drr",
                query_priority=0, background_priority=1,
                background_transport="cubic",
                name="fig14_isolation",
            )
            run_result = run_scenario(spec)
            stats = run_result.flow_stats
            result.add_row(
                background_load=load,
                scheme=scheme,
                avg_qct_ms=stats.average_qct() * 1e3,
                p99_qct_ms=stats.p99_qct() * 1e3,
                query_timeouts=run_result.topology.network.total_timeouts(),
                drops=run_result.switch_stats.dropped_packets,
                expelled=run_result.switch_stats.expelled_packets,
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
