"""Figure 20: performance with higher query-traffic load.

The query load is swept (the paper goes from 10% to 80% of link capacity, with
a fixed query size of 80% of the buffer) while the background runs at a light
10% load.  The figure reports the average QCT slowdown of the queries and the
average FCT slowdown of the background flows.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.metrics.percentiles import mean
from repro.scenario import leaf_spine_scenario, run_scenario


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        query_loads: Optional[Iterable[float]] = None) -> ExperimentResult:
    """Average QCT / FCT slowdown as the query load grows."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if query_loads is None:
        query_loads = (0.4,) if scale == "bench" else (0.1, 0.3, 0.5, 0.8)
    reference_buffer = config.fabric_buffer_bytes_per_port * 8
    query_size = int(0.8 * reference_buffer)

    result = ExperimentResult(
        "fig20_query_load",
        notes="leaf-spine, query size 80% of buffer, background load 10%",
    )
    for load in query_loads:
        # Convert the target load into a query count over the run duration.
        bytes_per_query = query_size
        link_bytes = config.fabric_link_rate_bps / 8 * config.fabric_duration
        num_queries = max(2, int(load * link_bytes / bytes_per_query))
        for scheme in schemes:
            run_result = run_scenario(leaf_spine_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=0.1, query_load_queries=num_queries,
                name="fig20_query_load",
            ))
            stats = run_result.flow_stats
            result.add_row(
                query_load=load,
                queries=num_queries,
                scheme=scheme,
                avg_qct_slowdown=mean(stats.qct_slowdowns()),
                avg_bg_fct_slowdown=mean(stats.fct_slowdowns(query_traffic=False)),
                drops=run_result.total_drops(),
                completion=round(stats.completion_fraction(), 3),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
