"""Figure 13: burst absorption on the software-switch testbed (QCT and FCT).

Incast query traffic (Poisson queries, size swept as a percentage of the
buffer) competes with web-search background traffic at 50% load on a single
shared-memory switch.  For every scheme the harness reports average and 99th
percentile QCT, the overall background FCT and the 99th percentile FCT of
small (<100 KB) background flows -- the four panels of Figure 13.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    default_schemes,
    get_scale,
)
from repro.scenario import run_scenario, single_switch_scenario


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        query_size_fractions: Optional[Iterable[float]] = None,
        background_load: float = 0.5) -> ExperimentResult:
    """QCT/FCT vs query size (as a fraction of the buffer) for every scheme."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if query_size_fractions is None:
        query_size_fractions = (
            (0.6, 1.0) if scale == "bench" else (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4)
        )
    buffer_bytes = int(config.buffer_kb_per_port_per_gbps * 1024
                       * config.num_hosts * config.link_rate_bps / 1e9)

    result = ExperimentResult(
        "fig13_qct_fct",
        notes=f"single switch, background load {background_load:.0%}, "
              f"buffer {buffer_bytes // 1024} KB",
    )
    for fraction in query_size_fractions:
        query_size = max(2000, int(fraction * buffer_bytes))
        for scheme in schemes:
            spec = single_switch_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=background_load,
                name="fig13_qct_fct",
            )
            run_result = run_scenario(spec)
            stats = run_result.flow_stats
            result.add_row(
                query_size_frac=round(fraction, 2),
                scheme=scheme,
                avg_qct_ms=stats.average_qct() * 1e3,
                p99_qct_ms=stats.p99_qct() * 1e3,
                avg_bg_fct_ms=stats.average_fct(query_traffic=False) * 1e3,
                p99_small_bg_fct_ms=stats.p99_fct(query_traffic=False,
                                                  small_only=True) * 1e3,
                drops=run_result.switch_stats.dropped_packets,
                expelled=run_result.switch_stats.expelled_packets,
                completion=round(stats.completion_fraction(), 3),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
