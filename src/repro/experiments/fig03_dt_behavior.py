"""Figure 3: healthy vs anomalous dynamic behaviour of Dynamic Threshold.

Two queues on two different 10 Gbps ports share the buffer under DT.  Queue 1
is already congested (its length sits at the threshold).  A burst then arrives
at queue 2:

* **healthy** -- the burst arrives at a moderate rate, so as the threshold
  falls queue 1 can drain its excess occupancy in time and both queues
  converge to the same (fair) length;
* **anomalous** -- the burst arrives much faster than queue 1 can drain, the
  threshold collapses below queue 1's length, and queue 2 starts dropping
  packets *before* reaching its fair share ("drop before fair").

The run reports, per case, the final queue lengths, the fair share, and how
many burst bytes were dropped before queue 2 reached the threshold.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentResult
from repro.telemetry import trace_to_series
from repro.scenario import packet_burst_scenario, run_scenario
from repro.sim.units import GBPS, MB
from repro.switchsim.switch import SharedMemorySwitch


def _drive_two_queue_scenario(
    burst_rate_bps: float,
    alpha: float = 1.0,
    buffer_bytes: int = 1 * MB,
    port_rate_bps: float = 10 * GBPS,
    warmup: float = 400e-6,
    burst_duration: float = 400e-6,
) -> SharedMemorySwitch:
    """Congest queue 1, then hit queue 2 with a burst at ``burst_rate_bps``."""
    total = warmup + burst_duration
    spec = packet_burst_scenario(
        scheme="dt",
        scheme_kwargs={"alpha": alpha},
        stream_specs=[
            # Long-lived traffic keeps queue 1 at its threshold: arrivals at
            # 4x the port rate for the whole experiment.
            {"rate_bps": 4 * port_rate_bps, "port": 0, "duration": total},
            # The burst hits queue 2 after the warm-up.
            {"rate_bps": burst_rate_bps, "port": 1, "duration": burst_duration,
             "start_time": warmup},
        ],
        port_rate_bps=port_rate_bps,
        buffer_bytes=buffer_bytes,
        duration=total,
        name="fig03_dt_behavior",
    )
    return run_scenario(spec).switch


def run(scale: str = "small", seed: int = 0,
        cases: Optional[Dict[str, float]] = None) -> ExperimentResult:
    """Run the healthy and anomalous cases and summarize their dynamics."""
    del seed  # deterministic experiment
    port_rate = 10 * GBPS
    if cases is None:
        cases = {"healthy": 1.2 * port_rate, "anomalous": 8 * port_rate}
    if scale == "bench":
        cases = dict(list(cases.items())[:2])

    result = ExperimentResult(
        "fig03_dt_behavior",
        notes="DT, two queues, burst at queue 2 while queue 1 is congested",
    )
    for case, burst_rate in cases.items():
        switch = _drive_two_queue_scenario(burst_rate_bps=burst_rate)
        series = trace_to_series(switch.stats.queue_trace)
        q1 = series.get(0)
        q2 = series.get(1)
        # Steady-state fair queue length with two congested queues at alpha=1.
        fair_share = switch.buffer_size_bytes * 1.0 / (1.0 + 1.0 * 2)
        q2_drops = switch.stats.per_queue_drops.get(1, 0)
        first_drop_len = switch.stats.first_drop_queue_length.get(1)
        result.add_row(
            case=case,
            burst_rate_gbps=burst_rate / GBPS,
            q1_final_bytes=q1.lengths[-1] if q1 and q1.lengths else 0,
            q2_final_bytes=q2.lengths[-1] if q2 and q2.lengths else 0,
            q2_max_bytes=q2.max_length if q2 else 0,
            fair_share_bytes=int(fair_share),
            q2_drops=q2_drops,
            q2_first_drop_length=first_drop_len,
            drop_before_fair=bool(
                first_drop_len is not None and first_drop_len < 0.9 * fair_share
            ),
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
