"""Figure 21: the effectiveness of round-robin drop vs longest-queue drop.

Occamy expels from all over-allocated queues in round-robin order to avoid
the cost of tracking the longest queue.  This harness compares that choice to
the ablation that always drops from the longest over-allocated queue,
reporting QCT and FCT slowdowns for both variants -- the paper's result is
that they are within ~15% of each other.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.common import ExperimentResult, get_scale
from repro.metrics.percentiles import mean, percentile
from repro.scenario import leaf_spine_scenario, run_scenario


def run(scale: str = "small", seed: int = 0,
        query_size_fractions: Optional[Iterable[float]] = None,
        background_load: float = 0.4) -> ExperimentResult:
    """Round-robin vs longest-queue drop for Occamy on the leaf-spine fabric."""
    config = get_scale(scale)
    if query_size_fractions is None:
        query_size_fractions = (0.6,) if scale == "bench" else (0.2, 0.4, 0.6, 0.8, 1.0)
    reference_buffer = config.fabric_buffer_bytes_per_port * 8

    result = ExperimentResult(
        "fig21_round_robin",
        notes=f"Occamy victim policy ablation, background load {background_load:.0%}",
    )
    for fraction in query_size_fractions:
        query_size = max(4000, int(fraction * reference_buffer))
        for scheme, label in (("occamy", "round_robin"), ("occamy_longest", "longest")):
            run_result = run_scenario(leaf_spine_scenario(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, background_load=background_load,
                name="fig21_round_robin",
            ))
            stats = run_result.flow_stats
            result.add_row(
                query_size_frac=round(fraction, 2),
                victim_policy=label,
                avg_qct_slowdown=mean(stats.qct_slowdowns()),
                p99_qct_slowdown=percentile(stats.qct_slowdowns(), 99),
                avg_bg_fct_slowdown=mean(stats.fct_slowdowns(query_traffic=False)),
                p99_small_bg_fct_slowdown=percentile(
                    stats.fct_slowdowns(query_traffic=False, small_only=True), 99
                ),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
