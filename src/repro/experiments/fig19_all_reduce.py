"""Figure 19: performance with all-reduce (double binary tree) background traffic.

Identical harness to Figure 18 but the background is one all-reduce round
generated with the double binary tree algorithm (every tree edge carries equal
sized reduce and broadcast flows).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments import fig18_all_to_all
from repro.experiments.common import ExperimentResult


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        flow_sizes_kb: Optional[Iterable[int]] = None) -> ExperimentResult:
    """QCT / FCT slowdowns with all-reduce background traffic."""
    result = fig18_all_to_all.run(
        scale=scale, seed=seed, schemes=schemes, flow_sizes_kb=flow_sizes_kb,
        background_kind="all_reduce",
    )
    result.experiment = "fig19_all_reduce"
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
