"""Figure 15: mitigation of the buffer-choking problem (strict priorities).

Query flows ride the high-priority queue (alpha = 8), background flows the
low-priority queue (alpha = 1), both congesting the *same* egress port under
strict-priority scheduling.  Ideally the low-priority background should not
affect the high-priority queries at all; with non-preemptive schemes it does,
because the slowly draining low-priority queue keeps the buffer occupied.
The harness reports QCT with and without the background for every scheme.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments.common import (
    ExperimentResult,
    ScenarioConfig,
    default_schemes,
    get_scale,
)
from repro.scenario import run_scenario, single_switch_scenario


def _low_priority_background(config: ScenarioConfig,
                             client: int) -> List[Dict[str, object]]:
    """Long-lived low-priority flows converging on the query client's port."""
    senders = [h for h in range(config.num_hosts) if h != client][:2]
    size = max(200_000, int(config.link_rate_bps / 8 * config.duration))
    flows: List[Dict[str, object]] = []
    for sender in senders:
        for _ in range(7):
            flows.append(dict(src=sender, dst=client, size_bytes=size,
                              start_time=0.0, priority=1))
    return flows


def run(scale: str = "small", seed: int = 0,
        schemes: Optional[List[str]] = None,
        query_size_fractions: Optional[Iterable[float]] = None) -> ExperimentResult:
    """QCT of high-priority queries with vs without low-priority background."""
    config = get_scale(scale)
    schemes = schemes or default_schemes()
    if query_size_fractions is None:
        query_size_fractions = (1.7,) if scale == "bench" else (1.5, 1.9, 2.3)
    buffer_bytes = int(config.buffer_kb_per_port_per_gbps * 1024
                       * config.num_hosts * config.link_rate_bps / 1e9)

    result = ExperimentResult(
        "fig15_buffer_choking",
        notes="strict priority; HP queries (alpha=8) vs LP long-lived background (alpha=1)",
    )
    client = 0
    for fraction in query_size_fractions:
        query_size = max(2000, int(fraction * buffer_bytes))
        for scheme in schemes:
            common_kwargs = dict(
                scheme=scheme, config=config, query_size_bytes=query_size,
                seed=seed, include_background=False,
                queues_per_port=2, scheduler="strict",
                query_priority=0, alpha_overrides={0: 8.0, 1: 1.0},
                background_transport="cubic",
                name="fig15_buffer_choking",
            )
            with_bg = run_scenario(single_switch_scenario(
                extra_flows=_low_priority_background(config, client),
                **common_kwargs,
            ))
            without_bg = run_scenario(single_switch_scenario(**common_kwargs))
            qct_with = with_bg.flow_stats.average_qct()
            qct_without = without_bg.flow_stats.average_qct()
            result.add_row(
                query_size_frac=round(fraction, 2),
                scheme=scheme,
                qct_with_bg_ms=qct_with * 1e3,
                qct_without_bg_ms=qct_without * 1e3,
                p99_qct_with_bg_ms=with_bg.flow_stats.p99_qct() * 1e3,
                p99_qct_without_bg_ms=without_bg.flow_stats.p99_qct() * 1e3,
                degradation=qct_with / max(1e-9, qct_without),
                expelled=with_bg.switch_stats.expelled_packets,
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run())


if __name__ == "__main__":  # pragma: no cover
    main()
