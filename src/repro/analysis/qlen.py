"""Queue-depth timelines across many stored runs.

Reuses :mod:`repro.telemetry.plot`'s series selection and CSV writer, but
emits one commented block per run (``# label=... experiment=...``) so a
whole campaign's queue dynamics land in a single file.  Blocks are ordered
by document label, making repeated invocations over the same store
byte-identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TextIO

from repro.analysis.sources import RunDocument
from repro.telemetry.plot import select_series, write_csv

#: Default series selection: switch occupancy plus any per-port backlogs.
DEFAULT_PATTERNS = ("switch.*occupancy_bytes", "switch.*backlog_bytes")


def documents_with_telemetry(documents: Sequence[RunDocument]
                             ) -> List[RunDocument]:
    return sorted(
        (doc for doc in documents if doc.ok and doc.telemetry is not None),
        key=lambda doc: doc.label)


def write_qlen_csv(documents: Sequence[RunDocument], stream: TextIO,
                   patterns: Optional[Sequence[str]] = None) -> int:
    """Write per-run queue-depth CSV blocks; returns the block count.

    With explicit ``patterns``, a run matching none of them is an error
    (same contract as ``telemetry plot``); with the default selection,
    runs without queue-depth series are skipped silently -- a mixed store
    should not kill the export.
    """
    explicit = patterns is not None
    patterns = list(patterns) if explicit else list(DEFAULT_PATTERNS)
    blocks = 0
    for doc in documents_with_telemetry(documents):
        try:
            select_series(doc.telemetry, patterns)
        except ValueError:
            if explicit:
                raise
            continue
        stream.write(f"# label={doc.label} experiment={doc.experiment} "
                     f"seed={doc.seed}\n")
        write_csv(doc.telemetry, stream, patterns)
        blocks += 1
    if blocks == 0:
        raise ValueError(
            "no telemetry-carrying documents match the series selection; "
            "were the runs executed with telemetry enabled "
            "(spec section 'telemetry.enabled')?")
    return blocks
