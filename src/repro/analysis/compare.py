"""Per-scheme / per-lb comparison tables over normalized documents.

A thin adapter: :class:`RunDocument` rows are tagged with the same identity
columns the campaign aggregation layer uses (``_experiment`` / ``_scale``
/ ``_seed`` / ``_hash``), then :func:`repro.campaign.aggregate.scheme_summary`
and :func:`~repro.campaign.aggregate.scheme_deltas` do the arithmetic --
so ``python -m repro.analysis compare`` agrees with
``python -m repro.campaign report`` wherever both apply, while also
accepting loose result documents a store never held.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.sources import RunDocument
from repro.campaign.aggregate import (
    numeric_columns,
    scheme_deltas,
    scheme_summary,
)
from repro.experiments.common import ExperimentResult


def tagged_document_rows(documents: Sequence[RunDocument]
                         ) -> List[Dict[str, object]]:
    """Every row of every ok document, tagged with its run identity.

    Documents whose rows lack a grouping column still contribute: the
    ``lb`` fallback (missing column == the ecmp baseline) is applied by
    the caller via :meth:`RunDocument.group_value` semantics at selection
    time, not here -- the rows stay faithful to what was stored.
    """
    rows: List[Dict[str, object]] = []
    for doc in documents:
        if not doc.ok:
            continue
        for row in doc.rows:
            tagged = dict(row)
            tagged["_experiment"] = doc.experiment
            tagged["_scale"] = doc.scale
            tagged["_seed"] = doc.seed
            tagged["_hash"] = doc.config_hash or doc.label
            rows.append(tagged)
    return rows


def comparison_tables(
    documents: Sequence[RunDocument],
    metric: Optional[str] = None,
    baseline: Optional[str] = None,
    group_by: str = "scheme",
) -> Tuple[List[ExperimentResult], List[str]]:
    """Summary + delta tables of one metric, grouped by scheme or lb.

    Returns ``(tables, warnings)``.  ``lb`` grouping backfills the ecmp
    baseline into rows without an ``lb`` column (summary rows only tag
    non-default policies).  The metric defaults to the first numeric
    column, mirroring ``campaign report``.
    """
    rows = tagged_document_rows(documents)
    if group_by == "lb":
        for row in rows:
            row.setdefault("lb", "ecmp")
    grouped = [row for row in rows if group_by in row]
    warnings: List[str] = []
    if not grouped:
        warnings.append(f"no rows with a {group_by!r} column; nothing to compare")
        return [], warnings
    metrics = numeric_columns(grouped)
    if metric is None:
        if not metrics:
            warnings.append("no numeric metric columns; nothing to compare")
            return [], warnings
        metric = metrics[0]
    elif metric not in metrics:
        warnings.append(
            f"metric {metric!r} not in columns "
            f"({', '.join(metrics) or 'none numeric'}); nothing to compare")
        return [], warnings
    present = sorted({str(row.get(group_by)) for row in grouped})
    if baseline is not None and baseline not in present:
        warnings.append(
            f"baseline {baseline!r} not among {group_by}s "
            f"({', '.join(present)}); delta table skipped")
        return [scheme_summary(grouped, metric, group_key=group_by)], warnings
    tables = [
        scheme_summary(grouped, metric, group_key=group_by),
        scheme_deltas(grouped, metric, baseline=baseline, group_key=group_by),
    ]
    return tables, warnings
