"""Document loading for the analysis toolkit.

``python -m repro.analysis`` reads the same stored shapes as
``python -m repro.telemetry plot`` (a campaign :class:`ResultStore`
directory, a single store-entry JSON, a ``ScenarioResult.to_dict()``
document, an ``ExperimentResult`` document, or a bare telemetry section)
and normalizes each into a :class:`RunDocument`: identity tags, summary
rows, the per-flow trace with its ideal-FCT context, and the telemetry
section.  Everything downstream (CDFs, timelines, comparison tables) works
on ``RunDocument`` lists and never re-simulates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class FlowSet:
    """A run's per-flow records plus the ideal-FCT context to score them."""

    bottleneck_bps: float
    base_rtt: float
    records: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_payload(cls, data: Optional[Mapping]) -> Optional["FlowSet"]:
        if not isinstance(data, Mapping):
            return None
        try:
            bottleneck = float(data["bottleneck_bps"])
            base_rtt = float(data["base_rtt"])
        except (KeyError, TypeError, ValueError):
            return None
        if bottleneck <= 0:
            return None
        records = data.get("records", [])
        if not isinstance(records, list):
            return None
        return cls(bottleneck_bps=bottleneck, base_rtt=base_rtt,
                   records=[dict(r) for r in records])


@dataclass
class RunDocument:
    """One stored run, normalized for analysis."""

    label: str
    experiment: str = ""
    scale: str = "-"
    seed: int = 0
    status: str = "ok"
    config_hash: str = ""
    rows: List[Dict[str, object]] = field(default_factory=list)
    flows: Optional[FlowSet] = None
    telemetry: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def group_value(self, group_by: str) -> str:
        """The run's value of a grouping column, read from its rows.

        ``lb`` falls back to ``"ecmp"``: summary rows only carry an ``lb``
        column for non-default policies, so rows without one *are* the
        static-hashing baseline, not unknown.
        """
        for row in self.rows:
            if group_by in row:
                return str(row[group_by])
        if group_by == "lb":
            return "ecmp"
        return "-"

    def summary(self) -> Dict[str, object]:
        """One flat row describing this run (the ``summary`` subcommand)."""
        row: Dict[str, object] = {
            "label": self.label,
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "status": self.status,
            "rows": len(self.rows),
            "flows": len(self.flows.records) if self.flows else 0,
            "telemetry_ticks": (self.telemetry or {}).get("ticks", 0),
        }
        return row


def _document_from_store_entry(entry) -> RunDocument:
    """Normalize a campaign :class:`StoreEntry` (ok or failed)."""
    rows: List[Dict[str, object]] = []
    flows: Optional[FlowSet] = None
    telemetry: Optional[Dict[str, object]] = None
    if entry.result is not None:
        rows = [dict(row) for row in entry.result.rows]
        artifacts = entry.result.artifacts or {}
        flows = FlowSet.from_payload(artifacts.get("flows"))
        section = artifacts.get("telemetry")
        telemetry = dict(section) if isinstance(section, Mapping) else None
    return RunDocument(
        label=entry.config_hash,
        experiment=entry.spec.experiment,
        scale=entry.spec.scale,
        seed=entry.spec.seed,
        status=entry.status,
        config_hash=entry.config_hash,
        rows=rows,
        flows=flows,
        telemetry=telemetry,
    )


def _document_from_scenario_doc(label: str, doc: Mapping) -> RunDocument:
    """Normalize a ``ScenarioResult.to_dict()`` document."""
    spec = doc.get("spec", {})
    flows: Optional[FlowSet] = None
    fct = doc.get("fct")
    if isinstance(fct, Mapping) and isinstance(doc.get("flows"), list):
        flows = FlowSet.from_payload({**fct, "records": doc["flows"]})
    telemetry = doc.get("telemetry")
    return RunDocument(
        label=label,
        experiment=f"scenario:{spec.get('name', '-')}",
        seed=int(spec.get("seed", 0)),
        rows=[dict(doc["summary"])] if isinstance(doc.get("summary"),
                                                  Mapping) else [],
        flows=flows,
        telemetry=dict(telemetry) if isinstance(telemetry, Mapping) else None,
    )


def _document_from_experiment_doc(label: str, doc: Mapping) -> RunDocument:
    """Normalize an ``ExperimentResult.to_dict()`` document."""
    artifacts = doc.get("artifacts", {})
    if not isinstance(artifacts, Mapping):
        artifacts = {}
    telemetry = artifacts.get("telemetry")
    return RunDocument(
        label=label,
        experiment=str(doc.get("experiment", "-")),
        rows=[dict(row) for row in doc.get("rows", [])],
        flows=FlowSet.from_payload(artifacts.get("flows")),
        telemetry=dict(telemetry) if isinstance(telemetry, Mapping) else None,
    )


def document_from_json(label: str, doc: Mapping) -> RunDocument:
    """Classify and normalize one loaded JSON document.

    Recognizes, in order: a ResultStore entry (``spec`` + ``status``), a
    ScenarioResult document (``spec`` + ``summary``), an ExperimentResult
    document (``experiment`` + ``rows``), and a bare telemetry section
    (``time`` + ``series``).
    """
    if "spec" in doc and "status" in doc:
        from repro.campaign.store import StoreEntry

        return _document_from_store_entry(StoreEntry.from_dict(dict(doc)))
    if "spec" in doc and "summary" in doc:
        return _document_from_scenario_doc(label, doc)
    if "experiment" in doc and "rows" in doc:
        return _document_from_experiment_doc(label, doc)
    if "time" in doc and "series" in doc:
        return RunDocument(label=label, experiment="telemetry",
                           telemetry=dict(doc))
    raise ValueError(
        f"{label}: unrecognized document shape; expected a campaign store "
        "entry, a scenario result, an experiment result, or a bare "
        "telemetry section")


def load_documents(paths: Sequence[str | Path]) -> List[RunDocument]:
    """Load every path into :class:`RunDocument`\\ s, in a stable order.

    A directory containing ``runs/`` is read as a campaign
    :class:`ResultStore` (hash order); any other directory contributes its
    ``*.json`` files (name order); a file is parsed as a single document.
    """
    documents: List[RunDocument] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir() and (path / "runs").is_dir():
            from repro.campaign.store import ResultStore

            for entry in ResultStore(path).entries():
                documents.append(_document_from_store_entry(entry))
        elif path.is_dir():
            files = sorted(path.glob("*.json"))
            if not files:
                raise ValueError(f"{path}: no *.json documents found")
            for file in files:
                documents.append(document_from_json(
                    file.stem, json.loads(file.read_text())))
        elif path.is_file():
            documents.append(document_from_json(
                path.stem, json.loads(path.read_text())))
        else:
            raise ValueError(f"{path}: no such file or directory")
    return documents
