"""FCT and slowdown distributions from stored per-flow traces.

The ConWeave-artifact shape: every stored run carries its per-flow records
plus the ideal-FCT context (bottleneck rate, base RTT), so slowdown CDFs
are recomputed from the store alone.  Slowdown is
``actual_fct / ideal_fct`` with :func:`repro.metrics.flows.ideal_fct` as
the denominator -- one base RTT plus pure serialization at the bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.sources import RunDocument
from repro.experiments.common import ExperimentResult
from repro.metrics.flows import SMALL_FLOW_BYTES, ideal_fct, slowdown
from repro.metrics.percentiles import cdf_points, summarize

#: Per-flow metrics the fct subcommand can plot / summarize.
FLOW_METRICS = ("slowdown", "fct_ms")


def flow_metric_values(
    documents: Sequence[RunDocument],
    group_by: str = "scheme",
    metric: str = "slowdown",
    small_only: bool = False,
) -> Dict[str, List[float]]:
    """Per-group samples of one per-flow metric across all documents.

    Only completed flows (a ``finish_time``) contribute.  Groups are
    ordered by name so downstream output is byte-stable regardless of
    store enumeration order.
    """
    if metric not in FLOW_METRICS:
        raise ValueError(
            f"unknown flow metric {metric!r}; expected one of "
            + ", ".join(FLOW_METRICS))
    groups: Dict[str, List[float]] = {}
    for doc in documents:
        if not doc.ok or doc.flows is None or not doc.flows.records:
            continue
        group = doc.group_value(group_by)
        values = groups.setdefault(group, [])
        for record in doc.flows.records:
            finish = record.get("finish_time")
            start = record.get("start_time")
            size = record.get("size_bytes")
            if finish is None or start is None or not size:
                continue
            if small_only and int(size) > SMALL_FLOW_BYTES:
                continue
            actual = float(finish) - float(start)
            if metric == "fct_ms":
                values.append(actual * 1e3)
            else:
                ideal = ideal_fct(int(size), doc.flows.bottleneck_bps,
                                  doc.flows.base_rtt)
                values.append(slowdown(actual, ideal))
    return {group: groups[group] for group in sorted(groups)}


def fct_cdf_rows(
    documents: Sequence[RunDocument],
    group_by: str = "scheme",
    metric: str = "slowdown",
    points: int = 50,
    small_only: bool = False,
) -> List[Dict[str, object]]:
    """Flat CDF rows (``group, value, cdf``), one block per group.

    Feed straight into CSV for fig-style slowdown-CDF plots; values come
    from :func:`repro.metrics.percentiles.cdf_points`, so each group emits
    at most ``points`` rows including its exact min and max.
    """
    rows: List[Dict[str, object]] = []
    for group, values in flow_metric_values(
            documents, group_by=group_by, metric=metric,
            small_only=small_only).items():
        for value, probability in cdf_points(values, points):
            rows.append({"group": group, metric: round(value, 6),
                         "cdf": round(probability, 6)})
    return rows


def fct_summary(
    documents: Sequence[RunDocument],
    group_by: str = "scheme",
    metric: str = "slowdown",
    small_only: bool = False,
) -> ExperimentResult:
    """Percentile summary of a per-flow metric, one row per group."""
    scope = "small flows" if small_only else "all flows"
    result = ExperimentResult(
        f"fct[{metric}]",
        notes=f"grouped by {group_by}; {scope}; per-flow samples")
    for group, values in flow_metric_values(
            documents, group_by=group_by, metric=metric,
            small_only=small_only).items():
        stats = summarize(values)
        result.add_row(
            **{group_by: group},
            flows=stats["count"],
            mean=round(stats["mean"], 6),
            p50=round(stats["p50"], 6),
            p95=round(stats["p95"], 6),
            p99=round(stats["p99"], 6),
            max=round(stats["max"], 6),
        )
    return result


def documents_with_flows(documents: Sequence[RunDocument]
                         ) -> List[RunDocument]:
    return [doc for doc in documents
            if doc.ok and doc.flows is not None and doc.flows.records]


def require_flows(documents: Sequence[RunDocument]) -> List[RunDocument]:
    """The flow-carrying subset, or a loud error naming what's missing."""
    with_flows = documents_with_flows(documents)
    if not with_flows:
        raise ValueError(
            "no documents carry per-flow records with ideal-FCT context; "
            "scenario runs persist them automatically (document key 'fct' "
            "+ 'flows', store entries under artifacts.flows)")
    return with_flows
