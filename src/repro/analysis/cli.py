"""``python -m repro.analysis``: post-processing over stored run documents.

Subcommands (all read stores / result JSONs, never re-simulate):

* ``summary``  -- one row per loaded document (identity, status, payload);
* ``fct``      -- FCT / slowdown CDF rows per scheme or lb (the paper's
  slowdown-CDF figures), or a percentile table with ``--format table``;
* ``qlen``     -- queue-depth timelines, one commented CSV block per run;
* ``compare``  -- per-scheme / per-lb summary + baseline-delta tables.

Inputs are any mix of: a campaign store directory, store-entry JSONs,
``ScenarioResult`` documents, ``ExperimentResult`` documents, and bare
telemetry sections.  All output is deterministic: the same store produces
byte-identical bytes on every invocation.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

from repro.analysis import compare as compare_mod
from repro.analysis import fct as fct_mod
from repro.analysis import qlen as qlen_mod
from repro.analysis.sources import RunDocument, load_documents
from repro.experiments.common import ExperimentResult

FORMATS = ("csv", "table", "json")


def _row_columns(rows: Sequence[Dict[str, object]]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _write_rows_csv(rows: Sequence[Dict[str, object]], stream: TextIO) -> None:
    columns = _row_columns(rows)
    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow([row.get(column, "") for column in columns])


def _rows_as_result(name: str, rows: Sequence[Dict[str, object]]
                    ) -> ExperimentResult:
    result = ExperimentResult(name)
    for row in rows:
        result.add_row(**row)
    return result


def _emit_rows(name: str, rows: Sequence[Dict[str, object]],
               output_format: str, stream: TextIO) -> None:
    if output_format == "csv":
        _write_rows_csv(rows, stream)
    elif output_format == "json":
        stream.write(json.dumps(list(rows), sort_keys=True, indent=2) + "\n")
    else:
        stream.write(_rows_as_result(name, rows).format_table() + "\n")


def _emit_tables(tables: Sequence[ExperimentResult], output_format: str,
                 stream: TextIO) -> None:
    if output_format == "json":
        stream.write(json.dumps([table.to_dict() for table in tables],
                                sort_keys=True, indent=2) + "\n")
        return
    for index, table in enumerate(tables):
        if output_format == "csv":
            stream.write(f"# {table.experiment}"
                         + (f" ({table.notes})" if table.notes else "")
                         + "\n")
            _write_rows_csv(table.rows, stream)
        else:
            if index:
                stream.write("\n")
            stream.write(f"== {table.experiment} =="
                         + (f"  {table.notes}" if table.notes else "")
                         + "\n")
            stream.write(table.format_table() + "\n")


def _cmd_summary(documents: List[RunDocument], args,
                 stream: TextIO) -> int:
    rows = [doc.summary() for doc in documents]
    _emit_rows("analysis:summary", rows, args.format, stream)
    return 0


def _cmd_fct(documents: List[RunDocument], args, stream: TextIO) -> int:
    with_flows = fct_mod.require_flows(documents)
    if args.format == "table":
        table = fct_mod.fct_summary(
            with_flows, group_by=args.group_by, metric=args.metric,
            small_only=args.small_only)
        _emit_tables([table], args.format, stream)
        return 0
    rows = fct_mod.fct_cdf_rows(
        with_flows, group_by=args.group_by, metric=args.metric,
        points=args.points, small_only=args.small_only)
    _emit_rows("analysis:fct", rows, args.format, stream)
    return 0


def _cmd_qlen(documents: List[RunDocument], args, stream: TextIO) -> int:
    qlen_mod.write_qlen_csv(documents, stream, args.series)
    return 0


def _cmd_compare(documents: List[RunDocument], args, stream: TextIO) -> int:
    tables, warnings = compare_mod.comparison_tables(
        documents, metric=args.metric, baseline=args.baseline,
        group_by=args.group_by)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if not tables:
        return 1
    _emit_tables(tables, args.format, stream)
    return 0


def _add_common(parser: argparse.ArgumentParser,
                default_format: str = "csv") -> None:
    parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="campaign store directory, store-entry / scenario-result / "
             "experiment-result JSON, or a directory of such JSONs")
    parser.add_argument("--format", choices=FORMATS, default=default_format,
                        help=f"output format (default: {default_format})")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: stdout)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Analysis over stored run documents: FCT/slowdown CDFs, "
                    "queue-depth timelines, per-scheme comparison tables.")
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary",
                             help="one row per loaded document")
    _add_common(summary, default_format="table")

    fct = sub.add_parser(
        "fct", help="FCT / slowdown CDF per scheme or lb "
                    "(--format table for a percentile summary)")
    _add_common(fct)
    fct.add_argument("--group-by", default="scheme",
                     help="grouping column, e.g. scheme or lb "
                          "(default: scheme)")
    fct.add_argument("--metric", choices=fct_mod.FLOW_METRICS,
                     default="slowdown",
                     help="per-flow metric (default: slowdown)")
    fct.add_argument("--points", type=int, default=50,
                     help="max CDF points per group (default: 50)")
    fct.add_argument("--small-only", action="store_true",
                     help="restrict to small flows "
                          "(<= 100 KiB, the paper's breakdown)")

    qlen = sub.add_parser(
        "qlen", help="queue-depth timelines, one CSV block per run")
    _add_common(qlen)
    qlen.add_argument("--series", nargs="*", default=None, metavar="GLOB",
                      help="telemetry series globs (default: switch "
                           "occupancy + per-port backlogs)")

    cmp_parser = sub.add_parser(
        "compare", help="per-scheme / per-lb summary + delta tables")
    _add_common(cmp_parser, default_format="table")
    cmp_parser.add_argument("--group-by", default="scheme",
                            help="grouping column (default: scheme)")
    cmp_parser.add_argument("--metric", default=None,
                            help="metric column "
                                 "(default: first numeric column)")
    cmp_parser.add_argument("--baseline", default=None,
                            help="baseline group for the delta table "
                                 "(default: first group seen)")
    return parser


COMMANDS = {
    "summary": _cmd_summary,
    "fct": _cmd_fct,
    "qlen": _cmd_qlen,
    "compare": _cmd_compare,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        documents = load_documents(args.paths)
        if not documents:
            raise ValueError("no documents loaded")
        if args.out is None:
            return COMMANDS[args.command](documents, args, sys.stdout)
        with open(args.out, "w") as stream:
            status = COMMANDS[args.command](documents, args, stream)
        print(f"wrote {args.out}", file=sys.stderr)
        return status
    except BrokenPipeError:
        # stdout piped into a pager/head that exited; not an error.
        sys.stderr.close()
        return 0
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
