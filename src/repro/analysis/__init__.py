"""Post-processing analysis over stored run documents (no re-simulation)."""

from repro.analysis.compare import comparison_tables, tagged_document_rows
from repro.analysis.fct import (
    FLOW_METRICS,
    fct_cdf_rows,
    fct_summary,
    flow_metric_values,
)
from repro.analysis.qlen import write_qlen_csv
from repro.analysis.sources import (
    FlowSet,
    RunDocument,
    document_from_json,
    load_documents,
)

__all__ = [
    "FLOW_METRICS",
    "FlowSet",
    "RunDocument",
    "comparison_tables",
    "document_from_json",
    "fct_cdf_rows",
    "fct_summary",
    "flow_metric_values",
    "load_documents",
    "tagged_document_rows",
    "write_qlen_csv",
]
