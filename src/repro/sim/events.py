"""Event queue primitives for the discrete-event kernel.

The kernel is deliberately small: events are ``(time, sequence, callback)``
tuples kept in a binary heap.  The sequence number breaks ties so that events
scheduled at the same timestamp execute in FIFO order, which keeps simulations
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Attributes:
        time: absolute simulation time (seconds) at which the event fires.
        seq: monotonically increasing tie-breaker.
        callback: zero-argument callable invoked when the event fires.
        cancelled: events are cancelled lazily; the queue skips them on pop.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its Event."""
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
