"""Event queue primitives for the discrete-event kernel.

The kernel is deliberately small: the queue is a binary heap of
``(time, priority, seq, event)`` tuples.  ``priority`` is a small integer
band that orders events scheduled at the same timestamp *by content* rather
than by scheduling history: ordinary events carry priority 0 and keep FIFO
order among themselves (the sequence number breaks the remaining ties), while
link-arrival events carry the link's stable fabric-wide priority (see
``Network.assign_event_priorities``).  Content-keyed tie-breaking is what
makes the sharded engine byte-identical to the single-process oracle: the
relative order of two same-instant arrivals no longer depends on the global
scheduling counter (unknowable across process boundaries), only on which
wire each packet came in on.  Storing plain tuples (rather than comparable
event objects) keeps every heap comparison in C, which matters because heap
maintenance dominates the kernel's cost at scale.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled event.

    Attributes:
        time: absolute simulation time (seconds) at which the event fires.
        seq: monotonically increasing tie-breaker.
        callback: zero-argument callable invoked when the event fires.
        cancelled: events are cancelled lazily; the queue skips them on pop.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its Event.

        Raises:
            ValueError: if ``time`` is NaN.  NaN compares false against
                everything, so letting one in would silently corrupt the
                heap ordering for every later event.
        """
        if time != time:  # fast NaN check without math.isnan
            raise ValueError("cannot schedule an event at time NaN")
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, (time, 0, event.seq, event))
        return event

    def push_callback(self, time: float, callback: Callable[[], Any],
                      priority: int = 0) -> None:
        """Schedule a *non-cancellable* callback at absolute ``time``.

        The hot scheduling path: no :class:`Event` wrapper is allocated, the
        bare callable sits in the heap entry.  Use :meth:`push` whenever the
        caller may need to cancel.  ``priority`` is the same-timestamp band
        (0 for ordinary events; links pass their fabric-wide priority).
        """
        if time != time:  # fast NaN check without math.isnan
            raise ValueError("cannot schedule an event at time NaN")
        heapq.heappush(self._heap,
                       (time, priority, next(self._counter), callback))

    def reinsert(self, entry: Tuple[float, int, int, Any]) -> None:
        """Put a popped heap entry back, keeping its original FIFO position."""
        heapq.heappush(self._heap, entry)

    def pop_entry(self) -> Optional[Tuple[float, int, int, Any]]:
        """Pop the earliest live entry ``(time, priority, seq, event_or_cb)``.

        Cancelled events are skipped.  The last element is either an
        :class:`Event` (whose ``callback`` must be invoked) or a bare
        callable pushed by :meth:`push_callback`.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            obj = entry[3]
            if obj.__class__ is Event and obj.cancelled:
                continue
            return entry
        return None

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty.

        Bare callbacks scheduled with :meth:`push_callback` are returned
        wrapped in a fresh :class:`Event` so the public API stays uniform.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        obj = entry[3]
        if obj.__class__ is Event:
            return obj
        return Event(entry[0], entry[2], obj)

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, if any."""
        heap = self._heap
        while heap:
            obj = heap[0][3]
            if obj.__class__ is Event and obj.cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
