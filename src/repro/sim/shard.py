"""Conservative parallel execution: one scenario, N shard processes.

The executor splits a scenario's fabric into shards at link boundaries
(:mod:`repro.netsim.partition`), runs each shard's ``Simulator`` +
``SimKernel`` in its own process, and synchronizes them in bounded rounds
with lookahead equal to the minimum cut-link propagation delay -- the
FireSim-style token rule: a packet entering a cut link at time ``t`` cannot
influence the far side before ``t + delay``, so every shard may freely
execute the window up to (but excluding) ``t_next + lookahead`` before the
next handoff exchange.  ``t_next`` is the global minimum over every shard's
earliest pending event and every handoff still in flight between processes.

Determinism is the design constraint, not a best-effort property: the merged
:class:`~repro.scenario.runner.ScenarioResult` document must be
**byte-identical** to the single-process oracle (``python -m repro.perf
differential --shards N`` is the gate).  Three rules make that hold:

* **Full build, masked execution.**  Every worker builds the *identical*
  complete topology (same construction order, salts, routing tables and
  static fabric failures/degradations), then swaps ``transmit`` on the cut
  links it owns the sending side of for a recorder -- the
  ``Link.set_failed`` method-swap idiom.  Non-owned regions carry no
  traffic (their links get a loud leak guard), so every owned component
  sees exactly the oracle's event sequence.
* **Canonical handoff order.**  The kernel orders same-timestamp events by
  a *content* key, not by scheduling history: every fabric link carries a
  stable priority derived from the sorted link list
  (``Network.assign_event_priorities``), and its arrival events occupy
  that band in the heap's ``(time, priority, seq)`` ordering.  Because
  every worker builds the identical full topology, it derives identical
  priorities -- so a cross-shard delivery event pushed with its cut link's
  priority lands at exactly the heap position the oracle's ``_arrive`` for
  that link occupies, no matter how differently the two processes arrived
  there.  Deliveries are grouped exactly like the oracle's per-link
  arrival batches (one event per distinct arrival instant per link), so
  event counts match too.
* **Event-count parity.**  The sending shard executes one maintenance
  event per handoff batch (releasing the in-flight window, mirroring the
  oracle's ``Link._arrive``), the receiving shard one delivery event per
  batch.  The merged count subtracts the maintenance events, so
  ``events_executed`` matches the oracle exactly.

Handoffs cross process boundaries over stdlib ``multiprocessing`` pipes as
JSON frames (``send_bytes``/``recv_bytes``) -- the same pickle-free framing
discipline as :mod:`repro.farm.protocol`.  Workers bucket their outbound
records by destination shard and the parent routes the encoded buckets
opaquely, so handoff volume never transits Python object serialization.

A worker that dies mid-round is detected by the parent's poll loop and the
run fails loudly with the shard's traceback instead of hanging.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import resource
import time as _time
import traceback
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.registry import make_buffer_manager
from repro.metrics.flows import FlowRecord
from repro.netsim.network import host_node_name
from repro.netsim.partition import Partition, partition_topology
from repro.netsim.transport.base import ReceiverState
from repro.netsim.transport.factory import make_transport
from repro.scenario.spec import ScenarioSpec
from repro.scenario.topologies import make_topology
from repro.scenario.transports import make_transport_config
from repro.scenario.workloads import WorkloadContext, make_workload
from repro.sim.rng import SeededRNG
from repro.switchsim.packet import Packet
from repro.workloads.spec import FlowSpec

#: Keys of ``SwitchStats.summary()`` in emission order; the merged result
#: rebuilds each owned switch's summary in exactly this order so the
#: serialized document is byte-identical to the oracle's.
_SUMMARY_KEYS = (
    "arrived_packets",
    "admitted_packets",
    "transmitted_packets",
    "dropped_packets",
    "expelled_packets",
    "evicted_packets",
    "ecn_marked_packets",
    "loss_rate",
    "max_occupancy_bytes",
)

#: Per-shard diagnostic series prefix; stripped from the merged telemetry
#: document (diagnostics must never perturb canonical output).
_SHARD_SERIES_PREFIX = "shard."


def _send(conn, message: Dict[str, object]) -> None:
    """One JSON frame over a multiprocessing pipe (farm.protocol style)."""
    conn.send_bytes(json.dumps(message).encode("utf-8"))


def _recv(conn) -> Dict[str, object]:
    return json.loads(conn.recv_bytes().decode("utf-8"))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _CutRecorder:
    """``Link.transmit`` replacement for an owned->remote cut link.

    Mirrors the healthy transmit path exactly -- counters, the in-flight
    window and the one-event-per-distinct-arrival-instant batching -- but
    schedules a local *maintenance* drain instead of a delivery, and logs
    an encoded handoff record for the round exchange.  The drain keeps the
    link's ``_in_flight`` depth (a telemetry series) and the pooled
    kernel's packet lifecycle identical to the oracle: leaving the shard
    is the packet's local death site.
    """

    __slots__ = ("link", "sim", "link_id", "worker", "records")

    def __init__(self, link, link_id: int, worker: "_ShardWorker") -> None:
        self.link = link
        self.sim = link.sim
        self.link_id = link_id
        self.worker = worker
        self.records: List[List[object]] = []

    def transmit(self, packet: Packet) -> None:
        link = self.link
        link.packets_carried += 1
        link.bytes_carried += packet.size_bytes
        link._in_flight.append(packet)
        time = self.sim.now + link.delay
        if time == link._tail_time:
            link._batch_counts[-1] += 1
        else:
            link._tail_time = time
            link._batch_counts.append(1)
            queue = self.sim._queue
            heappush(queue._heap,
                     (time, link.event_priority, next(queue._counter),
                      self._drain))
        # Snapshot every field the far side needs to rebuild the packet;
        # metadata is copied because a pooled packet may be recycled (and
        # its metadata cleared) by the drain before the round is encoded.
        metadata = dict(packet.metadata) if packet.metadata else None
        self.records.append([
            time, packet.size_bytes, packet.flow_id, packet.src, packet.dst,
            packet.seq, packet.payload_bytes, packet.is_ack, packet.ack_seq,
            packet.ecn_capable, packet.ecn_marked, packet.ecn_echo,
            packet.priority, packet.created_at, metadata,
        ])

    def _drain(self) -> None:
        link = self.link
        count = link._batch_counts.popleft()
        in_flight = link._in_flight
        pool = self.worker.pool
        self.worker.maintenance += 1
        if pool is None:
            for _ in range(count):
                in_flight.popleft()
        else:
            for _ in range(count):
                pool.release(in_flight.popleft())


def _leak_guard(name: str) -> Callable[[Packet], None]:
    def transmit(packet: Packet) -> None:
        raise RuntimeError(
            f"shard isolation violated: a packet reached non-owned link "
            f"{name} (flow {packet.flow_id}).  This is a partitioning bug "
            "-- traffic must only flow through owned nodes and recorded "
            "cut links.")
    return transmit


class _ShardWorker:
    """One shard process: full topology, masked cut links, round loop."""

    def __init__(self, conn, payload: Dict[str, object]) -> None:
        self.conn = conn
        self.payload = payload
        self.shard = int(payload["shard"])
        self.assignment: Dict[str, int] = {
            str(k): int(v) for k, v in payload["assignment"].items()}
        self.cut_links: List[Tuple[str, str]] = [
            (str(a), str(b)) for a, b in payload["cut_links"]]
        self.maintenance = 0
        self.handoffs_in = 0
        self.handoffs_out = 0
        self.rounds = 0
        self.busy_s = 0.0
        self.blocked_s = 0.0
        self.pool = None

    # -- setup ---------------------------------------------------------
    def _build(self) -> None:
        from repro.scenario.runner import ScenarioRunner
        from repro.sim.engine import Simulator
        from repro.sim.kernel import make_kernel

        spec = ScenarioSpec.from_dict(self.payload["spec"])
        self.spec = spec
        self.horizon = spec.duration * spec.run_slack
        manager_factory = lambda: make_buffer_manager(  # noqa: E731
            spec.scheme.name, **spec.scheme.kwargs)
        params = spec.resolved_topology_params()
        if spec.engine.kernel != "heap":
            params["simulator"] = Simulator(
                kernel=make_kernel(spec.engine.kernel))
        topology = make_topology(spec.topology.kind, manager_factory,
                                 **params)
        runner = ScenarioRunner()
        runner._apply_alpha_overrides(spec, topology)
        runner._apply_load_balancer(spec, topology, "network")
        self.topology = topology
        self.network = topology.network
        self.sim = topology.sim
        self.pool = self.sim.kernel.packet_pool
        self.make_packet = (Packet if self.pool is None
                            else self.pool.acquire)

        self.bus = None
        if spec.telemetry.enabled:
            from repro.telemetry.bus import TelemetryBus

            bus = TelemetryBus(spec.telemetry, self.sim,
                               horizon=self.horizon)
            bus.attach(topology)
            # Diagnostic series; read at the same ticks as every other
            # probe so the parent can reconstruct the oracle's event
            # series, then stripped from the merged document.
            bus.add_probe("shard.maintenance", lambda: self.maintenance)
            bus.start()
            self.bus = bus

        self.network.set_transport_config(
            make_transport_config(spec.transport))
        self._mask_links()
        self._register_flows()

    def _node(self, name: str):
        network = self.network
        if name in network.switch_nodes:
            return network.switch_nodes[name]
        return network.hosts[int(name[1:])]

    def _mask_links(self) -> None:
        me = self.shard
        assignment = self.assignment
        self.recorders: List[_CutRecorder] = []
        #: link_id -> (delivery target node, link event priority).
        self.cut_in: Dict[int, Tuple[object, int]] = {}
        cut_index = {pair: i for i, pair in enumerate(self.cut_links)}
        for (src_name, dst_name), fabric in self.network.links.items():
            src_owned = assignment[src_name] == me
            dst_owned = assignment[dst_name] == me
            link = fabric.link
            if src_owned and not dst_owned:
                if link.failed:
                    continue  # statically failed cut: blackhole locally,
                    # exactly like the oracle.
                recorder = _CutRecorder(
                    link, cut_index[(src_name, dst_name)], self)
                link.transmit = recorder.transmit  # type: ignore[method-assign]
                self.recorders.append(recorder)
            elif not src_owned:
                # No traffic may originate in non-owned territory; fail
                # loudly on the first leaked packet instead of diverging.
                link.transmit = _leak_guard(  # type: ignore[method-assign]
                    f"{src_name}->{dst_name}")
            if dst_owned and not src_owned:
                self.cut_in[cut_index[(src_name, dst_name)]] = (
                    self._node(dst_name), link.event_priority)

    def _register_flows(self) -> None:
        """Register every flow; schedule starts for owned sources.

        All flows enter the local ``FlowStats`` (completion callbacks need
        the record), in the parent's injection order.  A flow whose source
        host is owned starts through the oracle's ``Network._start_flow``
        path (one event at its start time); a flow only whose destination
        is owned gets an *eager* receiver -- ``ReceiverState`` construction
        is time-independent, so pre-installing it adds zero events.
        """
        me = self.shard
        network = self.network
        sim = self.sim
        assignment = self.assignment
        config = network.transport_config
        sender_classes: Dict[str, object] = {}
        self.owned_dst_flows: List[int] = []
        for entry in self.payload["flows"]:
            (flow_id, src, dst, size_bytes, start_time, priority,
             query_id, protocol) = entry
            flow = FlowSpec(src=src, dst=dst, size_bytes=size_bytes,
                            start_time=start_time, priority=priority,
                            query_id=query_id, flow_id=flow_id)
            network.injected_flows.append(flow)
            network.flow_stats.register_flow(FlowRecord(
                flow_id=flow_id, src=src, dst=dst, size_bytes=size_bytes,
                start_time=start_time, query_id=query_id,
                priority=priority))
            src_owned = assignment[host_node_name(src)] == me
            dst_owned = assignment[host_node_name(dst)] == me
            if dst_owned:
                self.owned_dst_flows.append(flow_id)
            if src_owned:
                sender_cls = sender_classes.get(protocol)
                if sender_cls is None:
                    sender_cls = sender_classes[protocol] = (
                        make_transport(protocol))
                sim.at(start_time,
                       lambda s=flow, cls=sender_cls, cfg=config:
                       network._start_flow(s, cls, cfg))
            elif dst_owned:
                receiver = ReceiverState(
                    flow, config, on_complete=network._flow_completed,
                    packet_pool=sim.kernel.packet_pool)
                network.hosts[dst].add_receiver(receiver)

    # -- round machinery ----------------------------------------------
    def _apply_handoffs(self, blobs: List[str]) -> None:
        """Decode inbound batches; push one delivery event per batch.

        Batches are the oracle's per-link arrival groups (arrival times
        are monotone per link, so the groups are exactly the consecutive
        equal-``t_arr`` runs in transmit order).  Each batch's delivery
        event is pushed with the cut link's event priority, which is the
        whole ordering story: the heap's ``(time, priority, seq)`` order
        puts it exactly where the oracle's ``_arrive`` for that link runs,
        relative to every local event at the same instant.
        """
        queue = self.sim._queue
        heap = queue._heap
        counter = queue._counter
        total = 0
        for blob in blobs:
            for link_id_str, records in json.loads(blob).items():
                dst_node, priority = self.cut_in[int(link_id_str)]
                total += len(records)
                i = 0
                while i < len(records):
                    t_arr = records[i][0]
                    j = i
                    while j < len(records) and records[j][0] == t_arr:
                        j += 1
                    batch = records[i:j]
                    heappush(heap, (t_arr, priority, next(counter),
                                    lambda b=batch, n=dst_node:
                                    self._deliver(n, b)))
                    i = j
        self.handoffs_in += total

    def _deliver(self, dst_node, batch: List[List[object]]) -> None:
        make_packet = self.make_packet
        for r in batch:
            packet = make_packet(
                size_bytes=r[1], flow_id=r[2], src=r[3], dst=r[4],
                seq=r[5], payload_bytes=r[6], is_ack=r[7], ack_seq=r[8],
                ecn_capable=r[9], ecn_marked=r[10], ecn_echo=r[11],
                priority=r[12], created_at=r[13])
            metadata = r[14]
            if metadata:
                packet.metadata.update(metadata)
            dst_node.deliver(packet)

    def _collect_outbound(self) -> Tuple[Dict[str, str], Optional[float]]:
        """Bucket this round's recorded handoffs by destination shard."""
        assignment = self.assignment
        buckets: Dict[int, Dict[str, List[List[object]]]] = {}
        min_arr: Optional[float] = None
        for recorder in self.recorders:
            records = recorder.records
            if not records:
                continue
            dst_shard = assignment[self.cut_links[recorder.link_id][1]]
            buckets.setdefault(dst_shard, {})[str(recorder.link_id)] = records
            first = records[0][0]  # arrival times are monotone per link
            if min_arr is None or first < min_arr:
                min_arr = first
            self.handoffs_out += len(records)
            recorder.records = []
        return ({str(shard): json.dumps(bucket)
                 for shard, bucket in buckets.items()}, min_arr)

    def run(self) -> None:
        self._build()
        sim = self.sim
        conn = self.conn
        while True:
            t0 = _time.perf_counter()
            msg = _recv(conn)
            t1 = _time.perf_counter()
            self.blocked_s += t1 - t0
            blobs = msg["handoffs"]
            if blobs:
                self._apply_handoffs(blobs)
            sim.run(until=msg["horizon"])
            self.busy_s += _time.perf_counter() - t1
            self.rounds += 1
            if msg["final"]:
                _send(conn, self._final_report())
                return
            handoffs, min_arr = self._collect_outbound()
            _send(conn, {
                "type": "round",
                "peek": sim._queue.peek_time(),
                "min_arr": min_arr,
                "handoffs": handoffs,
                "now": sim.now,
                "events": sim.events_executed,
                "handoffs_out": self.handoffs_out,
            })

    def _final_report(self) -> Dict[str, object]:
        me = self.shard
        switches: Dict[str, Dict[str, object]] = {}
        for node in self.topology.all_switches():
            if self.assignment[node.name] != me:
                continue
            switch = getattr(node, "switch", node)
            switches[node.name] = switch.stats.summary()
        finishes = []
        flows = self.network.flow_stats.flows
        for flow_id in self.owned_dst_flows:
            record = flows[flow_id]
            if record.finish_time is not None:
                finishes.append([flow_id, record.finish_time])
        bus = self.bus
        return {
            "type": "final",
            "final_time": self.sim.now,
            "events": self.sim.events_executed,
            "ticks": bus.ticks if bus is not None else 0,
            "maintenance": self.maintenance,
            "switches": switches,
            "finishes": finishes,
            "telemetry": bus.to_dict() if bus is not None else None,
            "shard": {
                "shard": me,
                "nodes": sum(1 for s in self.assignment.values() if s == me),
                "events": self.sim.events_executed,
                "rounds": self.rounds,
                "handoffs_out": self.handoffs_out,
                "handoffs_in": self.handoffs_in,
                "maintenance": self.maintenance,
                "busy_s": self.busy_s,
                "blocked_s": self.blocked_s,
                "peak_rss_kb": resource.getrusage(
                    resource.RUSAGE_SELF).ru_maxrss,
            },
        }


def _worker_entry(conn, payload_json: str) -> None:
    """Process entry point; every failure becomes a loud error frame."""
    try:
        _ShardWorker(conn, json.loads(payload_json)).run()
    except BaseException:  # noqa: BLE001 - ship any failure to the parent
        try:
            _send(conn, {"type": "error",
                         "traceback": traceback.format_exc()})
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class ShardRound:
    """A per-round progress snapshot (live dashboard food)."""

    round: int
    horizon: float
    final_horizon: float
    shards: List[Dict[str, object]] = field(default_factory=list)


class _ShimStats:
    """Duck-typed ``SwitchStats`` over one shard's reported summary."""

    def __init__(self, summary: Dict[str, object]) -> None:
        self._summary = {key: summary[key] for key in _SUMMARY_KEYS}
        for key in _SUMMARY_KEYS:
            setattr(self, key, summary[key])

    @property
    def total_lost_packets(self) -> int:
        return (self.dropped_packets + self.expelled_packets
                + self.evicted_packets)

    def summary(self) -> Dict[str, object]:
        return dict(self._summary)


class _ShimSwitch:
    def __init__(self, name: str, summary: Dict[str, object]) -> None:
        self.name = name
        self.stats = _ShimStats(summary)


class _ShimSim:
    def __init__(self, events_executed: int, now: float) -> None:
        self.events_executed = events_executed
        self.now = now


class _MergedTopology:
    """The slice of a topology the result/report layers actually touch."""

    def __init__(self, switches: List[_ShimSwitch], sim: _ShimSim) -> None:
        self._switches = switches
        self.sim = sim

    def all_switches(self) -> List[_ShimSwitch]:
        return list(self._switches)


class _MergedTelemetry:
    """Carrier for the merged telemetry document (``to_dict`` only)."""

    def __init__(self, document: Dict[str, object]) -> None:
        self._document = document
        self.ticks = document["ticks"]

    def to_dict(self) -> Dict[str, object]:
        return self._document


class ShardCrash(RuntimeError):
    """A shard process died or reported an error mid-run."""


def _merge_telemetry(reports: List[Dict[str, object]],
                     assignment: Dict[str, int]) -> Dict[str, object]:
    docs = [report["telemetry"] for report in reports]
    base = docs[0]
    for i, doc in enumerate(docs[1:], start=1):
        for key in ("interval", "capacity", "ticks", "dropped_samples",
                    "time"):
            if doc[key] != base[key]:
                raise ShardCrash(
                    f"telemetry grid diverged between shard 0 and shard "
                    f"{i} on {key!r}: sharded execution requires identical "
                    "sampling ticks in every process")
    maintenance = [doc["series"]["shard.maintenance"] for doc in docs]
    merged: Dict[str, List[float]] = {}
    for name in base["series"]:
        if name.startswith(_SHARD_SERIES_PREFIX):
            continue
        if name == "sim.events_executed":
            merged[name] = [
                sum(doc["series"][name][k] for doc in docs)
                - sum(series[k] for series in maintenance)
                for k in range(len(base["time"]))
            ]
        elif name.startswith("switch."):
            owner = assignment[name.split(".", 2)[1]]
            merged[name] = docs[owner]["series"][name]
        else:
            # Host and link aggregates are linear sums; non-owned replicas
            # contribute exact zeros.
            merged[name] = [
                sum(doc["series"][name][k] for doc in docs)
                for k in range(len(base["time"]))
            ]
    return {
        "interval": base["interval"],
        "capacity": base["capacity"],
        "ticks": base["ticks"],
        "dropped_samples": base["dropped_samples"],
        "time": base["time"],
        "series": dict(sorted(merged.items())),
    }


def _generate_flows(spec: ScenarioSpec, topology) -> List[List[object]]:
    """Generate and order every workload flow exactly like the runner.

    Returns injection-ordered entries ``[flow_id, src, dst, size_bytes,
    start_time, priority, query_id, protocol]`` with each flow's transport
    protocol resolved (workload override or scenario default).
    """
    rng = SeededRNG(spec.seed)
    hosts = list(getattr(topology, "hosts", []) or [])
    link_rate_bps = getattr(topology, "link_rate_bps", 0.0)
    generated = []
    for workload in spec.workloads:
        ctx = WorkloadContext(
            rng=rng.child(workload.rng_label or workload.kind),
            duration=spec.duration,
            hosts=hosts,
            link_rate_bps=link_rate_bps,
            topology=topology,
        )
        generated.append(
            (workload, make_workload(workload.kind, workload.params, ctx)))
    seen_ids: Dict[int, str] = {}
    for workload, flows in generated:
        if any(not isinstance(f, FlowSpec) for f in flows):
            raise ValueError(
                f"workload {workload.kind!r} produced raw packet arrivals; "
                "sharded execution needs a network-level topology")
        for flow in flows:
            if flow.flow_id in seen_ids:
                raise ValueError(
                    f"duplicate flow_id {flow.flow_id}: workloads "
                    f"{seen_ids[flow.flow_id]!r} and {workload.kind!r} "
                    "both produced it")
            seen_ids[flow.flow_id] = workload.kind
    default_protocol = spec.transport.protocol
    entries: List[List[object]] = []
    for query_pass in (True, False):
        for workload, flows in generated:
            protocol = workload.transport or default_protocol
            for flow in flows:
                if (flow.query_id is not None) == query_pass:
                    entries.append([
                        flow.flow_id, flow.src, flow.dst, flow.size_bytes,
                        flow.start_time, flow.priority, flow.query_id,
                        protocol,
                    ])
    return entries


class _ShardPool:
    """Spawned worker processes plus crash-aware receive."""

    def __init__(self, spec: ScenarioSpec, partition: Partition,
                 flows: List[List[object]]) -> None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        base_payload = {
            "spec": spec.to_dict(),
            "num_shards": partition.num_shards,
            "assignment": partition.assignment,
            "cut_links": [list(pair) for pair in partition.cut_links],
            "flows": flows,
        }
        self.conns = []
        self.procs = []
        try:
            for shard in range(partition.num_shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                payload = dict(base_payload, shard=shard)
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(child_conn, json.dumps(payload)),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self.conns.append(parent_conn)
                self.procs.append(proc)
        except BaseException:
            self.terminate()
            raise

    def send(self, shard: int, message: Dict[str, object]) -> None:
        _send(self.conns[shard], message)

    def recv(self, shard: int) -> Dict[str, object]:
        conn = self.conns[shard]
        proc = self.procs[shard]
        while not conn.poll(0.2):
            if not proc.is_alive():
                raise ShardCrash(
                    f"shard {shard} process died (exit code "
                    f"{proc.exitcode}) without reporting an error")
        try:
            message = _recv(conn)
        except EOFError:
            raise ShardCrash(
                f"shard {shard} closed its pipe mid-round (exit code "
                f"{proc.exitcode})") from None
        if message.get("type") == "error":
            raise ShardCrash(
                f"shard {shard} failed:\n{message['traceback']}")
        return message

    def terminate(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=5)


def run_sharded(spec: ScenarioSpec, on_sample: Optional[Callable] = None):
    """Execute ``spec`` across ``spec.engine.shards`` worker processes.

    Returns a :class:`~repro.scenario.runner.ScenarioResult` whose
    ``to_dict()`` document is byte-identical to the single-process run of
    the same spec.  ``on_sample`` objects flagged ``shard_aware`` (the
    shard dashboard) receive a :class:`ShardRound` after every exchange;
    plain telemetry hooks cannot observe worker-process buses and are
    ignored.  Per-shard diagnostics land on the result's ``shard_stats``
    attribute -- never in the canonical document.
    """
    from repro.scenario.runner import ScenarioResult, ScenarioRunner

    runner = ScenarioRunner()
    runner.validate(spec)
    manager_factory = lambda: make_buffer_manager(  # noqa: E731
        spec.scheme.name, **spec.scheme.kwargs)
    topology = make_topology(spec.topology.kind, manager_factory,
                             **spec.resolved_topology_params())
    partition = partition_topology(topology, spec.engine.shards,
                                   spec.engine.partition)
    flows = _generate_flows(spec, topology)
    flow_stats = topology.network.flow_stats
    for entry in flows:
        flow_id, src, dst, size_bytes, start_time, priority, query_id, _ = (
            entry)
        flow_stats.register_flow(FlowRecord(
            flow_id=flow_id, src=src, dst=dst, size_bytes=size_bytes,
            start_time=start_time, query_id=query_id, priority=priority))

    on_round = (on_sample if on_sample is not None
                and getattr(on_sample, "shard_aware", False) else None)
    horizon = spec.duration * spec.run_slack
    lookahead = partition.lookahead
    num_shards = partition.num_shards

    # The first global minimum is known without an exchange: at setup the
    # only scheduled events are the flow starts and (with telemetry) the
    # first sampler tick at t=0.
    t_next: Optional[float] = None
    if spec.telemetry.enabled:
        t_next = 0.0
    for entry in flows:
        start = entry[4]
        if t_next is None or start < t_next:
            t_next = start

    pool = _ShardPool(spec, partition, flows)
    reports: List[Dict[str, object]] = []
    rounds = 0
    try:
        route: List[List[str]] = [[] for _ in range(num_shards)]
        while True:
            if t_next is None:
                round_horizon, final = horizon, True
            else:
                # Exclusive upper bound: the kernel runs events at exactly
                # `until`, and an event at t_next + lookahead may depend on
                # a handoff from this very round -- stop one ulp short.
                # The max() guard keeps progress when the lookahead is
                # smaller than one ulp of the clock.
                candidate = max(
                    math.nextafter(t_next + lookahead, -math.inf), t_next)
                if candidate >= horizon:
                    round_horizon, final = horizon, True
                else:
                    round_horizon, final = candidate, False
            for shard in range(num_shards):
                pool.send(shard, {
                    "cmd": "run",
                    "horizon": round_horizon,
                    "final": final,
                    "handoffs": route[shard],
                })
            route = [[] for _ in range(num_shards)]
            replies = [pool.recv(shard) for shard in range(num_shards)]
            rounds += 1
            if final:
                reports = replies
                break
            t_next = None
            for reply in replies:
                for dst_str, blob in reply["handoffs"].items():
                    route[int(dst_str)].append(blob)
                for value in (reply["peek"], reply["min_arr"]):
                    if value is not None and (t_next is None
                                              or value < t_next):
                        t_next = value
            if on_round is not None:
                on_round(ShardRound(
                    round=rounds, horizon=round_horizon,
                    final_horizon=horizon,
                    shards=[{
                        "shard": i,
                        "now": reply["now"],
                        "events": reply["events"],
                        "handoffs": reply["handoffs_out"],
                    } for i, reply in enumerate(replies)]))
    finally:
        pool.terminate()

    # -- merge ---------------------------------------------------------
    for shard, report in enumerate(reports):
        if report["final_time"] != horizon:
            raise ShardCrash(
                f"shard {shard} ended at {report['final_time']!r}, "
                f"expected the common horizon {horizon!r}")
    events = sum(report["events"] - report["ticks"] - report["maintenance"]
                 for report in reports)
    finishes: List[Tuple[int, float]] = []
    for report in reports:
        finishes.extend((fid, t) for fid, t in report["finishes"])
    # Completion order is irrelevant to FlowStats (query finish times are
    # max-of-members), but apply in flow-id order anyway: deterministic
    # merged state regardless of shard count.
    for flow_id, finish_time in sorted(finishes):
        flow_stats.flow_finished(flow_id, finish_time)

    shim_switches = []
    for node in topology.all_switches():
        owner = partition.assignment[node.name]
        shim_switches.append(
            _ShimSwitch(node.name, reports[owner]["switches"][node.name]))
    ticks = reports[0]["ticks"]
    merged_topology = _MergedTopology(
        shim_switches, _ShimSim(events + ticks, horizon))
    telemetry = None
    if spec.telemetry.enabled:
        telemetry = _MergedTelemetry(
            _merge_telemetry(reports, partition.assignment))

    result = ScenarioResult(
        spec=spec,
        topology=merged_topology,
        flow_stats=flow_stats,
        level="network",
        events_executed=events,
        final_time=horizon,
        telemetry=telemetry,
        timeline=None,
    )
    #: Diagnostics channel: per-shard rows (events, handoffs, rounds,
    #: blocked/busy wall time, RSS) plus the partition -- deliberately an
    #: attribute, never part of the canonical document.
    result.shard_stats = {
        "partition": partition.to_dict(),
        "rounds": rounds,
        "shards": [report["shard"] for report in reports],
    }
    return result
