"""Seeded random-number helpers.

Every experiment takes a single integer seed; components that need randomness
derive independent child streams from it so that adding a new random consumer
does not perturb existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence


class SeededRNG:
    """A thin wrapper around :class:`random.Random` with derived sub-streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, name: str) -> "SeededRNG":
        """Derive an independent, reproducible child stream keyed by ``name``.

        The derivation uses a cryptographic hash rather than Python's builtin
        ``hash`` so child streams are identical across processes (the builtin
        string hash is salted per interpreter run).
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        derived = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return SeededRNG(derived)

    # Convenience passthroughs -----------------------------------------
    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def choice(self, seq: Sequence):
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        return self._random.sample(seq, k)

    def poisson_interarrivals(self, rate_per_sec: float) -> Iterator[float]:
        """Yield exponential inter-arrival times for a Poisson process."""
        if rate_per_sec <= 0:
            raise ValueError("rate must be positive")
        while True:
            yield self._random.expovariate(rate_per_sec)
