"""The discrete-event simulator driving both the switch and network models."""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    The simulator owns a virtual clock (``now``, in seconds) and an event
    queue.  Components schedule callbacks either at an absolute time
    (:meth:`at`) or after a delay (:meth:`schedule`), then :meth:`run` drains
    the queue until a time horizon or until no events remain.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.5]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        #: Cumulative count of events executed over the simulator's lifetime
        #: (across multiple :meth:`run` calls; the perf harness reads it).
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is negative or NaN.
        """
        if delay < 0:
            raise ValueError(
                f"cannot schedule into the past: delay={delay} (now={self.now})"
            )
        return self._queue.push(self.now + delay, callback)

    def schedule_fast(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule a *non-cancellable* callback ``delay`` seconds from now.

        The hot-path variant of :meth:`schedule`: no :class:`Event` object is
        allocated, so the callback cannot be cancelled.  The simulation inner
        loops (port/NIC serialization completions, link arrivals) use it; use
        :meth:`schedule` whenever a handle is needed.
        """
        if delay < 0:
            raise ValueError(
                f"cannot schedule into the past: delay={delay} (now={self.now})"
            )
        time = self.now + delay
        if time != time:  # fast NaN check without math.isnan
            raise ValueError("cannot schedule an event at time NaN")
        # Inlined EventQueue.push_callback: this is the single hottest
        # scheduling call in the simulator, worth one fewer frame.
        # NOTE: Link.transmit (repro.netsim.link) inlines this body once
        # more (measured ~5% of its per-packet cost) -- keep the heap entry
        # shape (time, counter, callback) in sync with it.
        queue = self._queue
        heappush(queue._heap, (time, next(queue._counter), callback))

    def at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``.

        Raises:
            ValueError: if ``time`` lies before the current clock or is NaN.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: time={time} (now={self.now})"
            )
        return self._queue.push(time, callback)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Args:
            until: stop once the clock would pass this time (the clock is
                advanced to ``until`` if events remain beyond it).
            max_events: optional safety cap on the number of executed events.

        Returns:
            The number of events executed.
        """
        executed = 0
        self._stopped = False
        self._running = True
        queue = self._queue
        pop_entry = queue.pop_entry
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                if self._stopped:
                    break
                entry = pop_entry()
                if entry is None:
                    # Queue drained: advance the clock to the horizon.
                    if until is not None and self.now < until:
                        self.now = until
                    break
                event_time = entry[0]
                if until is not None and event_time > until:
                    # Beyond the horizon: put it back (it keeps its original
                    # FIFO position) and advance the clock to the horizon.
                    queue.reinsert(entry)
                    self.now = until
                    break
                self.now = event_time
                obj = entry[2]
                if obj.__class__ is Event:
                    obj.callback()
                else:
                    obj()
                executed += 1
        finally:
            self._running = False
            self.events_executed += executed
        return executed

    def set_live_event_counting(self, enabled: bool = True) -> None:
        """Keep :attr:`events_executed` current *during* :meth:`run`.

        The default loop counts in a local and folds it into
        :attr:`events_executed` once per :meth:`run` call, so mid-run reads
        (the telemetry bus samples events/sec while the clock advances) see
        a stale value.  Rather than tax every event with bookkeeping, this
        swaps in a per-event-counting loop as an instance attribute -- the
        same attach-time trick as ``Link.set_failed`` -- so the class-level
        :meth:`run` stays branch-free when telemetry is off.
        """
        if enabled:
            self.run = self._run_counting  # type: ignore[method-assign]
        else:
            self.__dict__.pop("run", None)

    def _run_counting(self, until: Optional[float] = None,
                      max_events: Optional[int] = None) -> int:
        """:meth:`run` with a live :attr:`events_executed` counter.

        Keep the control flow in lockstep with :meth:`run`; only the counter
        bookkeeping differs: :attr:`events_executed` *is* the loop counter
        (one attribute increment per event, no shadowing local), so any
        callback -- the telemetry tick in particular -- reads a current
        value.
        """
        base = self.events_executed
        self._stopped = False
        self._running = True
        queue = self._queue
        pop_entry = queue.pop_entry
        try:
            while True:
                if (max_events is not None
                        and self.events_executed - base >= max_events):
                    break
                if self._stopped:
                    break
                entry = pop_entry()
                if entry is None:
                    if until is not None and self.now < until:
                        self.now = until
                    break
                event_time = entry[0]
                if until is not None and event_time > until:
                    queue.reinsert(entry)
                    self.now = until
                    break
                self.now = event_time
                obj = entry[2]
                if obj.__class__ is Event:
                    obj.callback()
                else:
                    obj()
                self.events_executed += 1
        finally:
            self._running = False
        return self.events_executed - base

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the event queue and rewind the clock to zero."""
        self._queue.clear()
        self.now = 0.0
        self._stopped = False
