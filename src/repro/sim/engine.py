"""The discrete-event simulator driving both the switch and network models."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    The simulator owns a virtual clock (``now``, in seconds) and an event
    queue.  Components schedule callbacks either at an absolute time
    (:meth:`at`) or after a delay (:meth:`schedule`), then :meth:`run` drains
    the queue until a time horizon or until no events remain.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.5]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback)

    def at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (time={time}, now={self.now})"
            )
        return self._queue.push(time, callback)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Args:
            until: stop once the clock would pass this time (the clock is
                advanced to ``until`` if events remain beyond it).
            max_events: optional safety cap on the number of executed events.

        Returns:
            The number of events executed.
        """
        executed = 0
        self._stopped = False
        self._running = True
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                if self._stopped:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self.now = event.time
                event.callback()
                executed += 1
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the event queue and rewind the clock to zero."""
        self._queue.clear()
        self.now = 0.0
        self._stopped = False
