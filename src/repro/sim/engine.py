"""The discrete-event simulator driving both the switch and network models."""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.kernel import HeapKernel, SimKernel


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    The simulator owns a virtual clock (``now``, in seconds) and a pluggable
    :class:`~repro.sim.kernel.SimKernel` holding the event queue and the
    dispatch loop.  Components schedule callbacks either at an absolute time
    (:meth:`at`) or after a delay (:meth:`schedule`), then :meth:`run` drains
    the queue until a time horizon or until no events remain.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.5]
    """

    def __init__(self, kernel: Optional[SimKernel] = None) -> None:
        self.now: float = 0.0
        #: The engine kernel: event storage + dispatch loop + pools.  The
        #: default HeapKernel is the pre-kernel behavior exactly.
        self._kernel = kernel if kernel is not None else HeapKernel()
        #: Back-compat alias -- a SimKernel *is* an EventQueue, and the
        #: inlined hot paths (schedule_fast below, Link.transmit) reach the
        #: heap through ``sim._queue._heap`` / ``._counter``.
        self._queue = self._kernel
        self._running = False
        self._stopped = False
        #: Cumulative count of events executed over the simulator's lifetime
        #: (across multiple :meth:`run` calls; the perf harness reads it).
        self.events_executed: int = 0

    @property
    def kernel(self) -> SimKernel:
        """The engine kernel (components read its pools at attach time)."""
        return self._kernel

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is negative or NaN.
        """
        if delay < 0:
            raise ValueError(
                f"cannot schedule into the past: delay={delay} (now={self.now})"
            )
        time = self.now + delay
        if time != time:  # NaN slips past the < 0 guard (comparisons false)
            raise ValueError("cannot schedule an event at time NaN")
        return self._queue.push(time, callback)

    def schedule_fast(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule a *non-cancellable* callback ``delay`` seconds from now.

        The hot-path variant of :meth:`schedule`: no :class:`Event` object is
        allocated, so the callback cannot be cancelled.  The simulation inner
        loops (port/NIC serialization completions, link arrivals) use it; use
        :meth:`schedule` whenever a handle is needed.
        """
        if delay < 0:
            raise ValueError(
                f"cannot schedule into the past: delay={delay} (now={self.now})"
            )
        time = self.now + delay
        if time != time:  # fast NaN check without math.isnan
            raise ValueError("cannot schedule an event at time NaN")
        # Inlined EventQueue.push_callback: this is the single hottest
        # scheduling call in the simulator, worth one fewer frame.
        # NOTE: Link.transmit (repro.netsim.link) inlines this body once
        # more (measured ~5% of its per-packet cost) -- keep the heap entry
        # shape (time, priority, counter, callback) in sync with it.
        queue = self._queue
        heappush(queue._heap, (time, 0, next(queue._counter), callback))

    def at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``.

        Raises:
            ValueError: if ``time`` lies before the current clock or is NaN.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: time={time} (now={self.now})"
            )
        if time != time:  # NaN slips past the < guard (comparisons false)
            raise ValueError("cannot schedule an event at time NaN")
        return self._queue.push(time, callback)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Args:
            until: stop once the clock would pass this time (the clock is
                advanced to ``until`` if events remain beyond it).
            max_events: optional safety cap on the number of executed events.

        Returns:
            The number of events executed.
        """
        # One extra frame per run() call (not per event): the loop itself
        # lives in the kernel so it can be swapped wholesale.
        return self._kernel.run_loop(self, until, max_events)

    def set_live_event_counting(self, enabled: bool = True) -> None:
        """Keep :attr:`events_executed` current *during* :meth:`run`.

        The default loop counts in a local and folds it into
        :attr:`events_executed` once per :meth:`run` call, so mid-run reads
        (the telemetry bus samples events/sec while the clock advances) see
        a stale value.  Rather than tax every event with bookkeeping, this
        swaps in the kernel's per-event-counting loop as an instance
        attribute -- the same attach-time trick as ``Link.set_failed`` -- so
        the class-level :meth:`run` stays branch-free when telemetry is off.
        Every kernel supplies the hook (``run_loop_counting``), so telemetry
        behaves identically regardless of the selected kernel.
        """
        if enabled:
            self.run = self._run_counting  # type: ignore[method-assign]
        else:
            self.__dict__.pop("run", None)

    def _run_counting(self, until: Optional[float] = None,
                      max_events: Optional[int] = None) -> int:
        """:meth:`run` with a live :attr:`events_executed` counter."""
        return self._kernel.run_loop_counting(self, until, max_events)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._queue)

    def reset(self) -> None:
        """Return the simulator to its just-constructed state.

        Clears the event queue, rewinds the clock, zeroes the lifetime
        event counter and undoes any :meth:`set_live_event_counting` swap
        (a reset simulator previously kept both the stale counter and the
        instance-level counting ``run``).
        """
        self._queue.clear()
        self.now = 0.0
        self._stopped = False
        self.events_executed = 0
        self.__dict__.pop("run", None)
