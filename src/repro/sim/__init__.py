"""Discrete-event simulation kernel used by the switch and network simulators."""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import (
    HeapKernel,
    PooledKernel,
    SimKernel,
    available_kernels,
    make_kernel,
    register_kernel,
)
from repro.sim.rng import SeededRNG
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MBPS,
    US,
    MS,
    NS,
    bits_to_bytes,
    bytes_to_bits,
    rate_to_bytes_per_sec,
    transmission_time,
)

__all__ = [
    "Event",
    "EventQueue",
    "HeapKernel",
    "PooledKernel",
    "SimKernel",
    "Simulator",
    "SeededRNG",
    "available_kernels",
    "make_kernel",
    "register_kernel",
    "GBPS",
    "MBPS",
    "KB",
    "MB",
    "US",
    "MS",
    "NS",
    "bits_to_bytes",
    "bytes_to_bits",
    "rate_to_bytes_per_sec",
    "transmission_time",
]
