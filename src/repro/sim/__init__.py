"""Discrete-event simulation kernel used by the switch and network simulators."""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import SeededRNG
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MBPS,
    US,
    MS,
    NS,
    bits_to_bytes,
    bytes_to_bits,
    rate_to_bytes_per_sec,
    transmission_time,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SeededRNG",
    "GBPS",
    "MBPS",
    "KB",
    "MB",
    "US",
    "MS",
    "NS",
    "bits_to_bytes",
    "bytes_to_bits",
    "rate_to_bytes_per_sec",
    "transmission_time",
]
