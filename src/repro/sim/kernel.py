"""Pluggable simulation kernels: the heap + dispatch loop behind a seam.

A :class:`SimKernel` owns everything the inner loop of the discrete-event
simulator touches: the pending-event heap (it *is* an
:class:`~repro.sim.events.EventQueue`, so the ``(time, priority, seq,
obj)`` entry shape and the inlined hot paths in :meth:`Simulator.schedule_fast
<repro.sim.engine.Simulator.schedule_fast>` and
``Link.transmit`` keep working unchanged), the dispatch loop
(:meth:`~SimKernel.run_loop` and its live-counting twin
:meth:`~SimKernel.run_loop_counting`), and the allocation policy for the
objects the simulation churns through (events, packets, packet
descriptors).

Two kernels ship:

* :class:`HeapKernel` -- the pure-Python tuple-heap engine, byte-for-byte
  the pre-kernel ``Simulator`` behavior.  It is the *oracle*: every golden
  figure, frozen hash and determinism battery pins it, and
  ``python -m repro.perf differential`` judges every other kernel against
  it.
* :class:`PooledKernel` -- the same dispatch semantics plus free lists:
  fired and cancelled :class:`~repro.sim.events.Event` objects are
  recycled, and the kernel carries a
  :class:`~repro.switchsim.pool.PacketPool` /
  :class:`~repro.switchsim.pool.DescriptorPool` pair that the switch and
  host layers return dead packets and descriptors to instead of leaving
  them to the garbage collector.

Follow-on kernels (a C/Cython inner loop, sharded execution) are further
:class:`SimKernel` implementations -- register them with
:func:`register_kernel` and they become selectable through the scenario
``engine`` section, ``--kernel`` CLI flags and campaign axes for free.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Type

from repro.sim.events import Event, EventQueue


class SimKernel(EventQueue):
    """The engine seam: event storage + dispatch loop + allocation policy.

    Subclasses inherit the :class:`~repro.sim.events.EventQueue` storage
    contract (``push`` / ``push_callback`` / ``pop_entry`` / ``reinsert``
    over a ``(time, priority, seq, event_or_callback)`` tuple heap) and add
    the
    dispatch loops.  The loops receive the owning
    :class:`~repro.sim.engine.Simulator` and drive its public clock/flags
    (``now``, ``_stopped``, ``_running``, ``events_executed``) exactly the
    way the pre-kernel monolithic loop did, so kernels are swappable
    without touching any component code.

    Attributes:
        name: registry name of the kernel (``heap``, ``pooled``, ...).
        packet_pool: the kernel's packet free list, or ``None`` when the
            kernel does not recycle packets.  Components read this once at
            attach time and bind pooled variants of their death-site
            methods only when it is set, so non-pooling kernels pay zero
            per-packet cost for the seam.
        descriptor_pool: same, for :class:`PacketDescriptor` recycling.
    """

    name = "abstract"
    packet_pool = None
    descriptor_pool = None

    def run_loop(self, sim, until: Optional[float] = None,
                 max_events: Optional[int] = None) -> int:
        """Drain the queue, advancing ``sim``; returns events executed."""
        raise NotImplementedError

    def run_loop_counting(self, sim, until: Optional[float] = None,
                          max_events: Optional[int] = None) -> int:
        """:meth:`run_loop` keeping ``sim.events_executed`` current per event.

        The live-counting hook behind
        :meth:`~repro.sim.engine.Simulator.set_live_event_counting`: the
        telemetry bus samples ``events_executed`` *during* the run, so this
        twin loop pays one attribute increment per event instead of a
        shadowing local.
        """
        raise NotImplementedError


class HeapKernel(SimKernel):
    """The pure-Python tuple-heap kernel (the differential-testing oracle).

    Behaviorally identical to the pre-kernel ``Simulator.run`` loop: same
    heap, same FIFO tie-break, same lazy cancellation, same equal-timestamp
    ordering -- the refactor moved the loop body here verbatim.
    """

    name = "heap"

    def run_loop(self, sim, until: Optional[float] = None,
                 max_events: Optional[int] = None) -> int:
        executed = 0
        sim._stopped = False
        sim._running = True
        pop_entry = self.pop_entry
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                if sim._stopped:
                    break
                entry = pop_entry()
                if entry is None:
                    # Queue drained: advance the clock to the horizon.
                    if until is not None and sim.now < until:
                        sim.now = until
                    break
                event_time = entry[0]
                if until is not None and event_time > until:
                    # Beyond the horizon: put it back (it keeps its original
                    # FIFO position) and advance the clock to the horizon.
                    self.reinsert(entry)
                    sim.now = until
                    break
                sim.now = event_time
                obj = entry[3]
                if obj.__class__ is Event:
                    obj.callback()
                else:
                    obj()
                executed += 1
        finally:
            sim._running = False
            sim.events_executed += executed
        return executed

    def run_loop_counting(self, sim, until: Optional[float] = None,
                          max_events: Optional[int] = None) -> int:
        # Keep the control flow in lockstep with run_loop; only the counter
        # bookkeeping differs: ``sim.events_executed`` *is* the loop counter,
        # so any callback (the telemetry tick) reads a current value.
        base = sim.events_executed
        sim._stopped = False
        sim._running = True
        pop_entry = self.pop_entry
        try:
            while True:
                if (max_events is not None
                        and sim.events_executed - base >= max_events):
                    break
                if sim._stopped:
                    break
                entry = pop_entry()
                if entry is None:
                    if until is not None and sim.now < until:
                        sim.now = until
                    break
                event_time = entry[0]
                if until is not None and event_time > until:
                    self.reinsert(entry)
                    sim.now = until
                    break
                sim.now = event_time
                obj = entry[3]
                if obj.__class__ is Event:
                    obj.callback()
                else:
                    obj()
                sim.events_executed += 1
        finally:
            sim._running = False
        return sim.events_executed - base


class PooledKernel(HeapKernel):
    """The heap kernel plus free-listed events, packets and descriptors.

    Dispatch semantics are inherited unchanged from :class:`HeapKernel`
    (identical ordering, identical clock behavior -- the differential gate
    pins result documents byte-for-byte).  What changes is allocation:

    * :class:`~repro.sim.events.Event` wrappers popped from the heap --
      fired or lazily cancelled -- go onto a free list and back out through
      :meth:`push` instead of being garbage.  Safe because every event
      handle the codebase retains (transport RTO timers, the expulsion
      retry) is cleared *first thing* in its callback and never cancelled
      after firing.
    * :attr:`packet_pool` / :attr:`descriptor_pool` are live pools; the
      host/switch/link layers bind recycling variants of their packet
      death sites at construction time when they see them (the same
      attach-time method-swap idiom as ``Link.set_failed``), so a
      steady-state run allocates almost nothing per packet and the cyclic
      collector has nothing to chase.
    * Because the pools keep the object graph steady, the dispatch loops
      pause the *cyclic* garbage collector while they run (restoring it on
      exit, even on exceptions).  Refcounting still frees everything
      acyclic immediately; what goes away is CPython's periodic
      generation-0 scans, which the allocation-heavy heap kernel triggers
      thousands of times per simulated second.  GC scheduling has no
      observable effect on simulation state, so results stay
      byte-identical -- the differential gate checks exactly this.

    Recycled objects carry a generation counter (see
    :mod:`repro.switchsim.pool`): a stale handle -- code touching a packet
    after returning it -- fails loudly instead of silently aliasing.
    """

    name = "pooled"

    def __init__(self) -> None:
        super().__init__()
        # Imported lazily: repro.switchsim builds on repro.sim, so a
        # module-level import here would be circular.
        from repro.switchsim.pool import DescriptorPool, PacketPool

        self.packet_pool = PacketPool()
        self.descriptor_pool = DescriptorPool()
        self._free_events: List[Event] = []

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at ``time``, reusing a recycled Event."""
        if time != time:  # fast NaN check without math.isnan
            raise ValueError("cannot schedule an event at time NaN")
        free = self._free_events
        if free:
            event = free.pop()
            event.time = time
            seq = event.seq = next(self._counter)
            event.callback = callback
            event.cancelled = False
        else:
            event = Event(time, next(self._counter), callback)
            seq = event.seq
        heappush(self._heap, (time, 0, seq, event))
        return event

    def pop_entry(self):
        """Pop the earliest live entry, recycling lazily cancelled events."""
        heap = self._heap
        free = self._free_events
        while heap:
            entry = heappop(heap)
            obj = entry[3]
            if obj.__class__ is Event and obj.cancelled:
                obj.callback = None  # drop the closure; fail loudly if fired
                free.append(obj)
                continue
            return entry
        return None

    def run_loop(self, sim, until: Optional[float] = None,
                 max_events: Optional[int] = None) -> int:
        # The scenario/perf path always runs (until=horizon, max_events=None),
        # so that configuration gets a specialized loop with the pop inlined
        # and every per-event None-check hoisted out.  Semantics are
        # identical to HeapKernel.run_loop (cancelled events are consumed
        # even beyond the horizon, a reinserted entry keeps its original
        # FIFO sequence number) -- the differential gate pins this.
        if max_events is not None:
            return self._run_loop_general(sim, until, max_events)
        executed = 0
        sim._stopped = False
        sim._running = True
        heap = self._heap
        free_events = self._free_events
        event_cls = Event
        pause_gc = gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            if until is None:
                while heap and not sim._stopped:
                    event_time, _priority, _seq, obj = heappop(heap)
                    if obj.__class__ is event_cls:
                        if obj.cancelled:
                            obj.callback = None
                            free_events.append(obj)
                            continue
                        sim.now = event_time
                        obj.callback()
                        # The event fired; recycle it.  Holders clear their
                        # reference on entry to the callback (repo
                        # discipline), so nothing can cancel or re-read it.
                        obj.callback = None
                        free_events.append(obj)
                    else:
                        sim.now = event_time
                        obj()
                    executed += 1
            else:
                while not sim._stopped:
                    if not heap:
                        if sim.now < until:
                            sim.now = until
                        break
                    entry = heappop(heap)
                    event_time = entry[0]
                    obj = entry[3]
                    if obj.__class__ is event_cls and obj.cancelled:
                        obj.callback = None
                        free_events.append(obj)
                        continue
                    if event_time > until:
                        heappush(heap, entry)  # keeps its original seq/FIFO slot
                        sim.now = until
                        break
                    sim.now = event_time
                    if obj.__class__ is event_cls:
                        obj.callback()
                        obj.callback = None
                        free_events.append(obj)
                    else:
                        obj()
                    executed += 1
        finally:
            sim._running = False
            sim.events_executed += executed
            if pause_gc:
                gc.enable()
        return executed

    def _run_loop_general(self, sim, until: Optional[float],
                          max_events: int) -> int:
        """The unspecialized loop (``max_events`` set: tests, debugging)."""
        executed = 0
        sim._stopped = False
        sim._running = True
        pop_entry = self.pop_entry
        free_events = self._free_events
        pause_gc = gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            while True:
                if executed >= max_events:
                    break
                if sim._stopped:
                    break
                entry = pop_entry()
                if entry is None:
                    if until is not None and sim.now < until:
                        sim.now = until
                    break
                event_time = entry[0]
                if until is not None and event_time > until:
                    self.reinsert(entry)
                    sim.now = until
                    break
                sim.now = event_time
                obj = entry[3]
                if obj.__class__ is Event:
                    obj.callback()
                    obj.callback = None
                    free_events.append(obj)
                else:
                    obj()
                executed += 1
        finally:
            sim._running = False
            sim.events_executed += executed
            if pause_gc:
                gc.enable()
        return executed

    def run_loop_counting(self, sim, until: Optional[float] = None,
                          max_events: Optional[int] = None) -> int:
        base = sim.events_executed
        sim._stopped = False
        sim._running = True
        pop_entry = self.pop_entry
        free_events = self._free_events
        pause_gc = gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            while True:
                if (max_events is not None
                        and sim.events_executed - base >= max_events):
                    break
                if sim._stopped:
                    break
                entry = pop_entry()
                if entry is None:
                    if until is not None and sim.now < until:
                        sim.now = until
                    break
                event_time = entry[0]
                if until is not None and event_time > until:
                    self.reinsert(entry)
                    sim.now = until
                    break
                sim.now = event_time
                obj = entry[3]
                if obj.__class__ is Event:
                    obj.callback()
                    obj.callback = None
                    free_events.append(obj)
                else:
                    obj()
                sim.events_executed += 1
        finally:
            sim._running = False
            if pause_gc:
                gc.enable()
        return sim.events_executed - base


_KERNELS: Dict[str, Type[SimKernel]] = {}


def register_kernel(name: str, factory: Type[SimKernel],
                    override: bool = False) -> None:
    """Register a kernel class under ``name`` (``override`` replaces)."""
    if name in _KERNELS and not override:
        raise ValueError(f"kernel {name!r} is already registered")
    _KERNELS[name] = factory


def make_kernel(name: str) -> SimKernel:
    """Instantiate a registered kernel by name."""
    try:
        factory = _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; "
            f"available: {', '.join(available_kernels())}") from None
    return factory()


def available_kernels() -> List[str]:
    """Registered kernel names, sorted."""
    return sorted(_KERNELS)


register_kernel("heap", HeapKernel)
register_kernel("pooled", PooledKernel)
