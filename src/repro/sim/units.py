"""Unit helpers shared across the simulators.

All simulator time is expressed in **seconds** (floats) and all data sizes in
**bytes** (ints).  Link and memory rates are expressed in **bits per second**.
The constants below make experiment configuration read like the paper
("100 * GBPS", "4 * MB", "80 * US").
"""

from __future__ import annotations

#: One kilobyte / megabyte (binary, as used for buffer sizes in the paper).
KB = 1024
MB = 1024 * 1024

#: Rates in bits per second.
MBPS = 1_000_000
GBPS = 1_000_000_000

#: Time units in seconds.
NS = 1e-9
US = 1e-6
MS = 1e-3


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / 8


def rate_to_bytes_per_sec(rate_bps: float) -> float:
    """Convert a rate in bits/second to bytes/second."""
    return rate_bps / 8


def transmission_time(num_bytes: float, rate_bps: float) -> float:
    """Return the serialization delay of ``num_bytes`` on a ``rate_bps`` link.

    Raises:
        ValueError: if the rate is not positive.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return bytes_to_bits(num_bytes) / rate_bps
