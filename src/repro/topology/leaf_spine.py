"""A leaf-spine (Clos) fabric, the topology of the paper's ns-3 simulations.

The paper simulates 8 leaves x 8 spines with 16 hosts per leaf on 100 Gbps
links and a base RTT of 80 us; every group of 8 ports shares 4 MB of buffer.
The builder defaults to a scaled-down fabric so pure-Python runs stay fast,
but all dimensions are parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.base import BufferManager
from repro.netsim.link import LinkSpec
from repro.netsim.network import Network
from repro.netsim.switch_node import SwitchNode
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim.switch import SwitchConfig
from repro.topology._tiers import require_positive, resolve_tier_rates


class LeafSpineTopology:
    """Builds a leaf-spine fabric with ECMP across the spines.

    Host numbering: leaf ``L`` hosts are ``L * hosts_per_leaf ... (L+1) *
    hosts_per_leaf - 1``.  Leaf switch ports ``0..hosts_per_leaf-1`` face the
    hosts, ports ``hosts_per_leaf..hosts_per_leaf+num_spines-1`` face the
    spines.  Spine switch port ``L`` faces leaf ``L``.

    Args:
        num_leaves / num_spines / hosts_per_leaf: fabric dimensions.
        manager_factory: callable returning a fresh buffer manager; called
            once per switch so every switch has its own instance.
        oversubscription: when given, derives the spine count from the host
            count instead of taking ``num_spines`` literally:
            ``num_spines = max(1, round(hosts_per_leaf / oversubscription))``
            (with symmetric rates the leaf's downlink:uplink capacity
            ratio *is* ``hosts_per_leaf / num_spines``).  ``2.0`` gives the
            classic 2:1 oversubscribed leaf.
        link_rate_bps: nominal rate of all links (hosts and fabric).
        tier_rates: per-tier link-rate overrides: ``host`` (host<->leaf)
            and ``spine`` (leaf<->spine uplinks).  Links carry their tier's
            rate as identity; egress ports serialize at it and ECMP weights
            members by effective capacity (real oversubscribed uplinks).
        failures: link-failure injection, ``[a, b]`` endpoint-name pairs
            (e.g. ``["leaf0", "spine1"]``); see
            :meth:`repro.netsim.network.Network.fail_link`.
        degraded: capacity degradations, ``[a, b, factor]`` triples.
        buffer_bytes_per_port: shared buffer per switch = this x port count
            (the paper's 4 MB per 8 ports = 512 KB per port).
        queues_per_port / scheduler / ecn_threshold_bytes: passed to the
            switch configuration.
        base_rtt: end-to-end base RTT across the spine; each of the 8 link
            traversals gets ``base_rtt / 8`` of propagation delay.
        trace_queues: enable queue tracing on all switches.
    """

    def __init__(
        self,
        manager_factory: Callable[[], BufferManager],
        num_leaves: int = 4,
        num_spines: int = 4,
        hosts_per_leaf: int = 4,
        oversubscription: Optional[float] = None,
        link_rate_bps: float = 10 * GBPS,
        tier_rates: Optional[Mapping[str, float]] = None,
        failures: Optional[Sequence[Sequence[str]]] = None,
        degraded: Optional[Sequence[Sequence[object]]] = None,
        buffer_bytes_per_port: int = 512 * KB,
        queues_per_port: int = 1,
        scheduler: str = "fifo",
        ecn_threshold_bytes: Optional[int] = None,
        base_rtt: float = 80e-6,
        trace_queues: bool = False,
        simulator: Optional[Simulator] = None,
    ) -> None:
        if oversubscription is not None:
            if oversubscription <= 0:
                raise ValueError("oversubscription must be positive")
            num_spines = max(1, round(hosts_per_leaf / oversubscription))
        if num_leaves < 2 or num_spines < 1 or hosts_per_leaf < 1:
            raise ValueError("fabric dimensions must be positive (>=2 leaves)")
        require_positive("leaf_spine", link_rate_bps=link_rate_bps,
                         buffer_bytes_per_port=buffer_bytes_per_port,
                         base_rtt=base_rtt)
        self.sim = simulator or Simulator()
        self.num_leaves = num_leaves
        self.num_spines = num_spines
        self.hosts_per_leaf = hosts_per_leaf
        self.link_rate_bps = link_rate_bps
        self.tier_rates = resolve_tier_rates(
            tier_rates,
            {"host": link_rate_bps, "spine": link_rate_bps},
            "leaf_spine",
        )
        self.base_rtt = base_rtt
        link_delay = base_rtt / 8.0
        host_spec = LinkSpec(rate_bps=self.tier_rates["host"], delay=link_delay)
        spine_spec = LinkSpec(rate_bps=self.tier_rates["spine"],
                              delay=link_delay)

        self.network = Network(self.sim, bottleneck_bps=link_rate_bps, base_rtt=base_rtt)

        # ------------------------------------------------------------------
        # Switches
        # ------------------------------------------------------------------
        self.leaves: List[SwitchNode] = []
        self.spines: List[SwitchNode] = []

        leaf_ports = hosts_per_leaf + num_spines
        spine_ports = num_leaves
        for leaf_idx in range(num_leaves):
            config = SwitchConfig(
                num_ports=leaf_ports,
                queues_per_port=queues_per_port,
                port_rate_bps=link_rate_bps,
                buffer_bytes=buffer_bytes_per_port * leaf_ports,
                scheduler=scheduler,
                ecn_threshold_bytes=ecn_threshold_bytes,
                trace_queues=trace_queues,
                name=f"leaf{leaf_idx}",
            )
            node = SwitchNode(f"leaf{leaf_idx}", self.sim, config, manager_factory())
            self.network.add_switch(node)
            self.leaves.append(node)
        for spine_idx in range(num_spines):
            config = SwitchConfig(
                num_ports=spine_ports,
                queues_per_port=queues_per_port,
                port_rate_bps=link_rate_bps,
                buffer_bytes=buffer_bytes_per_port * spine_ports,
                scheduler=scheduler,
                ecn_threshold_bytes=ecn_threshold_bytes,
                trace_queues=trace_queues,
                name=f"spine{spine_idx}",
            )
            node = SwitchNode(f"spine{spine_idx}", self.sim, config, manager_factory())
            self.network.add_switch(node)
            self.spines.append(node)

        # ------------------------------------------------------------------
        # Hosts and links
        # ------------------------------------------------------------------
        self.hosts: List[int] = []
        self.host_leaf: Dict[int, int] = {}
        for leaf_idx, leaf in enumerate(self.leaves):
            for local in range(hosts_per_leaf):
                host_id = leaf_idx * hosts_per_leaf + local
                host = self.network.add_host(host_id, self.tier_rates["host"])
                self.network.connect_host_to_switch(host, leaf, local,
                                                    spec=host_spec)
                self.hosts.append(host_id)
                self.host_leaf[host_id] = leaf_idx

        for leaf_idx, leaf in enumerate(self.leaves):
            for spine_idx, spine in enumerate(self.spines):
                leaf_port = hosts_per_leaf + spine_idx
                spine_port = leaf_idx
                self.network.connect_switches(leaf, leaf_port, spine, spine_port,
                                              spec=spine_spec)
                leaf.routing.add_uplink(leaf_port)

        # Spine routing: every host is reached through its leaf's port.
        for spine in self.spines:
            for host_id, leaf_idx in self.host_leaf.items():
                spine.routing.add_host_route(host_id, leaf_idx)

        # Capacity-weighted ECMP + failure/degradation injection (no-ops on
        # the default symmetric fabric, keeping routing byte-identical).
        self.network.refresh_ecmp_weights()
        self.network.apply_fabric(failures=failures, degraded=degraded)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def hosts_of_leaf(self, leaf_idx: int) -> List[int]:
        return [h for h, l in self.host_leaf.items() if l == leaf_idx]

    def all_switches(self) -> List[SwitchNode]:
        return self.leaves + self.spines

    def total_switch_drops(self) -> int:
        return sum(node.stats.total_lost_packets for node in self.all_switches())
