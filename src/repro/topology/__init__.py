"""Topology builders: single-switch star, dumbbell and leaf-spine fabrics."""

from repro.topology.single_switch import SingleSwitchTopology
from repro.topology.leaf_spine import LeafSpineTopology
from repro.topology.dumbbell import DumbbellTopology
from repro.topology.raw_switch import RawSwitchTopology

__all__ = [
    "DumbbellTopology",
    "LeafSpineTopology",
    "RawSwitchTopology",
    "SingleSwitchTopology",
]
