"""Topology builders: star, dumbbell, leaf-spine and fat-tree fabrics."""

from repro.topology.single_switch import SingleSwitchTopology
from repro.topology.leaf_spine import LeafSpineTopology
from repro.topology.dumbbell import DumbbellTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.raw_switch import RawSwitchTopology

__all__ = [
    "DumbbellTopology",
    "FatTreeTopology",
    "LeafSpineTopology",
    "RawSwitchTopology",
    "SingleSwitchTopology",
]
