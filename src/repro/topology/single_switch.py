"""A single shared-memory switch with N directly attached hosts (star).

This is the topology of the paper's DPDK testbed (Section 6.2): eight hosts on
10 Gbps links around one software switch with 5.12 KB of buffer per port per
Gbps (410 KB total), and of the buffer-choking testbed of Section 3.1.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence

from repro.core.base import BufferManager
from repro.netsim.link import LinkSpec
from repro.netsim.network import Network
from repro.netsim.switch_node import SwitchNode
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim.switch import SwitchConfig
from repro.topology._tiers import require_positive, resolve_tier_rates


class SingleSwitchTopology:
    """Builds a star network around one shared-memory switch.

    Args:
        num_hosts: number of hosts (one switch port each).
        manager_factory: zero-argument callable returning a fresh buffer
            manager for the switch.
        link_rate_bps: nominal host and switch port rate.
        tier_rates: per-tier override; the star has one tier, ``host``.
        degraded: capacity degradations, ``[a, b, factor]`` triples by
            endpoint names (e.g. ``["h0", "s0", 0.5]``): the host NIC and
            the switch egress port feeding that host both slow down.
        failures: rejected -- failing a host link partitions the host.
        buffer_bytes: total shared buffer; if ``None`` it is sized as
            ``buffer_kb_per_port_per_gbps`` KB x ports x Gbps (the paper uses
            5.12, Broadcom Tomahawk-like).
        buffer_kb_per_port_per_gbps: see above.
        queues_per_port: class queues per port.
        scheduler: per-port scheduler name.
        ecn_threshold_bytes: per-queue ECN marking threshold (None disables).
        link_delay: one-way propagation delay of every host link.
        trace_queues: enable queue-length tracing on the switch.
        simulator: reuse an existing simulator (a new one by default).
    """

    def __init__(
        self,
        num_hosts: int,
        manager_factory: Callable[[], BufferManager],
        link_rate_bps: float = 10 * GBPS,
        tier_rates: Optional[Mapping[str, float]] = None,
        failures: Optional[Sequence[Sequence[str]]] = None,
        degraded: Optional[Sequence[Sequence[object]]] = None,
        buffer_bytes: Optional[int] = None,
        buffer_kb_per_port_per_gbps: float = 5.12,
        queues_per_port: int = 1,
        scheduler: str = "fifo",
        ecn_threshold_bytes: Optional[int] = None,
        link_delay: float = 2e-6,
        trace_queues: bool = False,
        simulator: Optional[Simulator] = None,
    ) -> None:
        if num_hosts < 2:
            raise ValueError("need at least two hosts")
        require_positive("single_switch", link_rate_bps=link_rate_bps)
        if link_delay < 0:
            raise ValueError(
                f"single_switch: link_delay cannot be negative, "
                f"got {link_delay!r}")
        self.sim = simulator or Simulator()
        self.num_hosts = num_hosts
        self.link_rate_bps = link_rate_bps
        self.tier_rates = resolve_tier_rates(
            tier_rates, {"host": link_rate_bps}, "single_switch")

        if buffer_bytes is None:
            gbps = link_rate_bps / 1e9
            buffer_bytes = int(buffer_kb_per_port_per_gbps * KB * num_hosts * gbps)
        self.buffer_bytes = buffer_bytes

        # Base RTT: four link traversals (host->switch->host and back).
        self.base_rtt = 4 * link_delay
        self.network = Network(self.sim, bottleneck_bps=link_rate_bps,
                               base_rtt=self.base_rtt)

        config = SwitchConfig(
            num_ports=num_hosts,
            queues_per_port=queues_per_port,
            port_rate_bps=link_rate_bps,
            buffer_bytes=buffer_bytes,
            scheduler=scheduler,
            ecn_threshold_bytes=ecn_threshold_bytes,
            trace_queues=trace_queues,
            name="s0",
        )
        self.switch_node = SwitchNode("s0", self.sim, config, manager_factory())
        self.network.add_switch(self.switch_node)

        host_spec = LinkSpec(rate_bps=self.tier_rates["host"],
                             delay=link_delay)
        self.hosts: List[int] = []
        for host_id in range(num_hosts):
            host = self.network.add_host(host_id, self.tier_rates["host"])
            self.network.connect_host_to_switch(host, self.switch_node, host_id,
                                                spec=host_spec)
            self.hosts.append(host_id)
        # The star has no multipath, so failures cannot be routed around --
        # apply_fabric rejects them (host links partition); degradation of
        # individual host links is supported.
        self.network.apply_fabric(failures=failures, degraded=degraded)

    @property
    def switch(self):
        """The underlying :class:`SharedMemorySwitch`."""
        return self.switch_node.switch

    def all_switches(self):
        """Uniform accessor shared by every topology: all switch nodes."""
        return [self.switch_node]

    def total_switch_drops(self) -> int:
        return self.switch_node.stats.total_lost_packets

    def queue_of_host(self, host_id: int, class_index: int = 0):
        """The switch queue feeding ``host_id`` (its egress port queue)."""
        return self.switch.queue_for(host_id, class_index)
