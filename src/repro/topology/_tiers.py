"""Shared helpers for the topology builders' fabric-model parameters."""

from __future__ import annotations

from typing import Dict, Mapping, Optional


def resolve_tier_rates(
    tier_rates: Optional[Mapping[str, object]],
    defaults: Dict[str, float],
    topology: str,
) -> Dict[str, float]:
    """Merge user per-tier link rates over the topology's defaults.

    ``defaults`` names the tiers the topology has (e.g. ``{"host": r,
    "agg": r, "core": r}`` for a fat-tree); unknown tier names and
    non-positive rates are rejected with a precise message.
    """
    rates = dict(defaults)
    for tier, rate in (tier_rates or {}).items():
        if tier not in rates:
            raise ValueError(
                f"{topology}: unknown link tier {tier!r}; "
                f"available tiers: {', '.join(sorted(rates))}")
        rate = float(rate)
        if not rate > 0:
            raise ValueError(
                f"{topology}: tier {tier!r} rate must be positive, got {rate!r}")
        rates[tier] = rate
    return rates


def require_positive(topology: str, **values: float) -> None:
    """Raise ``ValueError`` unless every named value is strictly positive."""
    for name, value in values.items():
        if not value > 0:
            raise ValueError(
                f"{topology}: {name} must be positive, got {value!r}")
