"""A bare shared-memory switch driven with raw packet arrivals.

The P4-prototype experiments (Figures 3, 11 and 12) bypass hosts, links and
transport entirely: arrival schedules are applied straight to the switch's
ingress.  This wrapper gives those packet-level scenarios the same topology
shape (a builder owning a simulator and switches) as the network-level
topologies, so the scenario runner can treat both uniformly.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence

from repro.core.base import BufferManager
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MB
from repro.switchsim.switch import SharedMemorySwitch, SwitchConfig
from repro.topology._tiers import resolve_tier_rates


class RawSwitchTopology:
    """One shared-memory switch with no attached network.

    Args:
        manager_factory: zero-argument callable returning a fresh buffer
            manager for the switch.
        num_ports: egress port count.
        port_rate_bps: nominal line rate of every port.
        tier_rates: per-tier override; the bare switch has one tier,
            ``port`` (an alias for ``port_rate_bps``).
        degraded: per-port capacity degradations, ``[port_id, factor]``
            pairs -- the bare switch has ports, not links, so degradation
            addresses ports directly.
        failures: rejected -- a bare switch has no links to fail.
        buffer_bytes: total shared buffer.
        queues_per_port / scheduler: queueing structure.
        memory_bandwidth_bps: packet-buffer memory bandwidth (``None`` uses
            the switch default of twice the aggregate port rate).
        trace_queues: record queue-length traces (the packet-level figures
            plot them).
        simulator: reuse an existing simulator (a new one by default).
    """

    def __init__(
        self,
        manager_factory: Callable[[], BufferManager],
        num_ports: int = 2,
        port_rate_bps: float = 10 * GBPS,
        tier_rates: Optional[Mapping[str, float]] = None,
        failures: Optional[Sequence[Sequence[str]]] = None,
        degraded: Optional[Sequence[Sequence[object]]] = None,
        buffer_bytes: int = 2 * MB,
        queues_per_port: int = 1,
        scheduler: str = "fifo",
        memory_bandwidth_bps: Optional[float] = None,
        trace_queues: bool = True,
        name: str = "raw",
        simulator: Optional[Simulator] = None,
    ) -> None:
        if failures:
            raise ValueError(
                "raw_switch: a bare switch has no links to fail; "
                "use 'degraded' ([port_id, factor]) to slow ports down")
        port_rate_bps = resolve_tier_rates(
            tier_rates, {"port": port_rate_bps}, "raw_switch")["port"]
        self.sim = simulator or Simulator()
        self.link_rate_bps = port_rate_bps
        config = SwitchConfig(
            num_ports=num_ports,
            queues_per_port=queues_per_port,
            port_rate_bps=port_rate_bps,
            buffer_bytes=buffer_bytes,
            scheduler=scheduler,
            memory_bandwidth_bps=memory_bandwidth_bps,
            trace_queues=trace_queues,
            name=name,
        )
        self.switch = SharedMemorySwitch(config, manager_factory(), self.sim)
        for entry in degraded or []:
            if len(entry) != 2:
                raise ValueError(
                    "raw_switch: degraded entry must be [port_id, factor], "
                    f"got {entry!r}")
            port_id, factor = int(entry[0]), float(entry[1])
            if not 0 <= port_id < num_ports:
                raise ValueError(
                    f"raw_switch: no port {port_id} (have {num_ports})")
            if not 0 < factor <= 1:
                raise ValueError(
                    "raw_switch: degradation factor must be in (0, 1], "
                    f"got {factor!r}")
            self.switch.set_port_rate(port_id, port_rate_bps * factor)

    def all_switches(self) -> List[SharedMemorySwitch]:
        return [self.switch]

    def total_switch_drops(self) -> int:
        return self.switch.stats.total_lost_packets
