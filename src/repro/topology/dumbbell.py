"""A dumbbell topology: two switches joined by one bottleneck link.

Useful for controlled congestion-control and buffer-sharing experiments where
exactly one link is the bottleneck (e.g. validating DCTCP behaviour or the
burst-absorption micro-benchmarks at network level).
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence

from repro.core.base import BufferManager
from repro.netsim.link import LinkSpec
from repro.netsim.network import Network
from repro.netsim.switch_node import SwitchNode
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim.switch import SwitchConfig
from repro.topology._tiers import require_positive, resolve_tier_rates


class DumbbellTopology:
    """``num_pairs`` senders on the left switch, receivers on the right switch.

    Host ids: senders are ``0..num_pairs-1`` (attached to the left switch),
    receivers are ``num_pairs..2*num_pairs-1`` (attached to the right switch).
    The right-hand switch's port 0 carries the bottleneck link.

    Tiers: ``host`` (host<->switch access links, default ``edge_rate_bps``)
    and ``trunk`` (the inter-switch bottleneck, default
    ``bottleneck_rate_bps``).  The trunk link carries its rate as identity,
    so a ``bottleneck_rate_bps`` below the edge rate now genuinely slows the
    inter-switch wire (historically it only renormalized FCT slowdowns).
    ``degraded`` entries (``[a, b, factor]``, e.g. ``["left", "right",
    0.5]``) scale a link pair's capacity; ``failures`` are rejected -- the
    dumbbell has a single path.
    """

    def __init__(
        self,
        num_pairs: int,
        manager_factory: Callable[[], BufferManager],
        edge_rate_bps: float = 10 * GBPS,
        bottleneck_rate_bps: Optional[float] = None,
        tier_rates: Optional[Mapping[str, float]] = None,
        failures: Optional[Sequence[Sequence[str]]] = None,
        degraded: Optional[Sequence[Sequence[object]]] = None,
        buffer_bytes: Optional[int] = None,
        queues_per_port: int = 1,
        scheduler: str = "fifo",
        ecn_threshold_bytes: Optional[int] = None,
        link_delay: float = 5e-6,
        trace_queues: bool = False,
        simulator: Optional[Simulator] = None,
    ) -> None:
        if num_pairs < 1:
            raise ValueError("need at least one sender/receiver pair")
        require_positive("dumbbell", edge_rate_bps=edge_rate_bps)
        if failures:
            raise ValueError(
                "dumbbell: link failures are not supported (single-path "
                "topology -- any failure partitions it); use 'degraded'")
        self.sim = simulator or Simulator()
        bottleneck_rate_bps = bottleneck_rate_bps or edge_rate_bps
        require_positive("dumbbell", bottleneck_rate_bps=bottleneck_rate_bps)
        self.tier_rates = resolve_tier_rates(
            tier_rates,
            {"host": edge_rate_bps, "trunk": bottleneck_rate_bps},
            "dumbbell",
        )
        bottleneck_rate_bps = self.tier_rates["trunk"]
        self.link_rate_bps = edge_rate_bps
        self.bottleneck_rate_bps = bottleneck_rate_bps
        if buffer_bytes is None:
            buffer_bytes = int(5.12 * KB * (num_pairs + 1) * edge_rate_bps / 1e9)

        self.base_rtt = 6 * link_delay
        self.network = Network(self.sim, bottleneck_bps=bottleneck_rate_bps,
                               base_rtt=self.base_rtt)

        def switch_config(name: str, ports: int) -> SwitchConfig:
            return SwitchConfig(
                num_ports=ports,
                queues_per_port=queues_per_port,
                port_rate_bps=edge_rate_bps,
                buffer_bytes=buffer_bytes,
                scheduler=scheduler,
                ecn_threshold_bytes=ecn_threshold_bytes,
                trace_queues=trace_queues,
                name=name,
            )

        # Port layout: port 0 of each switch is the inter-switch trunk; hosts
        # occupy ports 1..num_pairs.
        self.left = SwitchNode("left", self.sim, switch_config("left", num_pairs + 1),
                               manager_factory())
        self.right = SwitchNode("right", self.sim, switch_config("right", num_pairs + 1),
                                manager_factory())
        self.network.add_switch(self.left)
        self.network.add_switch(self.right)
        trunk_spec = LinkSpec(rate_bps=self.tier_rates["trunk"],
                              delay=link_delay)
        host_spec = LinkSpec(rate_bps=self.tier_rates["host"],
                             delay=link_delay)
        self.network.connect_switches(self.left, 0, self.right, 0,
                                      spec=trunk_spec)

        self.senders: List[int] = []
        self.receivers: List[int] = []
        for i in range(num_pairs):
            sender_id = i
            receiver_id = num_pairs + i
            sender = self.network.add_host(sender_id, self.tier_rates["host"])
            receiver = self.network.add_host(receiver_id, self.tier_rates["host"])
            self.network.connect_host_to_switch(sender, self.left, i + 1,
                                                spec=host_spec)
            self.network.connect_host_to_switch(receiver, self.right, i + 1,
                                                spec=host_spec)
            self.senders.append(sender_id)
            self.receivers.append(receiver_id)
            # Cross-switch routes go over the trunk (port 0).
            self.left.routing.add_host_route(receiver_id, 0)
            self.right.routing.add_host_route(sender_id, 0)

        self.network.apply_fabric(degraded=degraded)

    @property
    def hosts(self) -> List[int]:
        """All host ids, senders first (the workload layer's uniform view)."""
        return self.senders + self.receivers

    def all_switches(self) -> List[SwitchNode]:
        """Uniform accessor shared by every topology: all switch nodes."""
        return [self.left, self.right]

    def total_switch_drops(self) -> int:
        return sum(node.stats.total_lost_packets for node in self.all_switches())
