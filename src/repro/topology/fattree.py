"""A k-ary fat-tree fabric (Al-Fares et al., SIGCOMM 2008 numbering).

The first topology in the zoo with more than two switch stages: ``k`` pods,
each with ``k/2`` edge and ``k/2`` aggregation switches, plus ``(k/2)^2``
core switches.  Packets between pods take ``host -> edge -> agg -> core ->
agg -> edge -> host`` paths; ECMP spreads flows over the ``k/2`` aggregation
uplinks at the edge stage and the ``k/2`` core uplinks at the aggregation
stage, giving ``(k/2)^2`` equal-cost paths between hosts in different pods.

In the canonical fat-tree each edge switch serves ``k/2`` hosts (full
bisection bandwidth).  The ``oversubscription`` knob scales that host count:
``oversubscription=2.0`` doubles the hosts per edge switch, producing a 2:1
oversubscribed fabric like most production deployments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import BufferManager
from repro.netsim.link import LinkSpec
from repro.netsim.network import Network
from repro.netsim.routing import PathEnumerator, switch_salt, trace_path
from repro.netsim.switch_node import SwitchNode
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB
from repro.switchsim.switch import SwitchConfig
from repro.topology._tiers import require_positive, resolve_tier_rates


class FatTreeTopology:
    """Builds a k-ary fat-tree with multi-stage ECMP routing.

    Numbering: pods are ``0..k-1``; edge switch ``e`` of pod ``p`` has the
    global edge index ``p * (k/2) + e`` and serves hosts ``edge_index *
    hosts_per_edge .. edge_index * hosts_per_edge + hosts_per_edge - 1``.
    Edge ports ``0..hosts_per_edge-1`` face the hosts, ports
    ``hosts_per_edge..hosts_per_edge+k/2-1`` face the pod's aggregation
    switches.  Aggregation switch ``a`` of a pod uses ports ``0..k/2-1``
    towards its edges and ports ``k/2..k-1`` towards cores ``a*(k/2)+j``.
    Core switch port ``p`` faces pod ``p``.

    Args:
        k: fabric arity; must be even and at least 2.  The fabric has
            ``k`` pods, ``k^2/2 + (k/2)^2`` switches in total.
        manager_factory: callable returning a fresh buffer manager; called
            once per switch.
        hosts_per_edge: hosts attached to each edge switch.  Defaults to
            ``k/2 * oversubscription`` (``k/2`` = the canonical
            full-bisection fat-tree).
        oversubscription: edge-stage oversubscription ratio used to derive
            the default ``hosts_per_edge``; ignored when ``hosts_per_edge``
            is given explicitly.
        link_rate_bps: nominal rate of all links (hosts and fabric); the
            per-tier overrides below refine it.
        tier_rates: per-tier link-rate overrides: ``host`` (host<->edge),
            ``agg`` (edge<->agg), ``core`` (agg<->core).  Every link carries
            its tier's rate as its identity, egress ports serialize at it,
            and ECMP weights members by effective capacity.
        failures: link-failure injection: ``[a, b]`` endpoint-name pairs
            (e.g. ``["agg0_0", "core1"]``).  Both directions fail, the
            affected uplinks leave ECMP, and routing is pruned so no
            candidate path crosses a failed link.
        degraded: capacity degradations: ``[a, b, factor]`` triples with
            ``factor`` in (0, 1]; serialization and ECMP weights scale.
        buffer_bytes_per_port: shared buffer per switch = this x port count.
        queues_per_port / scheduler / ecn_threshold_bytes: passed to the
            switch configuration.
        base_rtt: end-to-end base RTT across the core; the worst-case
            inter-pod round trip crosses 12 links, so each link gets
            ``base_rtt / 12`` of propagation delay.
        trace_queues: enable queue tracing on all switches.
    """

    def __init__(
        self,
        manager_factory: Callable[[], BufferManager],
        k: int = 4,
        hosts_per_edge: Optional[int] = None,
        oversubscription: float = 1.0,
        link_rate_bps: float = 10 * GBPS,
        tier_rates: Optional[Mapping[str, float]] = None,
        failures: Optional[Sequence[Sequence[str]]] = None,
        degraded: Optional[Sequence[Sequence[object]]] = None,
        buffer_bytes_per_port: int = 512 * KB,
        queues_per_port: int = 1,
        scheduler: str = "fifo",
        ecn_threshold_bytes: Optional[int] = None,
        base_rtt: float = 120e-6,
        trace_queues: bool = False,
        simulator: Optional[Simulator] = None,
    ) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError("fat-tree arity k must be an even number >= 2")
        if oversubscription <= 0:
            raise ValueError("oversubscription must be positive")
        require_positive("fat_tree", link_rate_bps=link_rate_bps,
                         buffer_bytes_per_port=buffer_bytes_per_port,
                         base_rtt=base_rtt)
        half = k // 2
        if hosts_per_edge is None:
            hosts_per_edge = max(1, round(half * oversubscription))
        if hosts_per_edge < 1:
            raise ValueError("hosts_per_edge must be at least 1")
        self.sim = simulator or Simulator()
        self.k = k
        self.num_pods = k
        self.hosts_per_edge = hosts_per_edge
        self.link_rate_bps = link_rate_bps
        self.tier_rates = resolve_tier_rates(
            tier_rates,
            {"host": link_rate_bps, "agg": link_rate_bps,
             "core": link_rate_bps},
            "fat_tree",
        )
        self.base_rtt = base_rtt
        link_delay = base_rtt / 12.0
        host_spec = LinkSpec(rate_bps=self.tier_rates["host"], delay=link_delay)
        agg_spec = LinkSpec(rate_bps=self.tier_rates["agg"], delay=link_delay)
        core_spec = LinkSpec(rate_bps=self.tier_rates["core"], delay=link_delay)

        self.network = Network(self.sim, bottleneck_bps=link_rate_bps,
                               base_rtt=base_rtt)

        # ------------------------------------------------------------------
        # Switches
        # ------------------------------------------------------------------
        self.edges: List[SwitchNode] = []   # k * k/2, pod-major order
        self.aggs: List[SwitchNode] = []    # k * k/2, pod-major order
        self.cores: List[SwitchNode] = []   # (k/2)^2

        edge_ports = hosts_per_edge + half
        agg_ports = k
        core_ports = k

        def _make_switch(name: str, num_ports: int) -> SwitchNode:
            config = SwitchConfig(
                num_ports=num_ports,
                queues_per_port=queues_per_port,
                port_rate_bps=link_rate_bps,
                buffer_bytes=buffer_bytes_per_port * num_ports,
                scheduler=scheduler,
                ecn_threshold_bytes=ecn_threshold_bytes,
                trace_queues=trace_queues,
                name=name,
            )
            node = SwitchNode(name, self.sim, config, manager_factory())
            # Distinct per-switch salts keep the edge and aggregation ECMP
            # stages decorrelated: both have k/2 uplinks, so an unsalted
            # hash would repeat the edge's pick at the agg and leave all
            # but the "diagonal" cores idle.
            node.routing.set_salt(switch_salt(name))
            self.network.add_switch(node)
            return node

        for pod in range(k):
            for e in range(half):
                self.edges.append(_make_switch(f"edge{pod}_{e}", edge_ports))
            for a in range(half):
                self.aggs.append(_make_switch(f"agg{pod}_{a}", agg_ports))
        for c in range(half * half):
            self.cores.append(_make_switch(f"core{c}", core_ports))

        # ------------------------------------------------------------------
        # Hosts and links
        # ------------------------------------------------------------------
        self.hosts: List[int] = []
        self.host_edge: Dict[int, int] = {}  # host id -> global edge index
        for edge_idx, edge in enumerate(self.edges):
            for local in range(hosts_per_edge):
                host_id = edge_idx * hosts_per_edge + local
                host = self.network.add_host(host_id, self.tier_rates["host"])
                self.network.connect_host_to_switch(host, edge, local,
                                                    spec=host_spec)
                self.hosts.append(host_id)
                self.host_edge[host_id] = edge_idx

        for pod in range(k):
            for e in range(half):
                edge = self.edges[pod * half + e]
                for a in range(half):
                    agg = self.aggs[pod * half + a]
                    self.network.connect_switches(
                        edge, hosts_per_edge + a, agg, e, spec=agg_spec)
                    edge.routing.add_uplink(hosts_per_edge + a)
            for a in range(half):
                agg = self.aggs[pod * half + a]
                for j in range(half):
                    core = self.cores[a * half + j]
                    self.network.connect_switches(
                        agg, half + j, core, pod, spec=core_spec)
                    agg.routing.add_uplink(half + j)

        # Downward routes: aggregation switches know their pod's hosts, core
        # switches know every host's pod.  Everything else falls back to the
        # ECMP uplink spread registered above.
        for pod in range(k):
            pod_hosts = [
                (self.host_edge[h] % half, h)
                for h in self.hosts
                if self.host_edge[h] // half == pod
            ]
            for a in range(half):
                agg = self.aggs[pod * half + a]
                for edge_local, host_id in pod_hosts:
                    agg.routing.add_host_route(host_id, edge_local)
            for core in self.cores:
                for _, host_id in pod_hosts:
                    core.routing.add_host_route(host_id, pod)

        # Capacity-weighted ECMP + failure/degradation injection.  With the
        # default symmetric fabric every weight is equal and nothing is
        # pruned, so routing is byte-identical to the single-rate model.
        self.network.refresh_ecmp_weights()
        self.network.apply_fabric(failures=failures, degraded=degraded)

        self._path_enumerator = PathEnumerator()
        self._enumerated_failures = len(self.network.failed_links)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def pod_of_host(self, host_id: int) -> int:
        return self.host_edge[host_id] // (self.k // 2)

    def hosts_of_pod(self, pod: int) -> List[int]:
        return [h for h in self.hosts if self.pod_of_host(h) == pod]

    def edge_of_host(self, host_id: int) -> SwitchNode:
        return self.edges[self.host_edge[host_id]]

    def all_switches(self) -> List[SwitchNode]:
        return self.edges + self.aggs + self.cores

    def total_switch_drops(self) -> int:
        return sum(node.stats.total_lost_packets for node in self.all_switches())

    # ------------------------------------------------------------------
    # Path introspection (tests, diagnostics)
    # ------------------------------------------------------------------
    def paths_between(self, src: int, dst: int) -> List[Tuple[str, ...]]:
        """All ECMP-eligible switch paths from ``src`` to ``dst``, sorted.

        Reflects the *current* fabric: failures injected after construction
        (``network.fail_link``) invalidate the memoized enumerator, so
        returned paths never cross a failed link.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        failed = len(self.network.failed_links)
        if failed != self._enumerated_failures:
            self._path_enumerator = PathEnumerator()
            self._enumerated_failures = failed
        return self._path_enumerator.paths(self.edge_of_host(src), dst)

    def path_of_flow(self, src: int, dst: int, flow_id: int) -> Tuple[str, ...]:
        """The switch path flow ``flow_id`` actually takes (ECMP-resolved)."""
        return trace_path(self.edge_of_host(src), src, dst, flow_id)
