"""The flow specification shared by all workload generators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_flow_spec_ids = itertools.count(1)


def reset_flow_ids() -> None:
    """Restart automatic flow-id assignment from 1.

    Flow ids feed the ECMP path hash, so two runs of the same scenario only
    take identical paths if they draw identical ids.  The experiment runner
    resets the counter before every run to keep runs reproducible no matter
    how many ran earlier in the same process.
    """
    global _flow_spec_ids
    _flow_spec_ids = itertools.count(1)


@dataclass(slots=True)
class FlowSpec:
    """A single flow to be injected into the network simulator.

    Attributes:
        src / dst: host indices.
        size_bytes: application bytes to transfer.
        start_time: simulation time at which the flow opens.
        priority: traffic class (0 = highest priority).
        query_id: queries (partition-aggregate requests) group several flows;
            the QCT of a query is the completion time of its last flow.
        flow_id: unique identifier (auto-assigned).
    """

    src: int
    dst: int
    size_bytes: int
    start_time: float
    priority: int = 0
    query_id: Optional[int] = None
    flow_id: int = field(default_factory=lambda: next(_flow_spec_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.start_time < 0:
            raise ValueError("start time cannot be negative")
        if self.src == self.dst:
            raise ValueError("source and destination must differ")
