"""Hotspot traffic: Poisson flows with a skewed sender/receiver matrix.

Real datacenter traffic is not uniform -- a small set of services (storage
front-ends, parameter servers) receive a disproportionate share of the
flows.  The hotspot generator models that skew directly: a configurable
fraction of flows target a small hotspot set while the rest spread uniformly,
which stresses buffer sharing at the hotspots' egress ports far harder than
the uniform 1-to-1 pattern at the same aggregate load.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.rng import SeededRNG
from repro.workloads.distributions import EmpiricalDistribution
from repro.workloads.spec import FlowSpec


class HotspotFlowGenerator:
    """Poisson flow arrivals with a skewed destination distribution.

    Each arriving flow picks its destination from ``hotspots`` with
    probability ``hotspot_fraction`` (uniformly within the set) and from the
    full host list otherwise; the sender is uniform over the remaining
    hosts.  Sizes come from ``size_distribution`` or are fixed at
    ``flow_size_bytes``.
    """

    def __init__(
        self,
        hosts: Sequence[int],
        hotspots: Sequence[int],
        flows_per_second: float,
        rng: SeededRNG,
        hotspot_fraction: float = 0.5,
        size_distribution: Optional[EmpiricalDistribution] = None,
        flow_size_bytes: Optional[int] = None,
        priority: int = 0,
    ) -> None:
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        if not hotspots:
            raise ValueError("need at least one hotspot host")
        if any(h not in hosts for h in hotspots):
            raise ValueError("every hotspot must be one of the hosts")
        if not 0 <= hotspot_fraction <= 1:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if flows_per_second <= 0:
            raise ValueError("flow arrival rate must be positive")
        if (size_distribution is None) == (flow_size_bytes is None):
            raise ValueError(
                "give exactly one of size_distribution / flow_size_bytes")
        if flow_size_bytes is not None and flow_size_bytes <= 0:
            raise ValueError("flow_size_bytes must be positive")
        self.hosts = list(hosts)
        self.hotspots = list(hotspots)
        self.flows_per_second = flows_per_second
        self.rng = rng
        self.hotspot_fraction = hotspot_fraction
        self.size_distribution = size_distribution
        self.flow_size_bytes = flow_size_bytes
        self.priority = priority

    def _sample_size(self) -> int:
        if self.size_distribution is not None:
            return self.size_distribution.sample(self.rng)
        return int(self.flow_size_bytes)

    def generate(self, duration: float, start_time: float = 0.0) -> List[FlowSpec]:
        """All flows arriving within ``[start_time, start_time + duration)``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        flows: List[FlowSpec] = []
        t = start_time
        while True:
            t += self.rng.expovariate(self.flows_per_second)
            if t >= start_time + duration:
                break
            pool = (self.hotspots
                    if self.rng.random() < self.hotspot_fraction
                    else self.hosts)
            dst = self.rng.choice(pool)
            src = self.rng.choice(self.hosts)
            retries = 0
            while src == dst and retries < 100:
                src = self.rng.choice(self.hosts)
                retries += 1
            if src == dst:
                continue
            flows.append(
                FlowSpec(
                    src=src,
                    dst=dst,
                    size_bytes=self._sample_size(),
                    start_time=t,
                    priority=self.priority,
                )
            )
        return flows
