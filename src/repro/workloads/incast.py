"""Incast / query (partition-aggregate) traffic generation.

A query is a request fanned out from a client to ``fanout`` servers, each of
which responds with ``query_size / fanout`` bytes simultaneously.  The query
completion time (QCT) is the time until the last response finishes.  Queries
arrive according to a Poisson process.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.sim.rng import SeededRNG
from repro.workloads.spec import FlowSpec

_query_ids = itertools.count(1)


def reset_query_ids() -> None:
    """Restart automatic query-id assignment from 1 (see ``reset_flow_ids``)."""
    global _query_ids
    _query_ids = itertools.count(1)


class IncastQueryGenerator:
    """Generates incast queries from a set of servers towards client hosts."""

    def __init__(
        self,
        clients: Sequence[int],
        servers: Sequence[int],
        query_size_bytes: int,
        fanout: int,
        queries_per_second: float,
        rng: SeededRNG,
        priority: int = 0,
    ) -> None:
        if not clients or not servers:
            raise ValueError("need at least one client and one server")
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        if query_size_bytes < fanout:
            raise ValueError("query size must be at least one byte per responder")
        if queries_per_second <= 0:
            raise ValueError("query rate must be positive")
        self.clients = list(clients)
        self.servers = list(servers)
        self.query_size_bytes = query_size_bytes
        self.fanout = fanout
        self.queries_per_second = queries_per_second
        self.rng = rng
        self.priority = priority

    def _pick_servers(self, client: int) -> List[int]:
        candidates = [s for s in self.servers if s != client]
        if len(candidates) >= self.fanout:
            return self.rng.sample(candidates, self.fanout)
        # Fewer distinct servers than the fanout: reuse servers round-robin,
        # which still produces `fanout` simultaneous responses.
        picks = []
        while len(picks) < self.fanout:
            picks.extend(candidates)
        return picks[: self.fanout]

    def make_query(self, client: int, start_time: float) -> List[FlowSpec]:
        """The response flows of a single query issued by ``client``."""
        query_id = next(_query_ids)
        per_flow = max(1, self.query_size_bytes // self.fanout)
        flows = []
        for server in self._pick_servers(client):
            flows.append(
                FlowSpec(
                    src=server,
                    dst=client,
                    size_bytes=per_flow,
                    start_time=start_time,
                    priority=self.priority,
                    query_id=query_id,
                )
            )
        return flows

    def generate(self, duration: float, start_time: float = 0.0) -> List[FlowSpec]:
        """All query response flows within ``[start_time, start_time + duration)``.

        Every client runs an independent Poisson query process at
        ``queries_per_second``.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        flows: List[FlowSpec] = []
        for client in self.clients:
            t = start_time
            while True:
                t += self.rng.expovariate(self.queries_per_second)
                if t >= start_time + duration:
                    break
                flows.extend(self.make_query(client, t))
        return flows
