"""Raw packet-arrival patterns for traffic-manager-level experiments.

The P4 prototype experiments (Figures 11-12) drive the switch directly with a
long-lived flow plus a short burst; these helpers produce the corresponding
arrival schedules as ``(time, size_bytes)`` lists that can be fed straight
into :meth:`repro.switchsim.switch.SharedMemorySwitch.receive`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.units import transmission_time

Arrival = Tuple[float, int]


def constant_rate_arrivals(rate_bps: float, duration: float, packet_bytes: int = 1500,
                           start_time: float = 0.0) -> List[Arrival]:
    """Back-to-back packets at ``rate_bps`` for ``duration`` seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    gap = transmission_time(packet_bytes, rate_bps)
    arrivals = []
    t = start_time
    while t < start_time + duration:
        arrivals.append((t, packet_bytes))
        t += gap
    return arrivals


def burst_arrivals(burst_bytes: int, rate_bps: float, packet_bytes: int = 1500,
                   start_time: float = 0.0) -> List[Arrival]:
    """A burst of ``burst_bytes`` sent back-to-back at ``rate_bps``."""
    if burst_bytes <= 0:
        raise ValueError("burst size must be positive")
    arrivals = []
    gap = transmission_time(packet_bytes, rate_bps)
    t = start_time
    remaining = burst_bytes
    while remaining > 0:
        size = min(packet_bytes, remaining)
        arrivals.append((t, size))
        remaining -= size
        t += gap
    return arrivals
