"""Trace replay: turn recorded flow traces (CSV / JSON) into FlowSpecs.

Published datacenter traces (and the flow logs this repo's own campaign
store accumulates) are lists of ``(src, dst, size, start_time)`` records.
The loader accepts the two common encodings:

* **CSV** with a header row naming at least ``src, dst, size_bytes,
  start_time`` (``priority`` optional, extra columns ignored);
* **JSON**: either a list of objects with those keys or an object with a
  ``"flows"`` list (the shape ``ScenarioResult.to_dict()`` emits).

Replay can rescale time and size axes, so a production trace shrinks onto
the pure-Python simulator without editing the file.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.workloads.spec import FlowSpec

REQUIRED_FIELDS = ("src", "dst", "size_bytes", "start_time")


def load_flow_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a ``.csv`` / ``.json`` flow trace into a list of record dicts."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"flow trace {path} does not exist")
    if path.suffix.lower() == ".csv":
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            records = [dict(row) for row in reader]
    elif path.suffix.lower() == ".json":
        data = json.loads(path.read_text())
        if isinstance(data, dict):
            data = data.get("flows", [])
        if not isinstance(data, list):
            raise ValueError(f"JSON trace {path} must be a list of records "
                             "or an object with a 'flows' list")
        records = [dict(entry) for entry in data]
    else:
        raise ValueError(
            f"unsupported trace format {path.suffix!r}; use .csv or .json")
    if not records:
        raise ValueError(f"flow trace {path} contains no records")
    for i, record in enumerate(records):
        missing = [f for f in REQUIRED_FIELDS
                   if record.get(f) in (None, "")]
        if missing:
            raise ValueError(
                f"trace record {i} of {path} is missing {', '.join(missing)}")
    return records


def trace_replay_flows(
    records: Sequence[Dict[str, object]],
    time_scale: float = 1.0,
    size_scale: float = 1.0,
    time_offset: float = 0.0,
    default_priority: int = 0,
) -> List[FlowSpec]:
    """Build FlowSpecs from trace records, rescaling time and size axes.

    Each record's start time becomes ``time_offset + start_time *
    time_scale`` and its size ``max(1, size_bytes * size_scale)``.  Records
    are replayed in file order, so a given trace always consumes flow ids in
    the same order (determinism across runs and processes).
    """
    if time_scale <= 0 or size_scale <= 0:
        raise ValueError("time_scale and size_scale must be positive")
    flows: List[FlowSpec] = []
    for record in records:
        # An explicit priority of 0 (JSON int) or "0" (CSV string) must win
        # over the default -- only absent/empty fields fall back.
        priority = record.get("priority")
        if priority in (None, ""):
            priority = default_priority
        flows.append(
            FlowSpec(
                src=int(record["src"]),
                dst=int(record["dst"]),
                size_bytes=max(1, int(float(record["size_bytes"]) * size_scale)),
                start_time=time_offset + float(record["start_time"]) * time_scale,
                priority=int(priority),
            )
        )
    return flows
