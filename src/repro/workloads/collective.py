"""Collective-communication workloads: all-to-all and all-reduce.

The paper's AI-traffic experiments (Figures 18-19) use:

* **all-to-all** -- every host sends the same amount of data to every other
  host;
* **all-reduce** -- flows generated from the prevailing *double binary tree*
  algorithm (Sanders et al. 2009), where each rank exchanges reduce and
  broadcast traffic with its parent in two complementary binary trees, all
  flows having identical size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.workloads.spec import FlowSpec


def all_to_all_flows(hosts: Sequence[int], flow_size_bytes: int,
                     start_time: float = 0.0, priority: int = 0) -> List[FlowSpec]:
    """One flow of ``flow_size_bytes`` from every host to every other host."""
    if len(hosts) < 2:
        raise ValueError("all-to-all needs at least two hosts")
    flows = []
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            flows.append(
                FlowSpec(src=src, dst=dst, size_bytes=flow_size_bytes,
                         start_time=start_time, priority=priority)
            )
    return flows


def double_binary_tree(num_ranks: int) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Parent maps of two complementary binary trees over ``num_ranks`` ranks.

    Returns ``(tree_a, tree_b)``, each mapping ``rank -> parent_rank`` with the
    root mapping to itself.  Tree A is a complete binary tree rooted at rank 0
    (``parent(i) = (i - 1) // 2``); tree B is the same shape over the reversed
    rank order, so a rank that is an interior node in one tree tends to be a
    leaf in the other -- the load-balancing property the double binary tree
    algorithm relies on.
    """
    if num_ranks < 2:
        raise ValueError("need at least two ranks")

    tree_a: Dict[int, int] = {}
    tree_b: Dict[int, int] = {}
    for i in range(num_ranks):
        tree_a[i] = 0 if i == 0 else (i - 1) // 2
    for i in range(num_ranks):
        # Position of rank i in the reversed order.
        pos = num_ranks - 1 - i
        parent_pos = 0 if pos == 0 else (pos - 1) // 2
        tree_b[i] = num_ranks - 1 - parent_pos
    return tree_a, tree_b


def all_reduce_flows(hosts: Sequence[int], flow_size_bytes: int,
                     start_time: float = 0.0, priority: int = 0) -> List[FlowSpec]:
    """Flows of one all-reduce round using the double binary tree algorithm.

    Half of the data moves through each tree.  Every parent/child edge carries
    one flow per direction (reduce up, broadcast down), with identical flow
    sizes, as in the paper's all-reduce traffic.
    """
    hosts = list(hosts)
    n = len(hosts)
    if n < 2:
        raise ValueError("all-reduce needs at least two hosts")
    tree_a, tree_b = double_binary_tree(n)
    flows: List[FlowSpec] = []
    half = max(1, flow_size_bytes // 2)
    for tree in (tree_a, tree_b):
        for rank, parent in tree.items():
            if rank == parent:
                continue
            src, dst = hosts[rank], hosts[parent]
            # Reduce: child -> parent; Broadcast: parent -> child.
            flows.append(FlowSpec(src=src, dst=dst, size_bytes=half,
                                  start_time=start_time, priority=priority))
            flows.append(FlowSpec(src=dst, dst=src, size_bytes=half,
                                  start_time=start_time, priority=priority))
    return flows
