"""Empirical flow-size distributions and load arithmetic.

The paper's background traffic follows the *web-search* workload of the DCTCP
paper (Alizadeh et al., SIGCOMM 2010); the all-to-all / all-reduce experiments
use fixed-size flows.  The distributions below are the standard published CDFs
used by a long line of datacenter-transport papers.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.sim.rng import SeededRNG


class EmpiricalDistribution:
    """An empirical CDF over flow sizes with inverse-transform sampling.

    The inverse CDF interpolates linearly *within* segments and treats all
    probability mass below the first CDF point as a point mass at
    ``sizes[0]`` (the published CDFs list the minimum observed flow size
    first, so there is nothing to interpolate towards below it).  ``sample``,
    ``mean`` and ``percentiles`` all evaluate the same inverse CDF
    (:meth:`quantile`), so the analytic mean equals the expectation of the
    sampler by construction -- the regression tests pin this.

    Args:
        points: (size_bytes, cumulative_probability) pairs, strictly
            increasing in both coordinates, with the last probability == 1.0.
    """

    def __init__(self, points: Sequence[Tuple[float, float]], name: str = "custom") -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if any(b <= a for a, b in zip(sizes, sizes[1:], strict=False)):
            raise ValueError("sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:], strict=False)):
            raise ValueError("probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("last probability must be 1.0")
        self.name = name
        self._sizes = sizes
        self._probs = probs

    def quantile(self, p: float) -> float:
        """The inverse CDF at cumulative probability ``p`` (0-1), in bytes.

        This is the single definition of the distribution's shape;
        :meth:`sample`, :meth:`mean` and :meth:`percentiles` are all derived
        from it.
        """
        if not 0 <= p <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        idx = bisect.bisect_left(self._probs, p)
        if idx == 0:
            # All mass at or below the first CDF point: point mass at the
            # distribution's minimum size.
            return float(self._sizes[0])
        if idx >= len(self._probs):  # p == 1.0 handled by bisect; guard only
            return float(self._sizes[-1])
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        s0, s1 = self._sizes[idx - 1], self._sizes[idx]
        if p1 == p0:
            return float(s1)
        frac = (p - p0) / (p1 - p0)
        return s0 + frac * (s1 - s0)

    def sample(self, rng: SeededRNG) -> int:
        """Draw one flow size in bytes by inverse-transform sampling."""
        return max(1, int(self.quantile(rng.random())))

    def mean(self) -> float:
        """Mean flow size: the exact integral of :meth:`quantile` over [0, 1].

        The first segment contributes ``probs[0] * sizes[0]`` (point mass at
        the minimum size, matching the sampler); every later segment
        contributes its mass times the segment midpoint (the integral of the
        linear interpolation).
        """
        total = self._probs[0] * (self._sizes[0] + self._sizes[0]) / 2.0
        prev_size, prev_prob = self._sizes[0], self._probs[0]
        for size, prob in zip(self._sizes[1:], self._probs[1:], strict=True):
            mass = prob - prev_prob
            total += mass * (size + prev_size) / 2.0
            prev_size, prev_prob = size, prob
        return total

    def percentiles(self, ps: Sequence[float]) -> List[float]:
        """Flow sizes at the requested cumulative probabilities (0-1).

        Interpolates within CDF segments exactly like :meth:`sample`'s
        inverse transform (it used to return raw bucket edges, which
        disagreed with the sampler everywhere strictly inside a segment).
        """
        return [self.quantile(p) for p in ps]


#: Web-search workload (DCTCP paper, Figure 5 therein).  Sizes in bytes.
WEB_SEARCH_DISTRIBUTION = EmpiricalDistribution(
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.00),
    ],
    name="web_search",
)

#: Data-mining workload (VL2 / Greenberg et al.), heavier-tailed.
DATA_MINING_DISTRIBUTION = EmpiricalDistribution(
    [
        (100, 0.50),
        (1_000, 0.60),
        (10_000, 0.70),
        (100_000, 0.80),
        (1_000_000, 0.90),
        (10_000_000, 0.97),
        (1_000_000_000, 1.00),
    ],
    name="data_mining",
)


def flows_per_second_for_load(load: float, link_rate_bps: float,
                              mean_flow_bytes: float, num_senders: int = 1) -> float:
    """Poisson flow arrival rate per sender that produces the target load.

    ``load`` is the fraction of ``link_rate_bps`` consumed in aggregate by
    ``num_senders`` senders generating flows with the given mean size.
    """
    if not 0 < load:
        raise ValueError("load must be positive")
    if link_rate_bps <= 0 or mean_flow_bytes <= 0 or num_senders <= 0:
        raise ValueError("rates, sizes and sender counts must be positive")
    aggregate_bytes_per_sec = load * link_rate_bps / 8.0
    return aggregate_bytes_per_sec / mean_flow_bytes / num_senders
