"""Poisson background-flow generation (the paper's web-search background)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.rng import SeededRNG
from repro.workloads.distributions import EmpiricalDistribution
from repro.workloads.spec import FlowSpec


class PoissonFlowGenerator:
    """Generates background flows with Poisson arrivals and empirical sizes.

    Sources and destinations are drawn uniformly at random from ``hosts``
    (1-to-1 pattern), re-drawing until they differ, which matches the paper's
    DPDK and ns-3 background traffic setup.
    """

    def __init__(
        self,
        hosts: Sequence[int],
        size_distribution: EmpiricalDistribution,
        flows_per_second: float,
        rng: SeededRNG,
        priority: int = 0,
        receivers: Optional[Sequence[int]] = None,
    ) -> None:
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        if flows_per_second <= 0:
            raise ValueError("flow arrival rate must be positive")
        self.hosts = list(hosts)
        self.receivers = list(receivers) if receivers is not None else None
        self.size_distribution = size_distribution
        self.flows_per_second = flows_per_second
        self.rng = rng
        self.priority = priority

    def generate(self, duration: float, start_time: float = 0.0) -> List[FlowSpec]:
        """All background flows arriving within ``[start_time, start_time + duration)``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        flows: List[FlowSpec] = []
        t = start_time
        while True:
            t += self.rng.expovariate(self.flows_per_second)
            if t >= start_time + duration:
                break
            src = self.rng.choice(self.hosts)
            dst_pool = self.receivers if self.receivers is not None else self.hosts
            dst = self.rng.choice(dst_pool)
            retries = 0
            while dst == src and retries < 100:
                dst = self.rng.choice(dst_pool)
                retries += 1
            if dst == src:
                continue
            flows.append(
                FlowSpec(
                    src=src,
                    dst=dst,
                    size_bytes=self.size_distribution.sample(self.rng),
                    start_time=t,
                    priority=self.priority,
                )
            )
        return flows
