"""Permutation traffic: every host sends one flow, every host receives one.

The classic fabric stress pattern: a permutation matrix keeps every host NIC
busy in both directions while concentrating nothing, so any loss or slowdown
is attributable to the fabric (ECMP imbalance, oversubscription) rather than
to endpoint contention.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.rng import SeededRNG
from repro.workloads.spec import FlowSpec


def random_derangement(items: Sequence[int], rng: SeededRNG) -> List[int]:
    """A uniformly random permutation of ``items`` with no fixed point.

    Rejection-samples shuffles, which needs ``e ~ 2.72`` attempts on average
    and is deterministic for a given rng stream.
    """
    if len(items) < 2:
        raise ValueError("need at least two items to derange")
    items = list(items)
    while True:
        shuffled = list(items)
        rng.shuffle(shuffled)
        if all(a != b for a, b in zip(items, shuffled, strict=True)):
            return shuffled


def permutation_flows(
    hosts: Sequence[int],
    flow_size_bytes: int,
    rng: Optional[SeededRNG] = None,
    pattern: str = "random",
    shift: int = 1,
    start_time: float = 0.0,
    priority: int = 0,
) -> List[FlowSpec]:
    """One flow per host following a permutation with no self-sends.

    ``pattern="random"`` draws a random derangement from ``rng``;
    ``pattern="shift"`` sends host ``i`` to host ``(i + shift) mod n`` (the
    deterministic ring permutation, useful for pinning exact ECMP paths).
    """
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    if flow_size_bytes <= 0:
        raise ValueError("flow_size_bytes must be positive")
    hosts = list(hosts)
    if pattern == "random":
        if rng is None:
            raise ValueError("pattern='random' needs an rng")
        receivers = random_derangement(hosts, rng)
    elif pattern == "shift":
        if shift % len(hosts) == 0:
            raise ValueError("shift must not be a multiple of the host count")
        receivers = [hosts[(i + shift) % len(hosts)] for i in range(len(hosts))]
    else:
        raise ValueError(f"unknown permutation pattern {pattern!r}")
    return [
        FlowSpec(src=src, dst=dst, size_bytes=flow_size_bytes,
                 start_time=start_time, priority=priority)
        for src, dst in zip(hosts, receivers, strict=True)
    ]
