"""Datacenter workload generators used by the paper's evaluation.

All generators produce lists of :class:`FlowSpec` (who sends how many bytes to
whom, starting when, in which traffic class), which the network simulator
turns into transport connections.
"""

from repro.workloads.spec import FlowSpec, reset_flow_ids
from repro.workloads.distributions import (
    DATA_MINING_DISTRIBUTION,
    WEB_SEARCH_DISTRIBUTION,
    EmpiricalDistribution,
    flows_per_second_for_load,
)
from repro.workloads.poisson import PoissonFlowGenerator
from repro.workloads.incast import IncastQueryGenerator, reset_query_ids
from repro.workloads.collective import all_reduce_flows, all_to_all_flows, double_binary_tree
from repro.workloads.burst import burst_arrivals, constant_rate_arrivals
from repro.workloads.hotspot import HotspotFlowGenerator
from repro.workloads.permutation import permutation_flows, random_derangement
from repro.workloads.trace import load_flow_trace, trace_replay_flows


def reset_workload_ids() -> None:
    """Restart flow- and query-id assignment; call before a reproducible run."""
    reset_flow_ids()
    reset_query_ids()

__all__ = [
    "DATA_MINING_DISTRIBUTION",
    "EmpiricalDistribution",
    "FlowSpec",
    "HotspotFlowGenerator",
    "IncastQueryGenerator",
    "PoissonFlowGenerator",
    "WEB_SEARCH_DISTRIBUTION",
    "all_reduce_flows",
    "all_to_all_flows",
    "burst_arrivals",
    "constant_rate_arrivals",
    "double_binary_tree",
    "flows_per_second_for_load",
    "load_flow_trace",
    "permutation_flows",
    "random_derangement",
    "reset_flow_ids",
    "reset_query_ids",
    "reset_workload_ids",
    "trace_replay_flows",
]
