"""ANSI terminal dashboards for live scenario and campaign runs.

Two boards live here, both in the spirit of the FM16 simulator's status
board: repaint-in-place when the stream is a TTY, degrade to plain
append-only progress lines otherwise (pipes, CI logs).

* :class:`LiveDashboard` plugs into ``TelemetryBus.on_sample`` and renders
  clock progress, events/sec, fabric buffer occupancy (current and peak),
  the top-N hottest ports and the admit/drop totals while a scenario runs
  (``python -m repro.scenario run --live``).
* :class:`ShardDashboard` plugs into the sharded executor's round loop
  (``python -m repro.scenario run --live --shards N``): worker-process
  telemetry buses are unobservable from the parent, so it renders the
  per-round :class:`~repro.sim.shard.ShardRound` snapshots instead --
  global clock progress plus one row per shard (local time, events,
  handoffs).
* :class:`CampaignBoard` is a campaign progress callback
  (``python -m repro.campaign run --live``) rendering one row per
  experiment with done/ok/failed/cached counts and throughput.

Rendering is throttled on wall-clock time so a microsecond sampling
cadence cannot flood the terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Sequence, TextIO

_HIDE_CURSOR = "\x1b[?25l"
_SHOW_CURSOR = "\x1b[?25h"
_CLEAR_LINE = "\x1b[2K"


def _cursor_up(lines: int) -> str:
    return f"\x1b[{lines}F" if lines else ""


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:.1f}MB"
    if nbytes >= 1e3:
        return f"{nbytes / 1e3:.1f}KB"
    return f"{int(nbytes)}B"


def _fmt_rate(per_sec: float) -> str:
    if per_sec >= 1e6:
        return f"{per_sec / 1e6:.2f}M"
    if per_sec >= 1e3:
        return f"{per_sec / 1e3:.1f}k"
    return f"{per_sec:.0f}"


class _Board:
    """Shared repaint-in-place / append-only plumbing of both boards."""

    def __init__(self, stream: Optional[TextIO] = None,
                 use_ansi: Optional[bool] = None,
                 min_refresh_s: float = 0.2) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if use_ansi is None:
            use_ansi = bool(getattr(self.stream, "isatty", lambda: False)())
        self.use_ansi = use_ansi
        self.min_refresh_s = min_refresh_s
        self._painted_lines = 0
        self._last_paint = 0.0

    def _due(self) -> bool:
        return time.perf_counter() - self._last_paint >= self.min_refresh_s

    def _paint(self, lines: Sequence[str]) -> None:
        self._last_paint = time.perf_counter()
        out = self.stream
        if self.use_ansi:
            out.write(_HIDE_CURSOR + _cursor_up(self._painted_lines))
            for line in lines:
                out.write(_CLEAR_LINE + line + "\n")
            out.write(_SHOW_CURSOR)
            self._painted_lines = len(lines)
        else:
            # Non-TTY fallback: one compact line per refresh.
            out.write(" | ".join(line.strip() for line in lines if line.strip())
                      + "\n")
        out.flush()


class LiveDashboard(_Board):
    """A ``TelemetryBus.on_sample`` hook rendering a live scenario board."""

    def __init__(self, label: str, stream: Optional[TextIO] = None,
                 use_ansi: Optional[bool] = None,
                 min_refresh_s: float = 0.2, top_ports: int = 4) -> None:
        super().__init__(stream=stream, use_ansi=use_ansi,
                         min_refresh_s=min_refresh_s)
        self.label = label
        self.top_ports = top_ports
        self._rate_wall = None  # type: Optional[float]
        self._rate_events = 0
        self._events_per_sec = 0.0

    def __call__(self, bus) -> None:
        wall = time.perf_counter()
        events = bus.events_now()
        if self._rate_wall is not None and wall > self._rate_wall:
            self._events_per_sec = ((events - self._rate_events)
                                    / (wall - self._rate_wall))
        self._rate_wall, self._rate_events = wall, events
        if self._due():
            self._paint(self._lines(bus))

    def finish(self, bus) -> None:
        """Paint the final state (always) and leave the board on screen."""
        self._paint(self._lines(bus, final=True))

    def _lines(self, bus, final: bool = False) -> List[str]:
        clock_ms = bus.clock * 1e3
        horizon_ms = bus.horizon * 1e3
        fraction = min(1.0, bus.clock / bus.horizon) if bus.horizon else 1.0
        bar_cells = 24
        filled = int(round(fraction * bar_cells))
        bar = "#" * filled + "-" * (bar_cells - filled)
        state = "done" if final else "live"
        totals = bus.totals()
        lines = [
            f"[{state}] {self.label}",
            (f"  clock   {clock_ms:9.3f} / {horizon_ms:.3f} ms "
             f"[{bar}] {fraction * 100:5.1f}%"),
            (f"  events  {bus.events_now():,} executed   "
             f"{_fmt_rate(self._events_per_sec)} ev/s   "
             f"samples {bus.ticks}"),
            (f"  buffer  {_fmt_bytes(bus.total_occupancy_bytes())} now   "
             f"{_fmt_bytes(bus.peak_occupancy_bytes())} peak"),
            (f"  packets admitted {totals['admitted']:,}   "
             f"dropped {totals['dropped']:,}   "
             f"expelled {totals['expelled']:,}"),
        ]
        hottest = bus.hottest_ports(self.top_ports)
        if hottest:
            lines.append("  ports   " + "  ".join(
                f"{name} {_fmt_bytes(backlog)}" for name, backlog in hottest))
        return lines


class ShardDashboard(_Board):
    """A sharded-run round hook rendering per-shard live progress.

    The ``shard_aware`` flag tells :func:`repro.sim.shard.run_sharded` to
    feed this object a :class:`~repro.sim.shard.ShardRound` after every
    conservative exchange (plain telemetry hooks are ignored there -- the
    buses live in the worker processes).
    """

    shard_aware = True

    def __init__(self, label: str, stream: Optional[TextIO] = None,
                 use_ansi: Optional[bool] = None,
                 min_refresh_s: float = 0.2) -> None:
        super().__init__(stream=stream, use_ansi=use_ansi,
                         min_refresh_s=min_refresh_s)
        self.label = label
        self._rate_wall = None  # type: Optional[float]
        self._rate_events = 0
        self._events_per_sec = 0.0
        self._last_round = None

    def __call__(self, snapshot) -> None:
        self._last_round = snapshot
        wall = time.perf_counter()
        events = sum(row["events"] for row in snapshot.shards)
        if self._rate_wall is not None and wall > self._rate_wall:
            self._events_per_sec = ((events - self._rate_events)
                                    / (wall - self._rate_wall))
        self._rate_wall, self._rate_events = wall, events
        if self._due():
            self._paint(self._lines())

    def finish(self, telemetry=None) -> None:
        """Paint the final state (always) and leave the board on screen.

        The merged telemetry document is accepted for interface parity with
        :meth:`LiveDashboard.finish` but carries no live state to render.
        """
        del telemetry
        if self._last_round is not None:
            self._paint(self._lines(final=True))

    def _lines(self, final: bool = False) -> List[str]:
        snap = self._last_round
        clock = min(snap.horizon, snap.final_horizon)
        fraction = (min(1.0, clock / snap.final_horizon)
                    if snap.final_horizon else 1.0)
        if final:
            fraction = 1.0
        bar_cells = 24
        filled = int(round(fraction * bar_cells))
        bar = "#" * filled + "-" * (bar_cells - filled)
        state = "done" if final else "live"
        total_events = sum(row["events"] for row in snap.shards)
        total_handoffs = sum(row["handoffs"] for row in snap.shards)
        lines = [
            f"[{state}] {self.label}  ({len(snap.shards)} shards)",
            (f"  clock   {clock * 1e3:9.3f} / {snap.final_horizon * 1e3:.3f} ms "
             f"[{bar}] {fraction * 100:5.1f}%"),
            (f"  rounds  {snap.round:,}   events {total_events:,}   "
             f"{_fmt_rate(self._events_per_sec)} ev/s   "
             f"handoffs {total_handoffs:,}"),
        ]
        for row in snap.shards:
            lines.append(
                f"  shard {row['shard']}  t={row['now'] * 1e3:9.3f}ms  "
                f"events {row['events']:,}  handoffs {row['handoffs']:,}")
        return lines


class CampaignBoard(_Board):
    """A campaign progress callback with one live row per experiment."""

    def __init__(self, runs: Sequence, stream: Optional[TextIO] = None,
                 use_ansi: Optional[bool] = None,
                 min_refresh_s: float = 0.2) -> None:
        super().__init__(stream=stream, use_ansi=use_ansi,
                         min_refresh_s=min_refresh_s)
        #: Per-experiment totals, in first-seen run order.
        self._total: Dict[str, int] = {}
        for spec in runs:
            self._total[spec.experiment] = self._total.get(spec.experiment, 0) + 1
        self._done: Dict[str, int] = {name: 0 for name in self._total}
        self._failed: Dict[str, int] = {name: 0 for name in self._total}
        self._cached: Dict[str, int] = {name: 0 for name in self._total}
        self._elapsed: Dict[str, float] = {name: 0.0 for name in self._total}
        self._completed = 0
        self._overall_total = len(runs)
        self._start = time.perf_counter()
        #: Farm worker health rows (set via :meth:`update_workers`).
        self._workers: List[Dict[str, object]] = []

    def update_workers(self, rows: Sequence[Dict[str, object]]) -> None:
        """Record farm worker health for the next repaint.

        Only stores the rows -- painting happens on the main-thread
        progress callback, so farm dispatch threads never write to the
        terminal concurrently.
        """
        self._workers = [dict(row) for row in rows]

    def __call__(self, completed: int, total: int, outcome) -> None:
        name = outcome.spec.experiment
        self._overall_total = total
        self._completed = completed
        self._done[name] = self._done.get(name, 0) + 1
        self._total.setdefault(name, 0)
        if outcome.status == "cached":
            self._cached[name] = self._cached.get(name, 0) + 1
        elif not outcome.ok:
            self._failed[name] = self._failed.get(name, 0) + 1
        self._elapsed[name] = self._elapsed.get(name, 0.0) + outcome.elapsed
        if self._due() or completed >= total:
            self._paint(self._lines())

    def finish(self) -> None:
        self._paint(self._lines())

    def _lines(self) -> List[str]:
        wall = max(1e-9, time.perf_counter() - self._start)
        rate = self._completed / wall
        remaining = self._overall_total - self._completed
        eta = remaining / rate if rate > 0 else 0.0
        lines = [
            (f"[campaign] {self._completed}/{self._overall_total} runs   "
             f"{rate:.2f} runs/s   eta {eta:4.0f}s"),
        ]
        width = max((len(name) for name in self._total), default=0)
        for name, total in self._total.items():
            done = self._done.get(name, 0)
            failed = self._failed.get(name, 0)
            cached = self._cached.get(name, 0)
            ok = done - failed
            avg = self._elapsed.get(name, 0.0) / done if done else 0.0
            row = (f"  {name.ljust(width)}  {done:>3}/{total:<3}  "
                   f"ok {ok:<3} failed {failed:<3} cached {cached:<3} "
                   f"avg {avg:6.2f}s")
            lines.append(row)
        if self._workers:
            worker_width = max(len(str(row.get("worker", "")))
                               for row in self._workers)
            for row in self._workers:
                lines.append(
                    f"  [{str(row.get('worker', '')).ljust(worker_width)}] "
                    f"ok {row.get('ok', 0):<3} failed {row.get('failed', 0):<3} "
                    f"lost {row.get('lost', 0):<2} "
                    f"{row.get('state', 'idle')}")
        return lines
