"""Queue-evolution CSV / figure emission from stored telemetry sections.

``python -m repro.telemetry plot`` accepts any JSON document that carries a
telemetry section and emits fig11-style time-series output:

* a ``ScenarioResult.to_dict()`` document (``{"telemetry": {...}}``),
* an ``ExperimentResult`` document (``{"artifacts": {"telemetry": ...}}``),
* a campaign ``ResultStore`` entry (``{"result": {"artifacts": ...}}``),
* or a bare telemetry section (``{"time": [...], "series": {...}}``).

CSV always works; ``--figure`` additionally renders a PNG when matplotlib
is installed (and degrades with a clear message when it is not -- the
container image deliberately ships without it).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, TextIO


def extract_telemetry(document: Mapping) -> Dict[str, object]:
    """Find the telemetry section in any of the stored document shapes."""
    if "series" in document and "time" in document:
        return dict(document)
    if "telemetry" in document and document["telemetry"] is not None:
        return dict(document["telemetry"])
    artifacts = document.get("artifacts")
    if isinstance(artifacts, Mapping) and artifacts.get("telemetry"):
        return dict(artifacts["telemetry"])
    result = document.get("result")
    if isinstance(result, Mapping):
        return extract_telemetry(result)
    raise ValueError(
        "no telemetry section found; expected a ScenarioResult document "
        "(key 'telemetry'), an ExperimentResult document (key "
        "'artifacts.telemetry'), a ResultStore entry (key 'result'), or a "
        "bare telemetry section (keys 'time' + 'series').  Was the scenario "
        "run with telemetry enabled (spec section 'telemetry.enabled')?")


def select_series(telemetry: Mapping, patterns: Optional[Sequence[str]] = None
                  ) -> List[str]:
    """Series names matching any of the glob ``patterns`` (all when empty)."""
    names = sorted(telemetry.get("series", {}))
    if not patterns:
        return names
    selected = [name for name in names
                if any(fnmatch(name, pattern) for pattern in patterns)]
    if not selected:
        raise ValueError(
            f"no series match {list(patterns)!r}; available: "
            + ", ".join(names))
    return selected


def write_csv(telemetry: Mapping, stream: TextIO,
              patterns: Optional[Sequence[str]] = None) -> List[str]:
    """Write ``time`` + selected series as CSV columns; returns the names."""
    names = select_series(telemetry, patterns)
    series = telemetry["series"]
    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(["time"] + names)
    for index, t in enumerate(telemetry["time"]):
        writer.writerow([t] + [series[name][index] for name in names])
    return names


def write_figure(telemetry: Mapping, path: str,
                 patterns: Optional[Sequence[str]] = None) -> None:
    """Render the selected series to ``path`` (requires matplotlib)."""
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:
        raise RuntimeError(
            "matplotlib is not installed; --figure is unavailable "
            "(the CSV output works without it)") from exc
    names = select_series(telemetry, patterns)
    times = [t * 1e3 for t in telemetry["time"]]
    fig, ax = plt.subplots(figsize=(8, 4.5))
    for name in names:
        ax.plot(times, telemetry["series"][name], label=name, linewidth=1.2)
    ax.set_xlabel("time (ms)")
    ax.set_ylabel("sampled value")
    ax.legend(fontsize=7, ncol=2)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Telemetry post-processing (queue-evolution CSV/figures)")
    sub = parser.add_subparsers(dest="command", required=True)
    plot = sub.add_parser(
        "plot", help="emit time-series CSV (and optionally a figure) "
                     "from a stored result document")
    plot.add_argument("document", type=Path,
                      help="JSON file: scenario result, experiment result, "
                           "store entry, or bare telemetry section")
    plot.add_argument("--out", type=Path, default=None,
                      help="CSV output path (default: stdout)")
    plot.add_argument("--series", nargs="*", default=None, metavar="GLOB",
                      help="series name globs, e.g. 'switch.leaf0.*' "
                           "(default: all series)")
    plot.add_argument("--figure", type=Path, default=None,
                      help="also render a PNG (requires matplotlib)")
    args = parser.parse_args(argv)

    document = json.loads(args.document.read_text())
    try:
        telemetry = extract_telemetry(document)
        if args.out is None:
            names = write_csv(telemetry, sys.stdout, args.series)
        else:
            with open(args.out, "w") as stream:
                names = write_csv(telemetry, stream, args.series)
            print(f"wrote {args.out} ({len(names)} series, "
                  f"{len(telemetry['time'])} samples)", file=sys.stderr)
        if args.figure is not None:
            write_figure(telemetry, str(args.figure), args.series)
            print(f"wrote {args.figure}", file=sys.stderr)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout piped into a pager/head that exited; not an error.
        sys.stderr.close()
        return 0
    return 0
