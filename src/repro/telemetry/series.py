"""Time-series containers for the telemetry bus and the figure harnesses.

Two shapes live here:

* :class:`RingSeries` -- the fixed-capacity ring buffer the sampling bus
  (:mod:`repro.telemetry.bus`) pushes cadence samples into.  Capacity is
  fixed at construction, so an arbitrarily long run costs bounded memory;
  once full, new samples overwrite the oldest (the ring keeps the newest
  window).
* :class:`QueueLengthSeries` / :func:`trace_to_series` -- the per-event
  queue-length series extracted from switch traces (Figures 3 and 11).
  They moved here from ``repro.metrics.timeseries`` (which re-exports
  them) so the figure harnesses and the bus share one series module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple, Union

from repro.switchsim.stats import QueueTraceSample

Number = Union[int, float]


class RingSeries:
    """A fixed-capacity ring buffer of numeric samples.

    Example:
        >>> ring = RingSeries(capacity=3)
        >>> for v in (1, 2, 3, 4):
        ...     ring.push(v)
        >>> ring.values()
        [2, 3, 4]
        >>> ring.pushed, ring.dropped
        (4, 1)
    """

    __slots__ = ("capacity", "pushed", "_slots")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        #: Total samples ever pushed (including overwritten ones).
        self.pushed = 0
        self._slots: List[Number] = [0] * capacity

    def push(self, value: Number) -> None:
        self._slots[self.pushed % self.capacity] = value
        self.pushed += 1

    def __len__(self) -> int:
        return min(self.pushed, self.capacity)

    @property
    def wrapped(self) -> bool:
        """True once at least one sample has been overwritten."""
        return self.pushed > self.capacity

    @property
    def dropped(self) -> int:
        """Samples overwritten by wraparound (oldest-first)."""
        return max(0, self.pushed - self.capacity)

    def last(self) -> Number:
        """The newest sample (0 when empty)."""
        if self.pushed == 0:
            return 0
        return self._slots[(self.pushed - 1) % self.capacity]

    def values(self) -> List[Number]:
        """Retained samples in chronological (oldest-to-newest) order."""
        if self.pushed <= self.capacity:
            return self._slots[: self.pushed]
        head = self.pushed % self.capacity
        return self._slots[head:] + self._slots[:head]


@dataclass
class QueueLengthSeries:
    """A per-queue time series of (time, length, threshold) samples."""

    queue_id: int
    times: List[float] = field(default_factory=list)
    lengths: List[int] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)

    def append(self, time: float, length: int, threshold: float) -> None:
        self.times.append(time)
        self.lengths.append(length)
        self.thresholds.append(threshold)

    @property
    def max_length(self) -> int:
        return max(self.lengths) if self.lengths else 0

    def length_at(self, time: float) -> int:
        """Queue length at (or just before) ``time`` (step interpolation)."""
        result = 0
        for t, length in zip(self.times, self.lengths, strict=True):
            if t > time:
                break
            result = length
        return result

    def sample_every(self, interval: float) -> List[Tuple[float, int]]:
        """Down-sample the series onto a regular grid for compact reporting."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self.times:
            return []
        points = []
        t = self.times[0]
        end = self.times[-1]
        while t <= end:
            points.append((t, self.length_at(t)))
            t += interval
        return points


def trace_to_series(trace: Iterable[QueueTraceSample]) -> Dict[int, QueueLengthSeries]:
    """Group a flat switch trace into per-queue series."""
    series: Dict[int, QueueLengthSeries] = {}
    for sample in trace:
        per_queue = series.setdefault(sample.queue_id, QueueLengthSeries(sample.queue_id))
        per_queue.append(sample.time, sample.length_bytes, sample.threshold_bytes)
    return series
