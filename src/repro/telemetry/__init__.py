"""Streaming telemetry: sampling bus, ring-buffer series, live dashboards.

Enable per scenario via the spec's ``telemetry`` section::

    {"telemetry": {"enabled": true}}

With telemetry off (the default) nothing here is imported by the hot path
and no probe code runs -- see :mod:`repro.telemetry.bus` for the
zero-cost-when-off design notes.
"""

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.dashboard import CampaignBoard, LiveDashboard
from repro.telemetry.series import (
    QueueLengthSeries,
    RingSeries,
    trace_to_series,
)

__all__ = [
    "CampaignBoard",
    "LiveDashboard",
    "QueueLengthSeries",
    "RingSeries",
    "TelemetryBus",
    "trace_to_series",
]
