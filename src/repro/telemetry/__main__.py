"""``python -m repro.telemetry`` entry point."""

import sys

from repro.telemetry.plot import main

if __name__ == "__main__":
    sys.exit(main())
