"""The sampling bus: pull-based ring-buffer time series over a running scenario.

The bus is *pull-based*: it never instruments the packet/event path.  On its
own sim-time ticks (self-rescheduling events at a fixed cadence) it reads
counters the hot layers already maintain -- switch occupancy and admit/drop
totals, per-port backlogs, per-priority active-queue counts, host NIC byte
counters and backlogs, link byte counters and in-flight depth, and the
simulator's event counter -- and pushes one sample per series into
fixed-capacity :class:`~repro.telemetry.series.RingSeries` rings.

Zero-cost-when-off falls out of the design: with telemetry disabled no bus
exists, no tick events are scheduled, and no hot-path code carries a
telemetry branch.  The one mid-run need -- a live ``events_executed``
reading -- is met by :meth:`Simulator.set_live_event_counting`, an
attach-time method swap in the style of ``Link.set_failed``.

Sampler ticks are read-only, so enabling telemetry cannot change simulation
outcomes: the relative order of traffic events is preserved and the clock
still ends at the horizon.  The one bookkeeping wrinkle is that ticks are
themselves events; every reported event count subtracts them (see
:meth:`TelemetryBus.events_now`), so telemetry-on and telemetry-off runs
report identical event totals.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from repro.scenario.spec import TelemetrySpec
from repro.sim.engine import Simulator
from repro.telemetry.series import RingSeries


class TelemetryBus:
    """Samples a topology's counters into ring-buffer time series.

    Args:
        spec: the scenario's telemetry section (must be enabled).
        sim: the simulator driving the run.
        horizon: the run horizon in sim seconds (``duration * run_slack``);
            with the default cadence (``spec.interval is None``) the ring
            spans exactly this window without wrapping.

    Attributes:
        interval: resolved sampling cadence in sim seconds.
        ticks: sampler ticks executed so far.
        time: ring of sim-clock sample times (the shared x-axis).
        series: name -> :class:`RingSeries`, in registration order.
        on_sample: optional hook called with the bus after every tick
            (the live dashboard plugs in here); it runs outside the
            simulation state, so it must not schedule or mutate.
    """

    def __init__(self, spec: TelemetrySpec, sim: Simulator,
                 horizon: float) -> None:
        spec.validate()
        if not spec.enabled:
            raise ValueError("TelemetryBus requires an enabled TelemetrySpec")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        self.sim = sim
        self.horizon = horizon
        self.capacity = int(spec.capacity)
        # Checked here, not only in TelemetrySpec.validate(): the bus is
        # also constructed directly (library users, the --live force-enable
        # path) with duck-typed specs whose validate() may not enforce it,
        # and capacity 1 would divide by zero in the default cadence below.
        if self.capacity < 2:
            raise ValueError(
                f"telemetry.capacity must be >= 2, got {spec.capacity!r}")
        # Default cadence: one ring slot per sample across [0, horizon],
        # so a default-configured run never wraps.
        self.interval = (float(spec.interval) if spec.interval is not None
                         else horizon / (self.capacity - 1))
        self.per_port = spec.per_port
        self.ticks = 0
        self.time = RingSeries(self.capacity)
        self.series: Dict[str, RingSeries] = {}
        self._probes: List[Tuple[RingSeries, Callable[[], float]]] = []
        self.on_sample: Optional[Callable[["TelemetryBus"], None]] = None
        self._t0 = 0.0
        self._started = False
        # Live objects kept for dashboard snapshots (never serialized).
        self._switches: List[Tuple[str, object]] = []
        #: Wall-clock time of each tick (dashboard events/sec only; kept
        #: out of to_dict() so stored documents stay deterministic).
        self.wall = RingSeries(self.capacity)

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def add_probe(self, name: str, read: Callable[[], float]) -> None:
        """Register a named zero-argument counter reader."""
        if name in self.series:
            raise ValueError(f"duplicate telemetry series {name!r}")
        ring = RingSeries(self.capacity)
        self.series[name] = ring
        self._probes.append((ring, read))

    def attach(self, topology) -> None:
        """Register the standard probe set for a scenario topology.

        Works with both topology shapes the runner produces: network-level
        builders (hosts + links + :class:`SwitchNode` wrappers) and the
        packet-level ``raw_switch`` (a bare switch, no network) -- host and
        link aggregates are only registered when a network exists.
        """
        self.add_probe("sim.events_executed", self.events_now)
        for node in topology.all_switches():
            switch = getattr(node, "switch", node)
            self._switches.append((switch.name, switch))
            self._attach_switch(switch.name, switch)
            # A bound load-balancer policy (repro.lb; never the ecmp
            # passthrough -- its node.lb stays None, keeping default
            # telemetry documents byte-identical) exposes its decision,
            # reroute and per-uplink counters.
            lb = getattr(node, "lb", None)
            if lb is not None:
                self._attach_lb(switch.name, node, lb)
        network = getattr(topology, "network", None)
        if network is not None:
            hosts = list(network.hosts.values())
            # network.links values are FabricLink records (wire + sender
            # side); the byte/in-flight counters live on the wire itself.
            links = [fabric.link for fabric in network.links.values()]
            self.add_probe(
                "hosts.sent_bytes",
                lambda: sum(h.sent_bytes for h in hosts))
            self.add_probe(
                "hosts.tx_backlog_packets",
                lambda: sum(h.tx_backlog_packets for h in hosts))
            self.add_probe(
                "links.bytes_carried",
                lambda: sum(k.bytes_carried for k in links))
            self.add_probe(
                "links.in_flight_packets",
                lambda: sum(len(k._in_flight) for k in links))

    def _attach_switch(self, name: str, switch) -> None:
        prefix = f"switch.{name}"
        self.add_probe(f"{prefix}.occupancy_bytes",
                       lambda: switch.occupancy_bytes)
        stats = switch.stats
        self.add_probe(f"{prefix}.admitted_packets",
                       lambda: stats.admitted_packets)
        self.add_probe(f"{prefix}.dropped_packets",
                       lambda: stats.total_lost_packets)
        for priority in range(switch.config.queues_per_port):
            self.add_probe(
                f"{prefix}.active_queues.p{priority}",
                lambda p=priority: switch.active_queue_count(p))
        if self.per_port:
            for port_id in range(switch.port_count):
                port = switch.port(port_id)
                self.add_probe(f"{prefix}.port{port_id}.backlog_bytes",
                               port.backlog_bytes)

    def _attach_lb(self, name: str, node, lb) -> None:
        prefix = f"switch.{name}.lb"
        self.add_probe(f"{prefix}.decisions", lambda: lb.decisions)
        self.add_probe(f"{prefix}.reroutes", lambda: lb.reroutes)
        self.add_probe(f"{prefix}.flowlets", lambda: lb.flowlets)
        if self.per_port:
            for port_id in node.routing.uplinks:
                self.add_probe(f"{prefix}.port{port_id}.packets",
                               lambda p=port_id: lb.port_packets.get(p, 0))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling: first tick now, then every ``interval`` seconds.

        Also swaps the simulator into live event counting so the
        ``sim.events_executed`` probe reads a current value mid-run.
        """
        if self._started:
            raise RuntimeError("telemetry bus already started")
        self._started = True
        self._t0 = self.sim.now
        self.sim.set_live_event_counting(True)
        self.sim.at(self._t0, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        self.time.push(self.sim.now)
        self.wall.push(_time.perf_counter())
        for ring, read in self._probes:
            ring.push(read())
        if self.on_sample is not None:
            self.on_sample(self)
        next_time = self._t0 + self.ticks * self.interval
        if next_time <= self._t0 + self.horizon:
            self.sim.at(next_time, self._tick)

    def events_now(self) -> int:
        """Traffic events executed so far, with sampler ticks subtracted.

        During a tick callback ``events_executed`` counts everything that
        ran before it, including the ``ticks - 1`` earlier sampler ticks
        (the in-progress one is counted only after its callback returns).
        """
        return self.sim.events_executed - max(0, self.ticks - 1)

    # ------------------------------------------------------------------
    # Dashboard snapshots (live objects, never serialized)
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        return self.sim.now

    def total_occupancy_bytes(self) -> int:
        return sum(sw.occupancy_bytes for _, sw in self._switches)

    def peak_occupancy_bytes(self) -> int:
        return sum(sw.stats.max_occupancy_bytes for _, sw in self._switches)

    def totals(self) -> Dict[str, int]:
        """Fabric-wide admitted / dropped / expelled packet counters."""
        out = {"admitted": 0, "dropped": 0, "expelled": 0}
        for _, sw in self._switches:
            out["admitted"] += sw.stats.admitted_packets
            out["dropped"] += sw.stats.dropped_packets
            out["expelled"] += sw.stats.expelled_packets
        return out

    def hottest_ports(self, n: int = 4) -> List[Tuple[str, int]]:
        """The ``n`` largest per-port backlogs right now, hottest first."""
        backlogs = [
            (f"{name}:p{port_id}", switch.port(port_id).backlog_bytes())
            for name, switch in self._switches
            for port_id in range(switch.port_count)
        ]
        backlogs.sort(key=lambda item: (-item[1], item[0]))
        return [item for item in backlogs[:n] if item[1] > 0]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The deterministic document persisted in ``ScenarioResult``.

        Wall-clock samples are deliberately excluded: two identical runs
        must serialize byte-identically.
        """
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "ticks": self.ticks,
            "dropped_samples": self.time.dropped,
            "time": list(self.time.values()),
            "series": {name: list(ring.values())
                       for name, ring in sorted(self.series.items())},
        }
