"""Cost models for Occamy's three hardware components (Table 1).

The models estimate FPGA resources (LUTs, flip-flops), timing, ASIC area and
power from first-principles structure counts, calibrated so that the default
configuration (a 64-queue selector on a 45 nm library) lands on the paper's
published values:

==========  =====  ==========  ===========  ==========  ==========
Module      LUTs   Flip-flops  Timing (ns)  Area (mm^2)  Power (mW)
==========  =====  ==========  ===========  ==========  ==========
Selector    1262   47          1.49         0.023        0.895
Arbiter     3      0           0.17         2.3e-5       0.003
Executor    47     7           0.38         7.3e-4       0.044
==========  =====  ==========  ===========  ==========  ==========

The absolute numbers scale with the queue count and queue-length bit width so
"what if" analyses (e.g. 128 queues, 24-bit counters) remain meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ComponentCost:
    """FPGA and ASIC cost of one hardware component."""

    name: str
    verilog_loc: int
    luts: int
    flip_flops: int
    timing_ns: float
    area_mm2: float
    power_mw: float

    def as_row(self) -> Dict[str, float]:
        """A flat dict matching the columns of Table 1."""
        return {
            "module": self.name,
            "loc": self.verilog_loc,
            "luts": self.luts,
            "flip_flops": self.flip_flops,
            "timing_ns": self.timing_ns,
            "area_mm2": self.area_mm2,
            "power_mw": self.power_mw,
        }


# Calibration constants: per-LUT area/power on the open 45nm library used by
# the paper (FreePDK45), back-solved from the published selector numbers.
_AREA_PER_LUT_MM2 = 0.023 / 1262
_POWER_PER_LUT_MW = 0.895 / 1262


class HeadDropSelectorModel:
    """Cost model of the head-drop selector (bitmap comparators + RR arbiter).

    Structure (Figure 9): one ``k``-bit comparator per queue feeding a
    ``N``-bit bitmap register, plus an ``N``-input round-robin arbiter.
    """

    def __init__(self, num_queues: int = 64, bit_width: int = 20) -> None:
        if num_queues <= 0 or bit_width <= 0:
            raise ValueError("num_queues and bit_width must be positive")
        self.num_queues = num_queues
        self.bit_width = bit_width

    def cost(self) -> ComponentCost:
        # Each k-bit magnitude comparator maps to roughly k/2 6-input LUTs;
        # the round-robin arbiter adds ~ 9 LUTs per input (priority encoding
        # plus pointer update), calibrated to hit ~1262 LUTs at N=64, k=20.
        comparator_luts = self.num_queues * math.ceil(self.bit_width / 2)
        arbiter_luts = self.num_queues * 9 + 46
        luts = comparator_luts + arbiter_luts
        # Flip-flops: the pointer register (log2 N bits) plus pipeline
        # registers on the grant index and valid bits.
        flip_flops = math.ceil(math.log2(self.num_queues)) * 2 + 35
        # Timing: comparator depth + arbiter priority-chain depth.
        timing_ns = 0.55 + 0.12 * math.log2(self.bit_width) + 0.07 * math.log2(self.num_queues)
        area = luts * _AREA_PER_LUT_MM2
        power = luts * _POWER_PER_LUT_MW
        return ComponentCost(
            name="selector",
            verilog_loc=215,
            luts=luts,
            flip_flops=flip_flops,
            timing_ns=round(timing_ns, 2),
            area_mm2=round(area, 4),
            power_mw=round(power, 3),
        )


class PriorityArbiterModel:
    """Cost model of the 2-input fixed-priority arbiter (scheduler vs drop)."""

    def cost(self) -> ComponentCost:
        return ComponentCost(
            name="arbiter",
            verilog_loc=11,
            luts=3,
            flip_flops=0,
            timing_ns=0.17,
            area_mm2=2.3e-5,
            power_mw=0.003,
        )


class HeadDropExecutorModel:
    """Cost model of the head-drop executor (PD dequeue + pointer recycling)."""

    def __init__(self, parallel_pointer_lists: int = 1) -> None:
        if parallel_pointer_lists <= 0:
            raise ValueError("parallel_pointer_lists must be positive")
        self.parallel_pointer_lists = parallel_pointer_lists

    def cost(self) -> ComponentCost:
        # The executor is a small FSM plus pointer-list head/tail muxes; each
        # additional parallel pointer list adds a mux leg and a register.
        base_luts = 47
        base_ffs = 7
        luts = base_luts + 12 * (self.parallel_pointer_lists - 1)
        ffs = base_ffs + 2 * (self.parallel_pointer_lists - 1)
        return ComponentCost(
            name="executor",
            verilog_loc=60,
            luts=luts,
            flip_flops=ffs,
            timing_ns=0.38,
            area_mm2=round(luts * _AREA_PER_LUT_MM2, 6),
            power_mw=round(luts * _POWER_PER_LUT_MW, 3),
        )


@dataclass
class OccamyHardwareReport:
    """Aggregate hardware report for all Occamy components."""

    components: List[ComponentCost] = field(default_factory=list)

    @property
    def total_luts(self) -> int:
        return sum(c.luts for c in self.components)

    @property
    def total_flip_flops(self) -> int:
        return sum(c.flip_flops for c in self.components)

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def total_power_mw(self) -> float:
        return sum(c.power_mw for c in self.components)

    @property
    def critical_path_ns(self) -> float:
        return max((c.timing_ns for c in self.components), default=0.0)

    def cycles_per_expulsion(self, clock_ghz: float = 1.0) -> int:
        """Clock cycles needed for the selector to produce one victim index."""
        cycle_ns = 1.0 / clock_ghz
        return max(1, math.ceil(self.critical_path_ns / cycle_ns))

    def rows(self) -> List[Dict[str, float]]:
        return [c.as_row() for c in self.components]


def occamy_hardware_report(num_queues: int = 64, bit_width: int = 20,
                           parallel_pointer_lists: int = 1) -> OccamyHardwareReport:
    """Build the Table 1 report for a given switch configuration."""
    return OccamyHardwareReport(
        components=[
            HeadDropSelectorModel(num_queues, bit_width).cost(),
            PriorityArbiterModel().cost(),
            HeadDropExecutorModel(parallel_pointer_lists).cost(),
        ]
    )
