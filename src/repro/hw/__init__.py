"""Analytical hardware-cost models for Occamy's circuits and their alternatives.

The paper evaluates the hardware cost of the head-drop selector, arbiter and
executor with Vivado (FPGA LUTs/flip-flops) and Design Compiler on a 45 nm
library (timing, area, power) -- Table 1.  Neither tool is available here, so
this package provides first-principles gate-count models calibrated against
the published numbers, plus a functional + cost model of the binary
comparator-tree Maximum Finder that makes Pushout expensive (Difficulty 3,
Figure 4).
"""

from repro.hw.maxfinder import MaximumFinder, MaxFinderCost
from repro.hw.arbiter import FixedPriorityArbiter, RoundRobinArbiterCircuit
from repro.hw.components import (
    ComponentCost,
    HeadDropExecutorModel,
    HeadDropSelectorModel,
    OccamyHardwareReport,
    PriorityArbiterModel,
    occamy_hardware_report,
)

__all__ = [
    "ComponentCost",
    "FixedPriorityArbiter",
    "HeadDropExecutorModel",
    "HeadDropSelectorModel",
    "MaxFinderCost",
    "MaximumFinder",
    "OccamyHardwareReport",
    "PriorityArbiterModel",
    "RoundRobinArbiterCircuit",
    "occamy_hardware_report",
]
