"""Bit-level functional models of the arbiters used by Occamy.

Two arbiters appear in the design (Figure 8/9):

* a **round-robin arbiter** inside the head-drop selector, iterating over the
  bitmap of over-allocated queues;
* a **fixed-priority arbiter** that resolves read conflicts between the output
  scheduler and the head-drop selector -- the scheduler always wins, so
  expulsion can never delay line-rate forwarding.

These classes mirror the request/grant semantics of the hardware components so
they can be tested exhaustively and reused by the cost models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RoundRobinArbiterCircuit:
    """A programmable-priority (round-robin) arbiter over ``n`` request lines."""

    def __init__(self, num_requests: int) -> None:
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        self.num_requests = num_requests
        self._pointer = 0
        self.grant_history: List[int] = []

    @property
    def pointer(self) -> int:
        return self._pointer

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant the first asserted request at or after the pointer."""
        if len(requests) != self.num_requests:
            raise ValueError(
                f"expected {self.num_requests} request lines, got {len(requests)}"
            )
        for offset in range(self.num_requests):
            idx = (self._pointer + offset) % self.num_requests
            if requests[idx]:
                self._pointer = (idx + 1) % self.num_requests
                self.grant_history.append(idx)
                return idx
        return None

    def reset(self) -> None:
        self._pointer = 0
        self.grant_history.clear()


class FixedPriorityArbiter:
    """A two-input fixed-priority arbiter: the scheduler always beats head-drop.

    The arbiter is stateless combinational logic; the class simply records how
    often head drops were blocked so experiments can report contention.
    """

    def __init__(self) -> None:
        self.scheduler_grants = 0
        self.headdrop_grants = 0
        self.headdrop_blocked = 0

    def arbitrate(self, scheduler_request: bool, headdrop_request: bool) -> Optional[str]:
        """Return which requester wins the memory read port this cycle."""
        if scheduler_request:
            self.scheduler_grants += 1
            if headdrop_request:
                self.headdrop_blocked += 1
            return "scheduler"
        if headdrop_request:
            self.headdrop_grants += 1
            return "headdrop"
        return None

    def blocking_fraction(self) -> float:
        """Fraction of head-drop requests that had to wait for the scheduler."""
        total = self.headdrop_grants + self.headdrop_blocked
        if total == 0:
            return 0.0
        return self.headdrop_blocked / total
