"""The binary comparator-tree Maximum Finder (Figure 4) and its cost.

Pushout needs to know the longest queue at all times.  The standard circuit is
a binary tree of compare-and-multiplex nodes: for ``N`` queues of ``k``-bit
lengths it needs ``N - 1`` nodes arranged in ``ceil(log2 N)`` levels.  Its area
is ``O(k * N)`` gates and -- critically -- its latency grows as
``O(log2 k * log2 N)`` gate delays, which cannot keep up with queue lengths
changing every clock cycle.  Occamy's head-drop selector replaces it with a
single row of threshold comparators plus a round-robin arbiter, whose latency
does not depend on tracking a global maximum.

This module provides both a functional model (so tests can check it actually
finds the maximum) and the cost model used by the Table 1 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class MaxFinderCost:
    """Cost summary of an N-input, k-bit maximum finder."""

    num_inputs: int
    bit_width: int
    comparator_nodes: int
    tree_levels: int
    gate_count: int
    #: Latency in units of a single 2-input gate delay.
    gate_delays: int

    def delay_ns(self, gate_delay_ns: float = 0.02) -> float:
        """Latency in nanoseconds for a given technology gate delay."""
        return self.gate_delays * gate_delay_ns


class MaximumFinder:
    """Functional + cost model of the binary comparator-tree maximum finder."""

    #: Gates in a k-bit comparator plus k-bit 2:1 multiplexer (per tree node).
    GATES_PER_BIT = 10
    #: Gate delays of a k-bit comparator stage (log-depth comparator).
    def __init__(self, num_inputs: int, bit_width: int = 20) -> None:
        if num_inputs < 2:
            raise ValueError("a maximum finder needs at least two inputs")
        if bit_width <= 0:
            raise ValueError("bit width must be positive")
        self.num_inputs = num_inputs
        self.bit_width = bit_width

    # ------------------------------------------------------------------
    # Functional behaviour
    # ------------------------------------------------------------------
    def find_max(self, values: Sequence[int]) -> Tuple[int, int]:
        """Return ``(index, value)`` of the maximum via pairwise tournament.

        Ties resolve to the lower index, as a hardware comparator tree with
        "a > b" muxes would.
        """
        if len(values) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} values, got {len(values)}"
            )
        limit = (1 << self.bit_width) - 1
        for value in values:
            if value < 0 or value > limit:
                raise ValueError(
                    f"value {value} does not fit in {self.bit_width} bits"
                )
        candidates: List[Tuple[int, int]] = list(enumerate(values))
        while len(candidates) > 1:
            next_round: List[Tuple[int, int]] = []
            for i in range(0, len(candidates) - 1, 2):
                left, right = candidates[i], candidates[i + 1]
                next_round.append(right if right[1] > left[1] else left)
            if len(candidates) % 2 == 1:
                next_round.append(candidates[-1])
            candidates = next_round
        return candidates[0]

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    @property
    def tree_levels(self) -> int:
        return math.ceil(math.log2(self.num_inputs))

    @property
    def comparator_nodes(self) -> int:
        return self.num_inputs - 1

    def cost(self) -> MaxFinderCost:
        """Area and latency cost of the comparator tree (Section 2.2)."""
        gates = self.comparator_nodes * self.bit_width * self.GATES_PER_BIT
        # Each level costs ~log2(k) gate delays for the comparator plus one
        # for the mux; the total delay is the product of levels and per-level
        # delay, i.e. O(log2 k * log2 N).
        per_level = math.ceil(math.log2(self.bit_width)) + 1
        return MaxFinderCost(
            num_inputs=self.num_inputs,
            bit_width=self.bit_width,
            comparator_nodes=self.comparator_nodes,
            tree_levels=self.tree_levels,
            gate_count=gates,
            gate_delays=self.tree_levels * per_level,
        )

    def meets_cycle_budget(self, clock_hz: float, gate_delay_ns: float = 0.02) -> bool:
        """Whether the finder settles within one clock cycle at ``clock_hz``."""
        cycle_ns = 1e9 / clock_hz
        return self.cost().delay_ns(gate_delay_ns) <= cycle_ns
