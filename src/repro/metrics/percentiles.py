"""Percentile, mean and CDF helpers used throughout the experiments."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; returns 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) using linear interpolation.

    Returns 0.0 for an empty sequence; raises ``ValueError`` for a ``p``
    outside [0, 100].
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (p / 100) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac


def summarize(values: Sequence[float]) -> dict:
    """Mean / p50 / p95 / p99 / max summary of a sample."""
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values) if values else 0.0,
    }


def cdf_points(values: Iterable[float], num_points: int = 100) -> List[Tuple[float, float]]:
    """Return ``(value, cumulative_probability)`` pairs for plotting a CDF.

    Emits exactly ``min(len(values), num_points)`` points whose ranks are
    spread evenly across the sorted sample and always include both the
    minimum and the maximum (the latter at probability 1.0).  The even index
    schedule replaces a truncating integer stride that could emit up to
    twice the requested points and sampled the tail unevenly for awkward
    sample sizes.
    """
    data = sorted(values)
    if not data:
        return []
    if num_points <= 0:
        raise ValueError("num_points must be positive")
    n = len(data)
    m = min(n, num_points)
    if m == 1:
        return [(data[-1], 1.0)]
    points: List[Tuple[float, float]] = []
    for j in range(m):
        # j-th of m ranks evenly spaced over [0, n-1]; strictly increasing
        # because (n-1)/(m-1) >= 1, with j == 0 on the min and j == m-1 on
        # the max.
        idx = round(j * (n - 1) / (m - 1))
        points.append((data[idx], (idx + 1) / n))
    return points
