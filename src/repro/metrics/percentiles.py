"""Percentile, mean and CDF helpers used throughout the experiments."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; returns 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) using linear interpolation.

    Returns 0.0 for an empty sequence; raises ``ValueError`` for a ``p``
    outside [0, 100].
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (p / 100) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac


def summarize(values: Sequence[float]) -> dict:
    """Mean / p50 / p95 / p99 / max summary of a sample."""
    return {
        "count": len(values),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values) if values else 0.0,
    }


def cdf_points(values: Iterable[float], num_points: int = 100) -> List[Tuple[float, float]]:
    """Return ``(value, cumulative_probability)`` pairs for plotting a CDF."""
    data = sorted(values)
    if not data:
        return []
    if num_points <= 0:
        raise ValueError("num_points must be positive")
    points: List[Tuple[float, float]] = []
    n = len(data)
    step = max(1, n // num_points)
    for i in range(0, n, step):
        points.append((data[i], (i + 1) / n))
    if points[-1][0] != data[-1]:
        points.append((data[-1], 1.0))
    else:
        points[-1] = (data[-1], 1.0)
    return points
