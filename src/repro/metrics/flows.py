"""Flow- and query-level completion-time metrics.

The paper reports:

* **FCT** (flow completion time) for background flows, split into "overall"
  and "small" (< 100 KB) flows;
* **QCT** (query completion time) for incast query traffic: the completion
  time of *all* flows belonging to one query;
* **slowdown**: actual completion time divided by the ideal completion time
  of the same transfer on an empty network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.percentiles import mean, percentile

#: Flows smaller than this are "small" in the paper's FCT breakdowns.
SMALL_FLOW_BYTES = 100 * 1024


def ideal_fct(size_bytes: int, bottleneck_bps: float, base_rtt: float,
              mtu_bytes: int = 1500, header_bytes: int = 40) -> float:
    """Ideal completion time of a transfer on an otherwise empty path.

    One base RTT of latency (SYN/first-window ramp is ignored, as in the
    paper's slowdown definition) plus pure serialization of the flow with
    per-MTU header overhead at the bottleneck rate.
    """
    if size_bytes <= 0:
        raise ValueError("flow size must be positive")
    if bottleneck_bps <= 0:
        raise ValueError("bottleneck rate must be positive")
    packets = -(-size_bytes // mtu_bytes)
    wire_bytes = size_bytes + packets * header_bytes
    return base_rtt + wire_bytes * 8 / bottleneck_bps


def slowdown(actual: float, ideal: float) -> float:
    """Completion-time slowdown (>= 1 in a healthy network)."""
    if ideal <= 0:
        raise ValueError("ideal completion time must be positive")
    return actual / ideal


@dataclass(slots=True)
class FlowRecord:
    """Lifetime record of a single flow."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_time: float
    finish_time: Optional[float] = None
    query_id: Optional[int] = None
    priority: int = 0

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def fct(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"flow {self.flow_id} has not completed")
        return self.finish_time - self.start_time

    @property
    def is_small(self) -> bool:
        return self.size_bytes < SMALL_FLOW_BYTES


@dataclass(slots=True)
class QueryRecord:
    """A query (partition-aggregate request) made of several incast flows."""

    query_id: int
    start_time: float
    flow_ids: List[int] = field(default_factory=list)
    finish_time: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def qct(self) -> float:
        if self.finish_time is None:
            raise ValueError(f"query {self.query_id} has not completed")
        return self.finish_time - self.start_time


class FlowStats:
    """Collects flow and query records and produces the paper's statistics."""

    def __init__(self, bottleneck_bps: float, base_rtt: float) -> None:
        self.bottleneck_bps = bottleneck_bps
        self.base_rtt = base_rtt
        self.flows: Dict[int, FlowRecord] = {}
        self.queries: Dict[int, QueryRecord] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def register_flow(self, record: FlowRecord) -> None:
        self.flows[record.flow_id] = record
        if record.query_id is not None:
            query = self.queries.setdefault(
                record.query_id, QueryRecord(record.query_id, record.start_time)
            )
            query.flow_ids.append(record.flow_id)
            query.start_time = min(query.start_time, record.start_time)

    def flow_finished(self, flow_id: int, finish_time: float) -> None:
        record = self.flows[flow_id]
        record.finish_time = finish_time
        if record.query_id is not None:
            query = self.queries[record.query_id]
            if all(self.flows[fid].completed for fid in query.flow_ids):
                query.finish_time = max(
                    self.flows[fid].finish_time for fid in query.flow_ids  # type: ignore[misc]
                )

    # ------------------------------------------------------------------
    # Selection helpers
    # ------------------------------------------------------------------
    def completed_flows(self, query_traffic: Optional[bool] = None,
                        small_only: bool = False) -> List[FlowRecord]:
        result = []
        for record in self.flows.values():
            if not record.completed:
                continue
            if query_traffic is True and record.query_id is None:
                continue
            if query_traffic is False and record.query_id is not None:
                continue
            if small_only and not record.is_small:
                continue
            result.append(record)
        return result

    def completed_queries(self) -> List[QueryRecord]:
        return [q for q in self.queries.values() if q.completed]

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def fct_values(self, **kwargs) -> List[float]:
        return [record.fct for record in self.completed_flows(**kwargs)]

    def fct_slowdowns(self, **kwargs) -> List[float]:
        values = []
        for record in self.completed_flows(**kwargs):
            ideal = ideal_fct(record.size_bytes, self.bottleneck_bps, self.base_rtt)
            values.append(slowdown(record.fct, ideal))
        return values

    def qct_values(self) -> List[float]:
        return [query.qct for query in self.completed_queries()]

    def qct_slowdowns(self) -> List[float]:
        values = []
        for query in self.completed_queries():
            total_bytes = sum(self.flows[fid].size_bytes for fid in query.flow_ids)
            ideal = ideal_fct(total_bytes, self.bottleneck_bps, self.base_rtt)
            values.append(slowdown(query.qct, ideal))
        return values

    def average_qct(self) -> float:
        return mean(self.qct_values())

    def p99_qct(self) -> float:
        return percentile(self.qct_values(), 99)

    def average_fct(self, **kwargs) -> float:
        return mean(self.fct_values(**kwargs))

    def p99_fct(self, **kwargs) -> float:
        return percentile(self.fct_values(**kwargs), 99)

    def completion_fraction(self) -> float:
        """Fraction of registered flows that completed (sanity diagnostics)."""
        if not self.flows:
            return 1.0
        done = sum(1 for f in self.flows.values() if f.completed)
        return done / len(self.flows)
