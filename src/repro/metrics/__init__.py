"""Measurement helpers: flow/query completion times, slowdowns, CDFs, traces."""

from repro.metrics.percentiles import cdf_points, mean, percentile, summarize
from repro.metrics.flows import (
    FlowRecord,
    FlowStats,
    QueryRecord,
    ideal_fct,
    slowdown,
)
from repro.metrics.timeseries import QueueLengthSeries, trace_to_series

__all__ = [
    "FlowRecord",
    "FlowStats",
    "QueryRecord",
    "QueueLengthSeries",
    "cdf_points",
    "ideal_fct",
    "mean",
    "percentile",
    "slowdown",
    "summarize",
    "trace_to_series",
]
