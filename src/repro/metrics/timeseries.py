"""Queue-length time series extracted from switch traces (Figures 3 and 11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.switchsim.stats import QueueTraceSample


@dataclass
class QueueLengthSeries:
    """A per-queue time series of (time, length, threshold) samples."""

    queue_id: int
    times: List[float] = field(default_factory=list)
    lengths: List[int] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)

    def append(self, time: float, length: int, threshold: float) -> None:
        self.times.append(time)
        self.lengths.append(length)
        self.thresholds.append(threshold)

    @property
    def max_length(self) -> int:
        return max(self.lengths) if self.lengths else 0

    def length_at(self, time: float) -> int:
        """Queue length at (or just before) ``time`` (step interpolation)."""
        result = 0
        for t, length in zip(self.times, self.lengths):
            if t > time:
                break
            result = length
        return result

    def sample_every(self, interval: float) -> List[Tuple[float, int]]:
        """Down-sample the series onto a regular grid for compact reporting."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self.times:
            return []
        points = []
        t = self.times[0]
        end = self.times[-1]
        while t <= end:
            points.append((t, self.length_at(t)))
            t += interval
        return points


def trace_to_series(trace: Iterable[QueueTraceSample]) -> Dict[int, QueueLengthSeries]:
    """Group a flat switch trace into per-queue series."""
    series: Dict[int, QueueLengthSeries] = {}
    for sample in trace:
        per_queue = series.setdefault(sample.queue_id, QueueLengthSeries(sample.queue_id))
        per_queue.append(sample.time, sample.length_bytes, sample.threshold_bytes)
    return series
