"""Backward-compat shim: the series types moved to :mod:`repro.telemetry`.

``QueueLengthSeries`` and ``trace_to_series`` now live in
:mod:`repro.telemetry.series`, next to the sampling bus's ring buffers, so
the figure harnesses and the telemetry subsystem share one series module.
Import from :mod:`repro.telemetry` in new code.
"""

from repro.telemetry.series import QueueLengthSeries, trace_to_series

__all__ = ["QueueLengthSeries", "trace_to_series"]
