"""Executes perf cases and records schema-versioned snapshots.

A measurement run executes each case's scenario ``warmup`` times unrecorded
(to populate code caches, import state and allocator pools) and then
``repetitions`` recorded times.  Wall time is the *minimum* over repetitions
-- the standard benchmarking estimator for the noise-free cost, since
interference can only slow a run down -- while every repetition is kept in
the snapshot for inspection.  Besides wall time the harness records the
discrete-event throughput (events/sec), packet throughput (packets/sec
through the traffic managers) and the process peak RSS.

Event and packet counts are deterministic for a given spec + seed (the
harness asserts this across repetitions), so two snapshots of the same case
are comparable event-for-event: a wall-time delta is a genuine speed change,
never a workload change.
"""

from __future__ import annotations

import gc
import json
import platform
import resource
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.perf.cases import PerfCase
from repro.scenario.runner import ScenarioRunner
from repro.workloads import reset_workload_ids

#: Bump when the snapshot layout changes incompatibly.  Version 2 added the
#: ``peak_child_rss_kb`` field: with the sharded engine the simulation
#: lives in worker processes, whose memory RUSAGE_SELF never sees.
SNAPSHOT_SCHEMA_VERSION = 2


def _maxrss_kb(who: int) -> int:
    usage = resource.getrusage(who).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - ru_maxrss in bytes
        return usage // 1024
    return usage


def peak_rss_kb() -> int:
    """Peak resident set size, in KiB: this process **plus** the largest
    reaped child.

    ``ru_maxrss`` is a high-water mark: it only ever grows over the process
    lifetime, so per-case values in one run share earlier cases' peaks.  It
    is still the right CI tripwire -- a leak or blow-up in any case raises
    the final number.  RUSAGE_CHILDREN (the max over waited-for children)
    is folded in so sharded-engine runs, whose simulators live in worker
    processes, cannot under-report; single-process runs report a few MB of
    interpreter baseline from campaign workers at most.
    """
    return _maxrss_kb(resource.RUSAGE_SELF) + _maxrss_kb(
        resource.RUSAGE_CHILDREN)


def peak_child_rss_kb() -> int:
    """Peak resident set size over reaped child processes, in KiB.

    Zero when the process never forked (the single-process engine).
    """
    return _maxrss_kb(resource.RUSAGE_CHILDREN)


@dataclass
class CaseMeasurement:
    """The recorded metrics of one case."""

    case_id: str
    wall_time_s: float
    events: int
    packets: int
    repetitions: List[float] = field(default_factory=list)
    peak_rss_kb: int = 0
    peak_child_rss_kb: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def packets_per_sec(self) -> float:
        return self.packets / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "wall_time_s": self.wall_time_s,
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "packets": self.packets,
            "packets_per_sec": round(self.packets_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "peak_child_rss_kb": self.peak_child_rss_kb,
            "repetitions_s": [round(r, 6) for r in self.repetitions],
        }


def _execute_once(case: PerfCase) -> tuple[float, int, int]:
    """One timed execution; returns (seconds, events, packets)."""
    spec = case.build()
    runner = ScenarioRunner()
    reset_workload_ids()
    start = time.perf_counter()
    result = runner.run(spec)
    elapsed = time.perf_counter() - start
    sim = result.topology.sim
    packets = sum(s.stats.arrived_packets for s in result.switches())
    return elapsed, sim.events_executed, packets


def measure_case(case: PerfCase, warmup: int = 1,
                 repetitions: int = 3) -> CaseMeasurement:
    """Measure one case: ``warmup`` unrecorded runs + ``repetitions`` timed."""
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    for _ in range(warmup):
        _execute_once(case)
    times: List[float] = []
    counts = set()
    events = packets = 0
    for _ in range(repetitions):
        elapsed, events, packets = _execute_once(case)
        times.append(elapsed)
        counts.add((events, packets))
    if len(counts) != 1:
        raise RuntimeError(
            f"case {case.case_id!r} is nondeterministic across repetitions: "
            f"saw (events, packets) counts {sorted(counts)}"
        )
    return CaseMeasurement(
        case_id=case.case_id,
        wall_time_s=min(times),
        events=events,
        packets=packets,
        repetitions=times,
        peak_rss_kb=peak_rss_kb(),
        peak_child_rss_kb=peak_child_rss_kb(),
    )


@dataclass
class OverheadMeasurement:
    """An interleaved A/B comparison of two cases (same-session, same-process).

    Container timing noise between sessions easily exceeds 10%, and even
    within one process the clock frequency drifts several percent over tens
    of seconds -- too much for a small overhead bound (telemetry's 5% gate)
    to be judged from independent min-over-reps estimates.  The drift is
    *slow*, though, so a base run and a variant run executed back-to-back
    see the same machine state: each repetition is such a pair, and the
    estimator is the **median of per-pair wall-time ratios**, immune to any
    single pair catching an interference spike.
    """

    base_id: str
    variant_id: str
    base_wall_s: float
    variant_wall_s: float
    base_repetitions: List[float] = field(default_factory=list)
    variant_repetitions: List[float] = field(default_factory=list)

    @property
    def pair_ratios(self) -> List[float]:
        """Per-pair variant/base wall-time ratios (rep *i* of each side)."""
        return [v / b for b, v in
                zip(self.base_repetitions, self.variant_repetitions,
                    strict=False) if b > 0]

    @property
    def overhead_pct(self) -> float:
        """Variant cost relative to base: median pair ratio, in percent.

        Falls back to the min-over-reps ratio when no pairs were recorded
        (e.g. a measurement reconstructed from a partial snapshot).
        """
        ratios = sorted(self.pair_ratios)
        if not ratios:
            if self.base_wall_s <= 0:
                return 0.0
            return (self.variant_wall_s / self.base_wall_s - 1.0) * 100.0
        mid = len(ratios) // 2
        if len(ratios) % 2:
            median = ratios[mid]
        else:
            median = (ratios[mid - 1] + ratios[mid]) / 2.0
        return (median - 1.0) * 100.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "base": self.base_id,
            "variant": self.variant_id,
            "base_wall_s": round(self.base_wall_s, 6),
            "variant_wall_s": round(self.variant_wall_s, 6),
            "overhead_pct": round(self.overhead_pct, 2),
            "base_repetitions_s": [round(r, 6) for r in self.base_repetitions],
            "variant_repetitions_s": [round(r, 6)
                                      for r in self.variant_repetitions],
        }


def measure_overhead(base: PerfCase, variant: PerfCase, warmup: int = 1,
                     repetitions: int = 7) -> OverheadMeasurement:
    """Measure ``variant``'s wall-time overhead over ``base``, interleaved.

    Each repetition runs one base + one variant execution back-to-back,
    alternating which goes first so slow drift (CPU frequency, co-tenant
    load) cannot systematically favor one side, with a garbage collection
    before each timed run so collector pauses land between measurements.
    The overhead estimate is the median of per-pair ratios (see
    :class:`OverheadMeasurement`); the recorded wall times stay min-over-reps
    for display.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    for _ in range(warmup):
        _execute_once(base)
        _execute_once(variant)
    base_times: List[float] = []
    variant_times: List[float] = []
    for rep in range(repetitions):
        pair = ((base, base_times), (variant, variant_times))
        if rep % 2:
            pair = (pair[1], pair[0])
        for case, times in pair:
            gc.collect()
            times.append(_execute_once(case)[0])
    return OverheadMeasurement(
        base_id=base.case_id,
        variant_id=variant.case_id,
        base_wall_s=min(base_times),
        variant_wall_s=min(variant_times),
        base_repetitions=base_times,
        variant_repetitions=variant_times,
    )


def run_cases(cases: Sequence[PerfCase], warmup: int = 1, repetitions: int = 3,
              progress=None) -> Dict[str, object]:
    """Measure every case and assemble a snapshot document."""
    measurements: Dict[str, Dict[str, object]] = {}
    for case in cases:
        measurement = measure_case(case, warmup=warmup, repetitions=repetitions)
        measurements[case.case_id] = measurement.to_dict()
        if progress is not None:
            progress(measurement)
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "warmup": warmup,
        "repetitions": repetitions,
        "cases": measurements,
    }


def save_snapshot(snapshot: Dict[str, object], path: Path) -> None:
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")


def load_snapshot(path: Path) -> Dict[str, object]:
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"snapshot {path} has schema_version {version!r}; "
            f"this build reads version {SNAPSHOT_SCHEMA_VERSION}"
        )
    return data


def default_snapshot_path(scale: Optional[str] = None) -> Path:
    """The conventional snapshot location (``BENCH_perf[_scale].json``)."""
    suffix = f"_{scale}" if scale else ""
    return Path(f"BENCH_perf{suffix}.json")
