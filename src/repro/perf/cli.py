"""Command-line interface of the perf harness.

Usage::

    python -m repro.perf list
    python -m repro.perf run [--scale small|medium|all] [--cases a,b]
                             [--warmup N] [--reps N] [--output PATH]
    python -m repro.perf compare baseline.json head.json [--fail-above PCT]
    python -m repro.perf overhead BASE_CASE VARIANT_CASE [--fail-above PCT]
    python -m repro.perf profile CASE_ID [--top N] [--sort KEY]
    python -m repro.perf differential [CASE_ID ...] [--kernel NAME]
                                      [--shards N] [--scale small|medium|all]

``differential`` runs cases under both the single-process heap oracle and
a candidate engine configuration (kernel and/or shard count) and
byte-diffs the result documents -- the correctness gate every alternative
engine must clear.

``run`` writes a schema-versioned snapshot (default ``BENCH_perf.json``,
or ``BENCH_perf_<scale>.json`` when a single scale is selected); ``compare``
prints the per-case deltas and, with ``--fail-above``, exits nonzero on wall
time regressions beyond the threshold -- the CI tripwire.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.perf.cases import (
    TIERS,
    available_cases,
    case_with_engine,
    case_with_kernel,
    get_case,
)
from repro.perf.compare import compare_snapshots, evaluate_gate
from repro.perf.differential import run_differentials
from repro.perf.harness import (
    default_snapshot_path,
    load_snapshot,
    measure_overhead,
    run_cases,
    save_snapshot,
)
from repro.perf.profiling import SORT_KEYS, profile_case


def _select_cases(scale: str, names: Optional[str]):
    tier = None if scale == "all" else scale
    cases = available_cases(tier=tier)
    if names:
        wanted = {n.strip() for n in names.split(",") if n.strip()}
        unknown = wanted - {c.name for c in cases} - {c.case_id for c in cases}
        if unknown:
            raise KeyError(
                f"unknown case(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted({c.name for c in cases}))}"
            )
        cases = [c for c in cases if c.name in wanted or c.case_id in wanted]
    if not cases:
        raise KeyError(f"no perf cases match scale={scale!r} cases={names!r}")
    return cases


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    for case in available_cases():
        print(f"{case.case_id:38} {case.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cases = _select_cases(args.scale, args.cases)
    if args.kernel != "heap" or args.shards != 1 or args.partition is not None:
        cases = [case_with_engine(c, kernel=args.kernel, shards=args.shards,
                                  partition=args.partition) for c in cases]

    def progress(measurement) -> None:
        print(f"[{measurement.case_id}: {measurement.wall_time_s:.4f}s, "
              f"{measurement.events_per_sec:,.0f} events/s, "
              f"{measurement.packets_per_sec:,.0f} packets/s]", flush=True)

    snapshot = run_cases(cases, warmup=args.warmup, repetitions=args.reps,
                         progress=progress)
    output = Path(args.output) if args.output else default_snapshot_path(
        args.scale if args.scale != "all" else None)
    save_snapshot(snapshot, output)
    print(f"snapshot written to {output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_snapshot(Path(args.baseline))
    head = load_snapshot(Path(args.head))
    report = compare_snapshots(baseline, head)
    print(report.format_table())
    return evaluate_gate(report, args.fail_above)


def _cmd_overhead(args: argparse.Namespace) -> int:
    base = get_case(args.base)
    variant = get_case(args.variant)
    measurement = measure_overhead(base, variant, warmup=args.warmup,
                                   repetitions=args.reps)
    print(f"[{measurement.base_id}: {measurement.base_wall_s:.4f}s  vs  "
          f"{measurement.variant_id}: {measurement.variant_wall_s:.4f}s]")
    print(f"overhead: {measurement.overhead_pct:+.2f}%")
    if args.fail_above is not None and measurement.overhead_pct > args.fail_above:
        print(f"FAIL: overhead {measurement.overhead_pct:+.2f}% exceeds "
              f"the {args.fail_above:.2f}% gate")
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    case = get_case(args.case)
    if args.kernel != "heap":
        case = case_with_kernel(case, args.kernel)
    print(f"== {case.case_id} ({case.description}) "
          f"[kernel={args.kernel}] ==")
    print(profile_case(case, top=args.top, sort=args.sort))
    return 0


def _cmd_differential(args: argparse.Namespace) -> int:
    if args.cases:
        cases = [get_case(name) for name in args.cases]
    else:
        tier = None if args.scale == "all" else args.scale
        # Twin cases exist only for A/B timing; diffing them would just
        # repeat the pooled/pooled comparison.
        cases = [c for c in available_cases(tier=tier)
                 if not c.name.endswith("_pooled")]
    if not cases:
        raise KeyError(f"no perf cases match scale={args.scale!r}")

    candidate = args.kernel
    if args.shards != 1:
        candidate += f" x {args.shards} shards"

    def progress(outcome) -> None:
        if outcome.skipped is not None:
            print(f"[{outcome.case_id}: SKIPPED: {outcome.skipped}]",
                  flush=True)
            return
        verdict = "identical" if outcome.identical else "DIVERGED"
        detail = ""
        if outcome.diverging_keys:
            detail = f"  (differs in: {', '.join(outcome.diverging_keys)})"
        print(f"[{outcome.case_id}: heap vs {candidate}: {verdict}, "
              f"{outcome.events:,} events]{detail}", flush=True)

    results = run_differentials(cases, kernel=args.kernel, shards=args.shards,
                                partition=args.partition, progress=progress)
    skipped = [r for r in results if r.skipped is not None]
    covered = [r for r in results if r.skipped is None]
    diverged = [r for r in covered if not r.identical]
    if skipped:
        print(f"note: {len(skipped)}/{len(results)} case(s) skipped "
              f"(cannot run {candidate!r}); see lines above")
    if diverged:
        print(f"FAIL: {len(diverged)}/{len(covered)} case(s) diverged "
              f"from the heap oracle under {candidate!r}")
        return 1
    if not covered:
        print(f"FAIL: every selected case was skipped -- the differential "
              f"covered nothing under {candidate!r}")
        return 1
    print(f"OK: {len(covered)} case(s) byte-identical between the heap "
          f"oracle and {candidate!r}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered perf cases")

    run_p = sub.add_parser("run", help="measure cases and write a snapshot")
    run_p.add_argument("--scale", default="all", choices=list(TIERS) + ["all"],
                       help="tier to run (default: all)")
    run_p.add_argument("--cases", default=None,
                       help="comma-separated case families or case ids")
    run_p.add_argument("--warmup", type=int, default=1,
                       help="unrecorded warmup runs per case (default: 1)")
    run_p.add_argument("--reps", type=int, default=3,
                       help="recorded repetitions per case (default: 3)")
    run_p.add_argument("--output", default=None,
                       help="snapshot path (default: BENCH_perf[_scale].json)")
    run_p.add_argument("--kernel", default="heap",
                       help="simulation kernel to run under (default: heap)")
    run_p.add_argument("--shards", type=int, default=1,
                       help="shard processes to run under (default: 1)")
    run_p.add_argument("--partition", default=None,
                       help="partition strategy with --shards > 1 "
                            "(default: the spec's, normally auto)")

    cmp_p = sub.add_parser("compare", help="compare two snapshots")
    cmp_p.add_argument("baseline", help="baseline snapshot path")
    cmp_p.add_argument("head", help="head snapshot path")
    cmp_p.add_argument("--fail-above", type=float, default=None,
                       help="fail if any case's wall time regressed by more "
                            "than this percentage")

    ovh_p = sub.add_parser(
        "overhead",
        help="interleaved A/B wall-time comparison of two cases (the "
             "telemetry <=5%% gate; robust to between-session noise)")
    ovh_p.add_argument("base", help="base case id (family/tier)")
    ovh_p.add_argument("variant", help="variant case id (family/tier)")
    ovh_p.add_argument("--warmup", type=int, default=1,
                       help="unrecorded warmup pairs (default: 1)")
    ovh_p.add_argument("--reps", type=int, default=7,
                       help="recorded base/variant pairs (default: 7)")
    ovh_p.add_argument("--fail-above", type=float, default=None,
                       help="fail if the variant's wall-time overhead "
                            "exceeds this percentage")

    prof_p = sub.add_parser("profile", help="cProfile one case")
    prof_p.add_argument("case", help="case id (family/tier), e.g. "
                                     "incast_single_switch/small")
    prof_p.add_argument("--top", type=int, default=25,
                        help="number of functions to print (default: 25)")
    prof_p.add_argument("--sort", default="cumulative", choices=SORT_KEYS,
                        help="pstats sort key (default: cumulative)")
    prof_p.add_argument("--kernel", default="heap",
                        help="simulation kernel to profile (default: heap)")

    diff_p = sub.add_parser(
        "differential",
        help="byte-diff result documents between the heap oracle and a "
             "candidate kernel (correctness gate for alternative kernels)")
    diff_p.add_argument("cases", nargs="*",
                        help="case ids (family/tier); default: every "
                             "registered non-twin case at --scale")
    diff_p.add_argument("--kernel", default="pooled",
                        help="candidate kernel to diff (default: pooled)")
    diff_p.add_argument("--shards", type=int, default=1,
                        help="candidate shard count to diff; cases whose "
                             "topology cannot be cut are loudly skipped "
                             "(default: 1)")
    diff_p.add_argument("--partition", default=None,
                        help="partition strategy with --shards > 1 "
                             "(default: the spec's, normally auto)")
    diff_p.add_argument("--scale", default="all",
                        choices=list(TIERS) + ["all"],
                        help="tier to cover when no cases are named "
                             "(default: all)")

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "compare": _cmd_compare, "overhead": _cmd_overhead,
                "profile": _cmd_profile, "differential": _cmd_differential}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
