"""``repro.perf``: the standing benchmark harness for the simulation core.

The subsystem has three parts:

* :mod:`repro.perf.cases` -- a registry of :class:`PerfCase` entries, each
  wrapping a representative :class:`~repro.scenario.spec.ScenarioSpec`
  (single-switch incast, leaf-spine web-search, dumbbell burst, packet-level
  raw switch) at ``small`` and ``medium`` scales;
* :mod:`repro.perf.harness` -- executes cases with warmup + repetitions and
  records wall time, events/sec, packets/sec and peak RSS into
  schema-versioned ``BENCH_perf.json`` snapshots;
* :mod:`repro.perf.compare` / :mod:`repro.perf.profiling` -- snapshot
  comparison for CI tripwires (``compare baseline.json head.json
  --fail-above <pct>``) and cProfile top-N tables per case.

Run it with ``python -m repro.perf run|compare|profile|list``.
"""

from repro.perf.cases import (
    PerfCase,
    available_cases,
    get_case,
    register_case,
    unregister_case,
)
from repro.perf.compare import compare_snapshots
from repro.perf.harness import (
    SNAPSHOT_SCHEMA_VERSION,
    CaseMeasurement,
    load_snapshot,
    measure_case,
    run_cases,
    save_snapshot,
)

__all__ = [
    "CaseMeasurement",
    "PerfCase",
    "SNAPSHOT_SCHEMA_VERSION",
    "available_cases",
    "compare_snapshots",
    "get_case",
    "load_snapshot",
    "measure_case",
    "register_case",
    "run_cases",
    "save_snapshot",
    "unregister_case",
]
