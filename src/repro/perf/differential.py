"""Differential testing of engine configurations against the heap oracle.

``python -m repro.perf differential`` runs every selected perf case once
under the oracle (:class:`~repro.sim.kernel.HeapKernel`, single process)
and once under a candidate engine configuration -- an alternative kernel,
a shard count > 1, or both -- and byte-diffs the canonical result
documents.  An engine configuration earns trust by producing
**byte-identical** results on every registered case -- the same
row-for-row acceptance gate the ROADMAP prescribes for the compiled
inner loop, extended to the conservative-parallel executor.

The only tolerated difference is the spec's own ``engine`` section (which
engine ran is part of the spec identity, not of the simulation outcome),
so it is stripped from both documents before comparison.

Cases whose topology cannot be cut into the requested shard count (e.g.
``raw_switch_stream`` has no link graph) are reported as loud **skips**
rather than silently dropped, so a differential sweep that covered
nothing cannot masquerade as a green gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.perf.cases import PerfCase, case_with_engine
from repro.scenario.runner import ScenarioRunner
from repro.workloads import reset_workload_ids


@dataclass
class DifferentialResult:
    """The outcome of one case's oracle-vs-candidate comparison."""

    case_id: str
    kernel: str
    identical: bool
    events: int
    #: Candidate shard count (1 = single-process).
    shards: int = 1
    #: Set when the case cannot run the candidate configuration at all
    #: (e.g. an unpartitionable topology); ``identical`` is False then.
    skipped: Optional[str] = None
    #: Top-level document keys whose values differ (diagnostic aid).
    diverging_keys: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "case_id": self.case_id,
            "kernel": self.kernel,
            "shards": self.shards,
            "identical": self.identical,
            "skipped": self.skipped,
            "events": self.events,
            "diverging_keys": list(self.diverging_keys),
        }


def _canonical_document(case: PerfCase) -> tuple[str, int]:
    """Run ``case`` once; returns (canonical JSON, events executed)."""
    spec = case.build()
    reset_workload_ids()
    result = ScenarioRunner().run(spec)
    document = result.to_dict()
    # Which engine ran is spec identity, not simulation outcome.
    document["spec"].pop("engine", None)
    return json.dumps(document, sort_keys=True), result.events_executed


def _shard_skip_reason(spec) -> Optional[str]:
    """Why ``spec`` cannot run sharded; ``None`` when it can.

    Resolves the cut against the built (traffic-free) topology, so a case
    that would crash mid-differential -- switch-level topology, more
    shards than pods/leaves -- is skipped up front with the partitioner's
    own message.
    """
    from repro.core.registry import make_buffer_manager
    from repro.netsim.partition import partition_topology
    from repro.scenario.topologies import make_topology

    try:
        ScenarioRunner().validate(spec)
        topology = make_topology(spec.topology.kind,
                                 lambda: make_buffer_manager("dt"),
                                 **spec.resolved_topology_params())
        partition_topology(topology, spec.engine.shards,
                           spec.engine.partition)
    except ValueError as exc:
        return str(exc)
    return None


def run_differential(case: PerfCase, kernel: str = "pooled",
                     shards: int = 1,
                     partition: Optional[str] = None) -> DifferentialResult:
    """Diff one case: single-process heap oracle vs the candidate engine."""
    candidate = case_with_engine(case, kernel=kernel, shards=shards,
                                 partition=partition)
    if shards > 1:
        reason = _shard_skip_reason(candidate.build())
        if reason is not None:
            return DifferentialResult(case_id=case.case_id, kernel=kernel,
                                      identical=False, events=0,
                                      shards=shards, skipped=reason)
    oracle_doc, events = _canonical_document(
        case_with_engine(case, kernel="heap", shards=1))
    candidate_doc, _ = _canonical_document(candidate)
    identical = oracle_doc == candidate_doc
    diverging: List[str] = []
    if not identical:
        oracle = json.loads(oracle_doc)
        candidate_parsed = json.loads(candidate_doc)
        diverging = sorted(
            key for key in set(oracle) | set(candidate_parsed)
            if oracle.get(key) != candidate_parsed.get(key))
    return DifferentialResult(case_id=case.case_id, kernel=kernel,
                              identical=identical, events=events,
                              shards=shards, diverging_keys=diverging)


def run_differentials(cases: Sequence[PerfCase], kernel: str = "pooled",
                      shards: int = 1, partition: Optional[str] = None,
                      progress=None) -> List[DifferentialResult]:
    """Diff every case; ``progress`` is called after each one."""
    results = []
    for case in cases:
        outcome = run_differential(case, kernel=kernel, shards=shards,
                                   partition=partition)
        results.append(outcome)
        if progress is not None:
            progress(outcome)
    return results
