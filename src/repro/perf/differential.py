"""Differential testing of simulation kernels against the heap oracle.

``python -m repro.perf differential`` runs every selected perf case once
under the oracle (:class:`~repro.sim.kernel.HeapKernel`) and once under a
candidate kernel and byte-diffs the canonical result documents.  A kernel
earns trust by producing **byte-identical** results on every registered
case -- the same row-for-row acceptance gate the ROADMAP prescribes for
the compiled inner loop.

The only tolerated difference is the spec's own ``engine`` section (which
kernel ran is part of the spec identity, not of the simulation outcome),
so it is stripped from both documents before comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.perf.cases import PerfCase, case_with_kernel
from repro.scenario.runner import ScenarioRunner
from repro.workloads import reset_workload_ids


@dataclass
class DifferentialResult:
    """The outcome of one case's two-kernel comparison."""

    case_id: str
    kernel: str
    identical: bool
    events: int
    #: Top-level document keys whose values differ (diagnostic aid).
    diverging_keys: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "case_id": self.case_id,
            "kernel": self.kernel,
            "identical": self.identical,
            "events": self.events,
            "diverging_keys": list(self.diverging_keys),
        }


def _canonical_document(case: PerfCase) -> tuple[str, int]:
    """Run ``case`` once; returns (canonical JSON, events executed)."""
    spec = case.build()
    reset_workload_ids()
    result = ScenarioRunner().run(spec)
    document = result.to_dict()
    # Which engine ran is spec identity, not simulation outcome.
    document["spec"].pop("engine", None)
    return json.dumps(document, sort_keys=True), result.events_executed


def run_differential(case: PerfCase, kernel: str = "pooled") -> DifferentialResult:
    """Diff one case's result documents: heap oracle vs ``kernel``."""
    oracle_doc, events = _canonical_document(case_with_kernel(case, "heap"))
    candidate_doc, _ = _canonical_document(case_with_kernel(case, kernel))
    identical = oracle_doc == candidate_doc
    diverging: List[str] = []
    if not identical:
        oracle = json.loads(oracle_doc)
        candidate = json.loads(candidate_doc)
        diverging = sorted(
            key for key in set(oracle) | set(candidate)
            if oracle.get(key) != candidate.get(key))
    return DifferentialResult(case_id=case.case_id, kernel=kernel,
                              identical=identical, events=events,
                              diverging_keys=diverging)


def run_differentials(cases: Sequence[PerfCase], kernel: str = "pooled",
                      progress=None) -> List[DifferentialResult]:
    """Diff every case; ``progress`` is called after each one."""
    results = []
    for case in cases:
        outcome = run_differential(case, kernel=kernel)
        results.append(outcome)
        if progress is not None:
            progress(outcome)
    return results
