"""cProfile integration: per-case hot-spot tables.

``profile_case`` runs one case under :mod:`cProfile` and renders the top-N
functions by the chosen sort key.  This is the "where is the time going"
companion to the wall-clock harness: run it, optimize the top entries, then
``run`` + ``compare`` to quantify the win.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.perf.cases import PerfCase
from repro.scenario.runner import ScenarioRunner
from repro.workloads import reset_workload_ids

#: pstats sort keys accepted by the CLI.
SORT_KEYS = ("cumulative", "tottime", "ncalls")


def profile_case(case: PerfCase, top: int = 25,
                 sort: str = "cumulative") -> str:
    """Profile one case and return the formatted top-``top`` table."""
    if sort not in SORT_KEYS:
        raise ValueError(f"unknown sort key {sort!r}; expected one of {SORT_KEYS}")
    spec = case.build()
    runner = ScenarioRunner()
    reset_workload_ids()
    profiler = cProfile.Profile()
    profiler.enable()
    runner.run(spec)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return buffer.getvalue()
