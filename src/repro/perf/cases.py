"""The registry of benchmark cases.

A :class:`PerfCase` names a representative scenario at a given tier
(``small`` runs in well under a second and feeds the CI tripwire; ``medium``
runs for a few seconds and is the scale optimization work is judged at) and
builds a fresh :class:`~repro.scenario.spec.ScenarioSpec` for every
measurement.  The built-in families cover every hot path of the
simulation core:

* ``incast_single_switch`` -- the DPDK-testbed shape: DCTCP incast queries +
  web-search background through one shared-memory switch (admission,
  scheduling, transport, host NICs);
* ``websearch_leaf_spine`` -- the ns-3 fabric shape: multi-switch forwarding
  with ECMP routing across the spines;
* ``websearch_leaf_spine_telemetry`` -- the same fabric with the sampling
  bus at default cadence (pins the telemetry overhead);
* ``websearch_fat_tree`` -- the multi-stage fabric shape: a k=4 fat-tree
  with two ECMP stages and 4-5 switch hops per inter-pod flow;
* ``websearch_fattree_k8`` -- the sharding shape: a k=8 fat-tree (80
  switches, 8 pods) sized so conservative-parallel execution
  (``engine.shards``) has enough pod-local parallelism to win;
* ``websearch_fattree_degraded`` -- the asymmetric-fabric shape: the same
  fat-tree with a failed agg<->core link and a half-rate edge<->agg uplink
  (failure-pruned routing + capacity-weighted ECMP);
* ``websearch_fattree_ecmp_lb`` -- the fat-tree case with an *explicit*
  ``lb: ecmp`` section: canonically identical to ``websearch_fat_tree``,
  kept separate so ``python -m repro.perf overhead`` can pin the
  load-balancer attach path at zero per-packet cost;
* ``websearch_fattree_flowlet`` -- the degraded fat-tree under flowlet
  switching (the ``repro.lb`` delegate data path: candidate-list
  memoization + flowlet table on every multi-uplink hop);
* ``dumbbell_burst`` -- two switches, cross traffic plus a synchronized
  burst (Occamy's expulsion engine under pressure);
* ``raw_switch_stream`` -- the P4-prototype shape: raw packet arrivals on a
  bare switch with queue tracing on (the pure switch-pipeline path, no
  transport).

Like the scheme/topology/workload registries, third-party cases can be added
with :func:`register_case`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.scenario.builders import (
    fat_tree_scenario,
    leaf_spine_scenario,
    packet_burst_scenario,
    single_switch_scenario,
)
from repro.scenario.scales import get_scale
from repro.scenario.spec import (
    FabricSpec,
    LoadBalancerSpec,
    ScenarioSpec,
    SchemeSpec,
    TelemetrySpec,
    TopologySpec,
    TransportSpec,
    WorkloadSpec,
)
from repro.sim.units import GBPS, KB, MB

#: The two built-in tiers, ordered by cost.
TIERS = ("small", "medium")


@dataclass(frozen=True)
class PerfCase:
    """One benchmark case: a named, tiered scenario builder.

    Attributes:
        name: case family name (e.g. ``incast_single_switch``).
        tier: ``small`` or ``medium``.
        build: zero-argument callable returning a fresh ScenarioSpec.
        description: one line for ``python -m repro.perf list``.
    """

    name: str
    tier: str
    build: Callable[[], ScenarioSpec] = field(compare=False)
    description: str = ""

    @property
    def case_id(self) -> str:
        """The ``family/tier`` identifier used in snapshots."""
        return f"{self.name}/{self.tier}"


_CASES: Dict[str, PerfCase] = {}


def register_case(case: PerfCase, override: bool = False) -> None:
    """Add a case to the registry (``override`` replaces an existing id)."""
    if case.tier not in TIERS:
        raise ValueError(f"unknown tier {case.tier!r}; expected one of {TIERS}")
    if case.case_id in _CASES and not override:
        raise ValueError(f"perf case {case.case_id!r} is already registered")
    _CASES[case.case_id] = case


def unregister_case(case_id: str) -> None:
    del _CASES[case_id]


def get_case(case_id: str) -> PerfCase:
    try:
        return _CASES[case_id]
    except KeyError:
        raise KeyError(
            f"unknown perf case {case_id!r}; "
            f"available: {', '.join(sorted(_CASES))}"
        ) from None


def available_cases(tier: Optional[str] = None) -> List[PerfCase]:
    """All registered cases, optionally restricted to one tier."""
    cases = [case for case in _CASES.values()
             if tier is None or case.tier == tier]
    return sorted(cases, key=lambda c: c.case_id)


def case_with_engine(case: PerfCase, kernel: Optional[str] = None,
                     shards: Optional[int] = None,
                     partition: Optional[str] = None) -> PerfCase:
    """A copy of ``case`` whose built specs run on the given engine config.

    The returned case keeps the same ``case_id`` (snapshots stay
    comparable across engine configurations -- that is the point of
    ``--kernel``/``--shards`` on ``perf run``); only the built spec's
    ``engine`` section differs.  ``None`` fields keep the base case's
    value, so overrides compose instead of clobbering each other.
    """
    base_build = case.build

    def build() -> ScenarioSpec:
        spec = base_build()
        engine = spec.engine
        if kernel is not None:
            engine = replace(engine, kernel=kernel)
        if shards is not None:
            engine = replace(engine, shards=shards)
        if partition is not None:
            engine = replace(engine, partition=partition)
        spec.engine = engine
        return spec

    return PerfCase(name=case.name, tier=case.tier, build=build,
                    description=case.description)


def case_with_kernel(case: PerfCase, kernel: str) -> PerfCase:
    """A copy of ``case`` whose built specs run on ``kernel``."""
    return case_with_engine(case, kernel=kernel)


# ----------------------------------------------------------------------
# Built-in case builders
# ----------------------------------------------------------------------
def _incast_single_switch(tier: str) -> ScenarioSpec:
    # The fig13 shape: incast queries + 50% web-search background.  The
    # medium tier is the experiments' "small" scale (8 hosts, 20 ms).
    config = get_scale("bench" if tier == "small" else "small")
    buffer_bytes = int(config.buffer_kb_per_port_per_gbps * KB
                       * config.num_hosts * config.link_rate_bps / 1e9)
    return single_switch_scenario(
        scheme="dt",
        config=config,
        query_size_bytes=int(0.6 * buffer_bytes),
        background_load=0.5,
        name=f"perf_incast_single_switch_{tier}",
    )


def _websearch_leaf_spine(tier: str) -> ScenarioSpec:
    if tier == "small":
        config = get_scale("bench")
    else:
        # The experiments' "small" fabric (4 leaves x 4 spines x 16 hosts)
        # with a compressed workload window: representative multi-switch ECMP
        # traffic at a runtime that keeps repeated measurement practical.
        config = replace(get_scale("small"), fabric_duration=0.006)
    return leaf_spine_scenario(
        scheme="dt",
        config=config,
        query_size_bytes=int(0.6 * config.fabric_buffer_bytes_per_port * 8),
        background_load=0.6,
        name=f"perf_websearch_leaf_spine_{tier}",
    )


def _websearch_leaf_spine_telemetry(tier: str) -> ScenarioSpec:
    # The leaf-spine case with the telemetry bus sampling at the default
    # cadence: its wall time against `websearch_leaf_spine` is the sampling
    # overhead (CI pins it at <= 5% via `python -m repro.perf overhead`).
    spec = _websearch_leaf_spine(tier)
    spec.name = f"perf_websearch_leaf_spine_telemetry_{tier}"
    spec.telemetry = TelemetrySpec(enabled=True)
    return spec


def _websearch_fat_tree(tier: str) -> ScenarioSpec:
    # The multi-stage fabric shape: paced incast + websearch background on a
    # k=4 fat-tree (20 switches, 4-5 switch hops per inter-pod flow).  The
    # small tier runs the bench fabric (8 hosts) over a compressed window;
    # medium runs the full-bisection fabric (16 hosts) of the small scale.
    if tier == "small":
        config = replace(get_scale("bench"), fabric_duration=0.0015)
    else:
        config = replace(get_scale("small"), fabric_duration=0.004)
    return fat_tree_scenario(
        scheme="dt",
        config=config,
        query_size_bytes=int(0.6 * config.fabric_buffer_bytes_per_port * 8),
        background_load=0.5,
        name=f"perf_websearch_fat_tree_{tier}",
    )


def _websearch_fattree_k8(tier: str) -> ScenarioSpec:
    # The sharding shape: a k=8 fat-tree (80 switches, 8 pods) with enough
    # independent pod-local work that conservative-parallel execution has
    # parallelism to win.  The small tier (32 hosts, compressed window)
    # feeds the CI differential; medium (64 hosts) is the scale the
    # shards=1 vs shards=N A/B is judged at.
    if tier == "small":
        config = replace(get_scale("bench"), fattree_k=8,
                         fattree_hosts_per_edge=1, fabric_duration=0.0015)
    else:
        config = replace(get_scale("small"), fattree_k=8,
                         fattree_hosts_per_edge=2, fabric_duration=0.004)
    return fat_tree_scenario(
        scheme="dt",
        config=config,
        query_size_bytes=int(0.6 * config.fabric_buffer_bytes_per_port * 8),
        background_load=0.5,
        name=f"perf_websearch_fattree_k8_{tier}",
    )


def _websearch_fattree_degraded(tier: str) -> ScenarioSpec:
    # The asymmetric-fabric shape: the fat-tree case with one failed
    # agg<->core link (routing prune + exclusion sets on the hot path) and
    # one half-rate edge<->agg uplink (capacity-weighted ECMP, per-link
    # serialization rates) -- the fabric-model machinery under load.
    if tier == "small":
        config = replace(get_scale("bench"), fabric_duration=0.0015)
    else:
        config = replace(get_scale("small"), fabric_duration=0.004)
    return fat_tree_scenario(
        scheme="dt",
        config=config,
        query_size_bytes=int(0.6 * config.fabric_buffer_bytes_per_port * 8),
        background_load=0.5,
        fabric=FabricSpec(
            failures=[["agg0_0", "core1"]],
            degraded=[["edge0_0", "agg0_0", 0.5]],
        ),
        name=f"perf_websearch_fattree_degraded_{tier}",
    )


def _websearch_fattree_ecmp_lb(tier: str) -> ScenarioSpec:
    # The fat-tree case with `lb: ecmp` spelled out.  The section is the
    # canonical default, so the built document -- and therefore the traffic
    # -- is byte-identical to `websearch_fat_tree`; only the attach-time
    # passthrough binding differs.  `python -m repro.perf overhead` A/Bs the
    # two to pin that binding at zero per-packet cost (CI gates it at 2%).
    spec = _websearch_fat_tree(tier)
    spec.name = f"perf_websearch_fattree_ecmp_lb_{tier}"
    spec.lb = LoadBalancerSpec("ecmp")
    return spec


def _websearch_fattree_flowlet(tier: str) -> ScenarioSpec:
    # The adaptive-load-balancing shape: the degraded fat-tree under flowlet
    # switching.  Every multi-uplink hop takes the lb delegate path --
    # memoized candidate resolution, flowlet-table lookup, least-backlog
    # re-pick at gap expiry -- which is the subsystem's hot loop.
    spec = _websearch_fattree_degraded(tier)
    spec.name = f"perf_websearch_fattree_flowlet_{tier}"
    spec.lb = LoadBalancerSpec("flowlet")
    return spec


def _dumbbell_burst(tier: str) -> ScenarioSpec:
    # Occamy on a dumbbell: steady cross traffic keeps the bottleneck busy
    # while a synchronized burst exercises the expulsion engine.
    duration = 0.008 if tier == "small" else 0.04
    return ScenarioSpec(
        name=f"perf_dumbbell_burst_{tier}",
        scheme=SchemeSpec("occamy", {"alpha": 4.0}),
        topology=TopologySpec("dumbbell", {
            "num_pairs": 4,
            "edge_rate_bps": 10 * GBPS,
            "ecn_threshold_bytes": 30_000,
        }),
        workloads=[
            WorkloadSpec("burst",
                         params={"burst_bytes": 60_000, "num_senders": 4,
                                 "receiver_index": 4},
                         rng_label="burst"),
            WorkloadSpec("poisson",
                         params={"load": 0.6, "load_scope": "aggregate",
                                 "distribution": "websearch"},
                         rng_label="bg"),
        ],
        transport=TransportSpec(),
        duration=duration,
    )


def _raw_switch_stream(tier: str) -> ScenarioSpec:
    # The fig11 shape: a long-lived 100 Gbps stream on port 0 plus a burst on
    # port 1, packet-level, with queue tracing enabled (its recording cost is
    # part of the measured pipeline).
    duration = 500e-6 if tier == "small" else 2500e-6
    return packet_burst_scenario(
        scheme="occamy",
        stream_specs=[
            {"rate_bps": 100 * GBPS, "port": 0, "duration": duration},
        ],
        burst_specs=[
            {"burst_bytes": 400 * KB, "rate_bps": 100 * GBPS, "port": 1,
             "start_time": duration / 3},
        ],
        port_rate_bps=10 * GBPS,
        buffer_bytes=2 * MB,
        memory_bandwidth_bps=2 * 32 * 10 * GBPS,
        duration=duration,
        name=f"perf_raw_switch_stream_{tier}",
    )


_BUILDERS = {
    "incast_single_switch": (
        _incast_single_switch,
        "DCTCP incast + websearch background on one switch (fig13 shape)",
    ),
    "websearch_leaf_spine": (
        _websearch_leaf_spine,
        "leaf-spine fabric with ECMP, incast + websearch (fig17 shape)",
    ),
    "websearch_leaf_spine_telemetry": (
        _websearch_leaf_spine_telemetry,
        "the leaf-spine case with the telemetry bus at default cadence",
    ),
    "websearch_fat_tree": (
        _websearch_fat_tree,
        "k=4 fat-tree, multi-stage ECMP, incast + websearch background",
    ),
    "websearch_fattree_k8": (
        _websearch_fattree_k8,
        "k=8 fat-tree (80 switches, 8 pods): the sharded-execution shape",
    ),
    "websearch_fattree_degraded": (
        _websearch_fattree_degraded,
        "k=4 fat-tree with a failed core link + half-rate uplink (WCMP)",
    ),
    "websearch_fattree_ecmp_lb": (
        _websearch_fattree_ecmp_lb,
        "the fat-tree case with an explicit lb:ecmp section (overhead A/B)",
    ),
    "websearch_fattree_flowlet": (
        _websearch_fattree_flowlet,
        "the degraded fat-tree under flowlet switching (repro.lb hot path)",
    ),
    "dumbbell_burst": (
        _dumbbell_burst,
        "occamy on a dumbbell: cross traffic + synchronized burst",
    ),
    "raw_switch_stream": (
        _raw_switch_stream,
        "packet-level stream + burst on a bare switch (fig11 shape)",
    ),
}

for _name, (_builder, _desc) in _BUILDERS.items():
    for _tier in TIERS:
        register_case(PerfCase(
            name=_name,
            tier=_tier,
            build=(lambda b=_builder, t=_tier: b(t)),
            description=_desc,
        ))

# Pooled-kernel twins of the two ISSUE-pinned hot-path families, following
# the `websearch_fattree_ecmp_lb` precedent: identical traffic, only the
# engine section differs, so `python -m repro.perf overhead BASE TWIN`
# measures the pooling speedup with the interleaved A/B methodology (CI
# gates pooled at >= 10% faster on the medium tiers and never-slower on the
# small tiers).
for _name in ("incast_single_switch", "websearch_leaf_spine"):
    for _tier in TIERS:
        _base = _CASES[f"{_name}/{_tier}"]
        register_case(PerfCase(
            name=f"{_name}_pooled",
            tier=_tier,
            build=case_with_kernel(_base, "pooled").build,
            description=f"the {_name} case on the pooled kernel (A/B twin)",
        ))
