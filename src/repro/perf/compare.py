"""Snapshot comparison: the CI regression tripwire and the speedup report.

``compare_snapshots`` joins two snapshots on case id and reports, per shared
case, the wall-time change and the events/sec speedup of head over baseline.
``--fail-above <pct>`` turns the comparison into a gate: any shared case
whose wall time regressed by more than ``pct`` percent fails the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class CaseDelta:
    """Head-vs-baseline deltas of one case."""

    case_id: str
    baseline_wall_s: float
    head_wall_s: float
    baseline_events_per_sec: float
    head_events_per_sec: float
    events_match: bool

    @property
    def wall_change_pct(self) -> float:
        """Positive = head is slower (regression)."""
        if self.baseline_wall_s <= 0:
            return 0.0
        return (self.head_wall_s / self.baseline_wall_s - 1.0) * 100.0

    @property
    def speedup(self) -> float:
        """Events/sec ratio head / baseline (>1 = head is faster)."""
        if self.baseline_events_per_sec <= 0:
            return 0.0
        return self.head_events_per_sec / self.baseline_events_per_sec


@dataclass
class ComparisonReport:
    """All deltas plus the cases present in only one snapshot."""

    deltas: List[CaseDelta]
    only_in_baseline: List[str]
    only_in_head: List[str]

    def regressions(self, fail_above_pct: float) -> List[CaseDelta]:
        return [d for d in self.deltas if d.wall_change_pct > fail_above_pct]

    def format_table(self) -> str:
        header = (f"{'case':38} {'base_s':>9} {'head_s':>9} "
                  f"{'wall%':>8} {'ev/s speedup':>13}")
        lines = [header, "-" * len(header)]
        for d in self.deltas:
            note = "" if d.events_match else "  [event counts differ]"
            lines.append(
                f"{d.case_id:38} {d.baseline_wall_s:9.4f} {d.head_wall_s:9.4f} "
                f"{d.wall_change_pct:+7.1f}% {d.speedup:12.2f}x{note}"
            )
        for case_id in self.only_in_baseline:
            lines.append(f"{case_id:38} (missing from head snapshot)")
        for case_id in self.only_in_head:
            lines.append(f"{case_id:38} (new in head snapshot)")
        return "\n".join(lines)


def compare_snapshots(baseline: Dict[str, object],
                      head: Dict[str, object]) -> ComparisonReport:
    """Join two snapshot documents (see :mod:`repro.perf.harness`) by case."""
    base_cases: Dict[str, dict] = baseline.get("cases", {})  # type: ignore[assignment]
    head_cases: Dict[str, dict] = head.get("cases", {})  # type: ignore[assignment]
    deltas: List[CaseDelta] = []
    for case_id in sorted(set(base_cases) & set(head_cases)):
        b, h = base_cases[case_id], head_cases[case_id]
        deltas.append(CaseDelta(
            case_id=case_id,
            baseline_wall_s=float(b["wall_time_s"]),
            head_wall_s=float(h["wall_time_s"]),
            baseline_events_per_sec=float(b["events_per_sec"]),
            head_events_per_sec=float(h["events_per_sec"]),
            events_match=(b.get("events") == h.get("events")
                          and b.get("packets") == h.get("packets")),
        ))
    return ComparisonReport(
        deltas=deltas,
        only_in_baseline=sorted(set(base_cases) - set(head_cases)),
        only_in_head=sorted(set(head_cases) - set(base_cases)),
    )


def evaluate_gate(report: ComparisonReport,
                  fail_above_pct: Optional[float]) -> int:
    """Exit code of the compare command under an optional regression gate.

    Two failure modes: a wall-time regression beyond the threshold, and an
    event/packet-count mismatch.  The latter fails because a wall-time delta
    measured against a different workload is meaningless -- a behavior change
    snuck in and the baseline must be regenerated (after the golden tests
    have blessed the change).
    """
    if fail_above_pct is None:
        return 0
    failed = False
    for d in report.deltas:
        if not d.events_match:
            print(f"PERF GATE: {d.case_id} executed a different workload than "
                  "the baseline (event/packet counts differ); regenerate the "
                  "baseline snapshot once the behavior change is intended")
            failed = True
    for d in report.regressions(fail_above_pct):
        print(f"PERF REGRESSION: {d.case_id} wall time "
              f"{d.baseline_wall_s:.4f}s -> {d.head_wall_s:.4f}s "
              f"({d.wall_change_pct:+.1f}% > {fail_above_pct:.1f}% allowed)")
        failed = True
    return 1 if failed else 0
