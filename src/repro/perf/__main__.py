"""``python -m repro.perf`` entry point."""

import sys

from repro.perf.cli import main

sys.exit(main())
