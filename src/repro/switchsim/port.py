"""Egress ports: a set of class queues, a scheduler and a line rate."""

from __future__ import annotations

from typing import List, Optional

from repro.sim.units import transmission_time
from repro.switchsim.queue import SwitchQueue
from repro.switchsim.scheduler import Scheduler


class EgressPort:
    """An egress port of the shared-memory switch.

    The port owns its class queues and scheduler.  Transmission timing is
    orchestrated by the switch: the port only tracks whether its wire is busy
    and which descriptor is currently being serialized.
    """

    def __init__(self, port_id: int, rate_bps: float, scheduler: Scheduler) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        self.port_id = port_id
        self.rate_bps = rate_bps
        self.scheduler = scheduler
        self.queues: List[SwitchQueue] = []
        self.single_queue: SwitchQueue | None = None
        self.busy = False
        #: In-flight transmission state (valid while ``busy``): the queue the
        #: packet came from, its descriptor and the serialization delay.  The
        #: switch stores these here and schedules a single prebuilt bound
        #: callback (``finish_callback``) instead of allocating a closure per
        #: transmitted packet.
        self.tx_queue: SwitchQueue | None = None
        self.tx_descriptor = None
        self.tx_delay = 0.0
        self.finish_callback = None
        #: Cumulative transmitted statistics.
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        #: Time the port finished its last transmission (for utilization stats).
        self.last_tx_end = 0.0
        self.busy_time = 0.0

    @property
    def rate_bytes_per_sec(self) -> float:
        return self.rate_bps / 8.0

    def add_queue(self, queue: SwitchQueue) -> None:
        if queue.port_id != self.port_id:
            raise ValueError(
                f"queue {queue.queue_id} belongs to port {queue.port_id}, "
                f"not {self.port_id}"
            )
        self.queues.append(queue)
        #: With exactly one queue, scheduler selection degenerates to "serve
        #: it if non-empty"; the switch uses this to skip the scheduler call.
        self.single_queue = self.queues[0] if len(self.queues) == 1 else None

    def select_queue(self) -> Optional[SwitchQueue]:
        """Ask the scheduler for the next queue to serve."""
        return self.scheduler.select(self.queues)

    def serialization_delay(self, size_bytes: int) -> float:
        """Wire time for a packet of ``size_bytes`` at this port's rate."""
        return transmission_time(size_bytes, self.rate_bps)

    def has_backlog(self) -> bool:
        """Whether any of the port's queues holds packets."""
        return any(queue.is_active for queue in self.queues)

    def backlog_bytes(self) -> int:
        return sum(queue.length_bytes for queue in self.queues)

    def utilization(self, now: float) -> float:
        """Fraction of time the wire has been busy since simulation start."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_time / now)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<EgressPort {self.port_id} rate={self.rate_bps/1e9:.0f}Gbps "
            f"queues={len(self.queues)} busy={self.busy}>"
        )
