"""The packet-buffer memory model: cells, cell pointers and packet descriptors.

Figure 2 of the paper describes three physically separate memories:

* **cell data memory** -- the actual payload storage, divided into equal-size
  cells;
* **cell pointer memory** -- linked lists chaining a packet's cells together,
  plus the free-cell pointer list;
* **packet descriptor (PD) memory** -- one descriptor per packet holding its
  metadata and the head(s) of its cell-pointer list(s); a queue is a linked
  list of PDs.

This module models that structure functionally: a :class:`CellPool` hands out
cell pointers from a free list and takes them back on packet departure or
head drop.  The key property exploited by Occamy is that *dropping* a packet
only touches PD memory and cell-pointer memory -- the cell data memory is never
read -- which is asserted by the accounting in this class and verified in the
test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.switchsim.packet import Packet

_pd_ids = itertools.count()


@dataclass(slots=True)
class PacketDescriptor:
    """A packet descriptor: packet metadata plus its allocated cell pointers.

    ``generation`` is the pool recycling parity (see
    ``repro.switchsim.pool``): even while live, odd while free; stays 0 for
    descriptors never owned by a pool.  ``packet`` is ``Optional`` only
    because a pooled descriptor on the free list has it cleared -- a live
    descriptor always carries one.
    """

    packet: Optional[Packet]
    cell_pointers: List[int]
    enqueue_time: float = 0.0
    pd_id: int = field(default_factory=lambda: next(_pd_ids))
    generation: int = 0

    @property
    def size_bytes(self) -> int:
        return self.packet.size_bytes

    @property
    def num_cells(self) -> int:
        return len(self.cell_pointers)


class CellPool:
    """The shared cell data memory and its free cell pointer list.

    Args:
        buffer_bytes: total shared buffer capacity.
        cell_bytes: cell size; a packet occupies ``ceil(size / cell_bytes)``
            cells, so small packets waste part of their last cell exactly as
            in real chips.
        descriptor_pool: optional ``repro.switchsim.pool.DescriptorPool``.
            This class is the single choke point where descriptors are born
            (:meth:`allocate`) and die (:meth:`release`), so a pooled kernel
            attaches its pool here and every switch path recycles for free.
            Released descriptors then come back with ``packet`` cleared --
            callers must capture ``descriptor.packet`` / sizes *before*
            releasing (the switch does).
    """

    def __init__(self, buffer_bytes: int, cell_bytes: int = 200,
                 descriptor_pool=None) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer size must be positive")
        if cell_bytes <= 0:
            raise ValueError("cell size must be positive")
        self.buffer_bytes = buffer_bytes
        self.cell_bytes = cell_bytes
        self.descriptor_pool = descriptor_pool
        self.total_cells = buffer_bytes // cell_bytes
        if self.total_cells == 0:
            raise ValueError(
                f"buffer of {buffer_bytes}B cannot hold a single {cell_bytes}B cell"
            )
        #: Free cell pointer list (Figure 2); popping allocates, appending
        #: frees.  Kept as a stack (LIFO) so allocation and release are bulk
        #: slice operations -- pointer identities carry no semantics, only
        #: their count does.
        self._free_list: List[int] = list(range(self.total_cells))
        #: Memo of ``cells_for``: packet sizes repeat heavily (MTU, ACK, MSS
        #: tails), so the ceil-division result is cached per distinct size.
        self._cells_for_cache: dict[int, int] = {}
        #: Counters distinguishing data-memory accesses from pointer-only ops,
        #: used to verify that head drops never touch cell data memory.
        self.data_memory_reads = 0
        self.data_memory_writes = 0
        self.pointer_memory_ops = 0

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def free_cells(self) -> int:
        return len(self._free_list)

    @property
    def used_cells(self) -> int:
        return self.total_cells - self.free_cells

    @property
    def used_bytes(self) -> int:
        """Buffer occupancy in bytes, counted at cell granularity."""
        return self.used_cells * self.cell_bytes

    @property
    def free_bytes(self) -> int:
        return self.free_cells * self.cell_bytes

    def cells_for(self, size_bytes: int) -> int:
        """Number of cells required to store a ``size_bytes`` packet."""
        cells = self._cells_for_cache.get(size_bytes)
        if cells is None:
            if size_bytes <= 0:
                raise ValueError("packet size must be positive")
            cells = -(-size_bytes // self.cell_bytes)  # ceil division
            self._cells_for_cache[size_bytes] = cells
        return cells

    def can_fit(self, size_bytes: int) -> bool:
        """Whether a packet of ``size_bytes`` fits in the free cells."""
        return self.cells_for(size_bytes) <= self.free_cells

    # ------------------------------------------------------------------
    # Allocation / release
    # ------------------------------------------------------------------
    def allocate(self, packet: Packet, now: float = 0.0) -> Optional[PacketDescriptor]:
        """Allocate cells for ``packet`` and write its data into the buffer.

        Returns the packet descriptor, or ``None`` when there is not enough
        free space (callers should have checked admission first; the ``None``
        path exists for defensive robustness).
        """
        needed = self.cells_for(packet.size_bytes)
        free = self._free_list
        remaining = len(free) - needed
        if remaining < 0:
            return None
        pointers = free[remaining:]
        del free[remaining:]
        self.pointer_memory_ops += needed
        self.data_memory_writes += needed
        pool = self.descriptor_pool
        if pool is not None:
            # Inlined DescriptorPool.acquire (hot path: once per packet per
            # switch hop) -- keep in sync with repro.switchsim.pool.
            free_pds = pool._free
            if free_pds:
                descriptor = free_pds.pop()
                if not descriptor.generation & 1:
                    raise RuntimeError(
                        f"descriptor pool corruption: descriptor "
                        f"{descriptor.pd_id} on the free list with live "
                        f"(even) generation {descriptor.generation}")
                descriptor.generation += 1  # odd -> even: live again
                descriptor.packet = packet
                descriptor.cell_pointers = pointers
                descriptor.enqueue_time = now
                descriptor.pd_id = next(_pd_ids)
                pool.reused += 1
                return descriptor
            pool.allocated += 1
        return PacketDescriptor(packet=packet, cell_pointers=pointers, enqueue_time=now)

    def release(self, descriptor: PacketDescriptor, read_data: bool) -> int:
        """Return a descriptor's cells to the free list.

        Args:
            read_data: True for a normal dequeue (the cell data is read out to
                the egress pipeline), False for a head drop (Occamy's key
                saving: only pointer operations are needed).

        Returns:
            The number of bytes freed (cell-granular).
        """
        freed_cells = len(descriptor.cell_pointers)
        self._free_list.extend(descriptor.cell_pointers)
        self.pointer_memory_ops += freed_cells
        if read_data:
            self.data_memory_reads += freed_cells
        pool = self.descriptor_pool
        if pool is not None:
            # Inlined DescriptorPool.release (hot path; see allocate).  The
            # packet's fate (recycle vs live on) is the caller's call.
            if descriptor.generation & 1:
                raise RuntimeError(
                    f"double release: descriptor {descriptor.pd_id} already "
                    f"has free (odd) generation {descriptor.generation}")
            descriptor.generation += 1  # even -> odd: free
            descriptor.packet = None
            descriptor.cell_pointers = []
            pool._free.append(descriptor)
        else:
            descriptor.cell_pointers = []
        return freed_cells * self.cell_bytes

    def reset(self) -> None:
        """Return the pool to its pristine state (all cells free)."""
        self._free_list = list(range(self.total_cells))
        self.data_memory_reads = 0
        self.data_memory_writes = 0
        self.pointer_memory_ops = 0
