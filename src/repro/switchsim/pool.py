"""Free-list pools for :class:`Packet` and :class:`PacketDescriptor`.

The pooled simulation kernel (:class:`~repro.sim.kernel.PooledKernel`)
owns one :class:`PacketPool` and one :class:`DescriptorPool` per
simulation.  Components that create packets draw from the packet pool
instead of calling the :class:`~repro.switchsim.packet.Packet`
constructor, and the code paths where a packet or descriptor dies --
delivery to a host, an admission/eviction/head drop, a blackholed link,
transmit out of a sink switch -- hand the object back instead of dropping
the last reference.

Correctness story: recycling is only safe if nothing keeps a handle to a
released object, so both pooled classes carry a ``generation`` counter
with a parity invariant -- **even while live, odd while free**.
``release`` requires even (a second release of the same object raises
instead of corrupting the free list); ``acquire`` requires odd (an object
that reached the free list twice is caught on the way out too).  Tests
assert the parity of every handle they retain across recycling points,
which turns "stale reference" from a heisenbug into an assertion message.

Pools are unbounded: steady-state simulations reach a high-water mark
(roughly packets-in-flight) and recycle from there, so the free lists
stay small relative to the run.
"""

from __future__ import annotations

from typing import List, Optional

from repro.switchsim.cells import PacketDescriptor, _pd_ids
from repro.switchsim.packet import Packet, _packet_ids


class PacketPool:
    """Recycles :class:`Packet` objects with a generation parity check.

    :meth:`acquire` mirrors the keyword signature of the ``Packet``
    constructor, so allocation sites can bind a factory once::

        make_packet = pool.acquire if pool is not None else Packet

    and the call sites stay identical on both kernels.
    """

    __slots__ = ("_free", "allocated", "reused")

    def __init__(self) -> None:
        self._free: List[Packet] = []
        self.allocated = 0  # fresh constructions
        self.reused = 0     # free-list hits

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, size_bytes: int, flow_id: int = -1, src: int = -1,
                dst: int = -1, seq: int = 0, payload_bytes: int = 0,
                is_ack: bool = False, ack_seq: int = 0,
                ecn_capable: bool = True, ecn_marked: bool = False,
                ecn_echo: bool = False, priority: int = 0,
                created_at: float = 0.0) -> Packet:
        free = self._free
        if not free:
            self.allocated += 1
            return Packet(
                size_bytes=size_bytes, flow_id=flow_id, src=src, dst=dst,
                seq=seq, payload_bytes=payload_bytes, is_ack=is_ack,
                ack_seq=ack_seq, ecn_capable=ecn_capable,
                ecn_marked=ecn_marked, ecn_echo=ecn_echo, priority=priority,
                created_at=created_at)
        packet = free.pop()
        if not packet.generation & 1:
            raise RuntimeError(
                f"packet pool corruption: packet {packet.packet_id} on the "
                f"free list with live (even) generation {packet.generation}")
        if size_bytes <= 0:
            # Mirror Packet.__post_init__ so pooled allocation validates too.
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        packet.generation += 1  # odd -> even: live again
        packet.size_bytes = size_bytes
        packet.flow_id = flow_id
        packet.src = src
        packet.dst = dst
        packet.seq = seq
        packet.payload_bytes = payload_bytes
        packet.is_ack = is_ack
        packet.ack_seq = ack_seq
        packet.ecn_capable = ecn_capable
        packet.ecn_marked = ecn_marked
        packet.ecn_echo = ecn_echo
        packet.priority = priority
        packet.created_at = created_at
        packet.metadata.clear()
        packet.packet_id = next(_packet_ids)
        self.reused += 1
        return packet

    def release(self, packet: Packet) -> None:
        """Return a dead packet to the free list (double release raises)."""
        if packet.generation & 1:
            raise RuntimeError(
                f"double release: packet {packet.packet_id} already has free "
                f"(odd) generation {packet.generation}")
        packet.generation += 1  # even -> odd: free
        self._free.append(packet)


class DescriptorPool:
    """Recycles :class:`PacketDescriptor` objects (same parity scheme).

    :class:`~repro.switchsim.cells.CellPool` is the single choke point
    where descriptors are born (``allocate``) and die (``release``), so
    attaching this pool there covers every switch path.  Released
    descriptors have ``packet`` cleared to ``None``: code that reads a
    descriptor after returning it dies on an ``AttributeError`` /
    ``None`` access instead of acting on a recycled packet.
    """

    __slots__ = ("_free", "allocated", "reused")

    def __init__(self) -> None:
        self._free: List[PacketDescriptor] = []
        self.allocated = 0
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, packet: Packet, cell_pointers: List[int],
                enqueue_time: float = 0.0) -> PacketDescriptor:
        free = self._free
        if not free:
            self.allocated += 1
            return PacketDescriptor(packet=packet, cell_pointers=cell_pointers,
                                    enqueue_time=enqueue_time)
        descriptor = free.pop()
        if not descriptor.generation & 1:
            raise RuntimeError(
                f"descriptor pool corruption: descriptor {descriptor.pd_id} "
                f"on the free list with live (even) generation "
                f"{descriptor.generation}")
        descriptor.generation += 1  # odd -> even: live again
        descriptor.packet = packet
        descriptor.cell_pointers = cell_pointers
        descriptor.enqueue_time = enqueue_time
        descriptor.pd_id = next(_pd_ids)
        self.reused += 1
        return descriptor

    def release(self, descriptor: PacketDescriptor,
                packet_pool: Optional[PacketPool] = None) -> None:
        """Return a dead descriptor (and optionally its packet) to the pool.

        ``packet_pool`` recycles ``descriptor.packet`` in the same motion --
        the common case at drop/eviction sites where descriptor and packet
        die together.
        """
        if descriptor.generation & 1:
            raise RuntimeError(
                f"double release: descriptor {descriptor.pd_id} already has "
                f"free (odd) generation {descriptor.generation}")
        if packet_pool is not None:
            packet_pool.release(descriptor.packet)
        descriptor.generation += 1  # even -> odd: free
        descriptor.packet = None
        descriptor.cell_pointers = []
        self._free.append(descriptor)
