"""The shared-memory switch traffic manager.

This is the substrate every experiment runs on: a centralized, globally shared
on-chip packet buffer, per-port class queues, an admission module driven by a
:class:`repro.core.base.BufferManager`, per-port output schedulers, and -- for
preemptive schemes -- an expulsion engine fed by redundant memory bandwidth.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import AdmissionDecision, BufferManager, EvictionRequest
from repro.core.expulsion import ExpulsionEngine, TokenBucket
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, MB
from repro.switchsim.cells import CellPool, PacketDescriptor
from repro.switchsim.packet import Packet
from repro.switchsim.port import EgressPort
from repro.switchsim.queue import SwitchQueue
from repro.switchsim.scheduler import make_scheduler
from repro.switchsim.stats import RateWindow, SwitchStats

#: Callback type invoked when a packet finishes transmission on a port.
TransmitCallback = Callable[[Packet, int], None]


@dataclass
class SwitchConfig:
    """Static configuration of a shared-memory switch.

    Attributes:
        num_ports: number of egress ports.
        queues_per_port: class queues per port (the paper uses up to 8).
        port_rate_bps: line rate of every port, in bits per second.
        buffer_bytes: total shared buffer capacity.
        cell_bytes: cell size of the packet buffer (the paper assumes 200 B).
        scheduler: per-port scheduler: ``fifo``, ``drr``, ``wrr`` or ``strict``.
        drr_quantum_bytes: DRR quantum.
        ecn_threshold_bytes: default per-queue ECN marking threshold
            (``None`` disables marking unless a queue overrides it).
        memory_bandwidth_bps: total packet-buffer memory bandwidth.  Defaults
            to twice the aggregate port rate (one write path plus one read
            path at full bisection bandwidth).
        expulsion_bandwidth_fraction_default: token generation rate for the
            expulsion engine as a fraction of the aggregate forwarding rate,
            used when the buffer manager does not specify one.
        expulsion_token_capacity_bytes: burst capacity of the expulsion
            token bucket.
        trace_queues: record per-event queue-length/threshold traces
            (needed by Figures 3 and 11, expensive for large runs).
        name: label used in logs and experiment output.
    """

    num_ports: int = 8
    queues_per_port: int = 1
    port_rate_bps: float = 10 * GBPS
    buffer_bytes: int = 2 * MB
    cell_bytes: int = 200
    scheduler: str = "fifo"
    drr_quantum_bytes: int = 1500
    ecn_threshold_bytes: Optional[int] = None
    memory_bandwidth_bps: Optional[float] = None
    expulsion_bandwidth_fraction_default: float = 1.0
    expulsion_token_capacity_bytes: int = 64 * KB
    trace_queues: bool = False
    name: str = "switch"

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ValueError("num_ports must be positive")
        if self.queues_per_port <= 0:
            raise ValueError("queues_per_port must be positive")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.port_rate_bps <= 0:
            raise ValueError("port_rate_bps must be positive")

    @property
    def aggregate_rate_bps(self) -> float:
        """Total forwarding capacity (sum of all port rates)."""
        return self.num_ports * self.port_rate_bps

    @property
    def total_memory_bandwidth_bps(self) -> float:
        if self.memory_bandwidth_bps is not None:
            return self.memory_bandwidth_bps
        return 2.0 * self.aggregate_rate_bps


class SharedMemorySwitch:
    """A shared-memory switch with pluggable buffer management.

    Args:
        config: static switch configuration.
        manager: the buffer-management scheme (from :mod:`repro.core`).
        simulator: the discrete-event simulator providing the clock.
        on_transmit: callback invoked as ``on_transmit(packet, port_id)`` when
            a packet completes serialization on an egress port.  The network
            simulator uses it to hand the packet to the attached link; when
            omitted, transmitted packets simply leave the model.
    """

    def __init__(
        self,
        config: SwitchConfig,
        manager: BufferManager,
        simulator: Simulator,
        on_transmit: Optional[TransmitCallback] = None,
    ) -> None:
        self.config = config
        self.manager = manager
        self.sim = simulator
        self.on_transmit = on_transmit
        self.name = config.name

        # A pooled kernel supplies packet/descriptor free lists; the cell
        # pool is the descriptor choke point, and the packet-death sites
        # below release through ``_packet_pool``.  With the default heap
        # kernel both are None and every path is byte-identical to pre-pool.
        kernel = simulator.kernel
        self._packet_pool = kernel.packet_pool
        self.cell_pool = CellPool(config.buffer_bytes, config.cell_bytes,
                                  descriptor_pool=kernel.descriptor_pool)
        if self._packet_pool is not None and on_transmit is None:
            # Sink switch (no network attached): transmitted packets leave
            # the model, so recycle them.  Bound *before* the port loop
            # below captures ``finish_callback`` partials.
            self._finish_transmit = self._finish_transmit_sink  # type: ignore[method-assign]
        self.stats = SwitchStats(trace_queues=config.trace_queues)

        # Incrementally maintained active-queue counts (total and keyed by
        # priority), updated through the queues' activity listener instead of
        # rescanning every queue on each ABM admission decision.
        self._active_total = 0
        self._active_by_priority: Dict[int, int] = defaultdict(int)

        # Build ports and queues. Queue ids are globally unique and dense so
        # they can index bitmaps directly.
        self.ports: List[EgressPort] = []
        self._queues: List[SwitchQueue] = []
        for port_id in range(config.num_ports):
            scheduler = make_scheduler(config.scheduler, config.drr_quantum_bytes)
            port = EgressPort(port_id, config.port_rate_bps, scheduler)
            # One prebuilt bound callback per port: the inner transmit loop
            # schedules it directly instead of allocating a closure per packet.
            port.finish_callback = partial(self._finish_transmit, port)
            for class_index in range(config.queues_per_port):
                queue = SwitchQueue(
                    queue_id=len(self._queues),
                    port_id=port_id,
                    class_index=class_index,
                    priority=class_index,
                    ecn_threshold_bytes=config.ecn_threshold_bytes,
                )
                queue.activity_listener = self
                port.add_queue(queue)
                self._queues.append(queue)
            self.ports.append(port)

        # Memory bandwidth accounting: a sliding window over cell-data reads
        # and writes, compared against the total memory bandwidth.
        self._memory_rate = RateWindow(window=50e-6)

        # Hook elision: the on_enqueue/on_dequeue bookkeeping hooks are
        # no-ops for every built-in scheme; only call them when a scheme
        # actually overrides them.
        self._mgr_on_enqueue = (
            manager.on_enqueue
            if type(manager).on_enqueue is not BufferManager.on_enqueue
            else None)
        self._mgr_on_dequeue = (
            manager.on_dequeue
            if type(manager).on_dequeue is not BufferManager.on_dequeue
            else None)

        # Expulsion engine for Occamy-style schemes.
        self.expulsion_engine: Optional[ExpulsionEngine] = None
        self._expulsion_retry_event = None
        manager.attach(self)
        if manager.uses_expulsion_engine:
            self._build_expulsion_engine()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_expulsion_engine(self) -> None:
        fraction = getattr(
            self.manager,
            "expulsion_bandwidth_fraction",
            self.config.expulsion_bandwidth_fraction_default,
        )
        victim_policy = getattr(self.manager, "victim_policy", "round_robin")
        max_drops = getattr(self.manager, "max_drops_per_run", 64)
        # Expulsion tokens are generated at the memory *read-path* rate (half
        # of the total read+write memory bandwidth); normal forwarding
        # consumes from the same budget, so only redundant read bandwidth is
        # left for head drops.  By default the read path equals the aggregate
        # port rate; experiments model larger chips by raising
        # ``memory_bandwidth_bps``.
        read_path_bytes_per_sec = self.config.total_memory_bandwidth_bps / 2.0 / 8.0
        rate_cells = fraction * read_path_bytes_per_sec / self.config.cell_bytes
        capacity_cells = max(
            1.0, self.config.expulsion_token_capacity_bytes / self.config.cell_bytes
        )
        bucket = TokenBucket(rate_cells_per_sec=rate_cells, capacity_cells=capacity_cells)
        self.expulsion_engine = ExpulsionEngine(
            switch=self,
            manager=self.manager,
            token_bucket=bucket,
            victim_policy=victim_policy,
            max_drops_per_run=max_drops,
        )

    # ------------------------------------------------------------------
    # State exposed to buffer managers (SwitchView)
    # ------------------------------------------------------------------
    @property
    def buffer_size_bytes(self) -> int:
        return self.config.buffer_bytes

    @property
    def occupancy_bytes(self) -> int:
        """Current buffer occupancy at cell granularity."""
        return self.cell_pool.used_bytes

    @property
    def free_buffer_bytes(self) -> int:
        return self.cell_pool.free_bytes

    @property
    def total_queue_count(self) -> int:
        return len(self._queues)

    @property
    def port_count(self) -> int:
        return len(self.ports)

    def queue_views(self) -> Sequence[SwitchQueue]:
        """All queues of the switch (they satisfy the QueueView protocol)."""
        return self._queues

    def queue(self, queue_id: int) -> SwitchQueue:
        return self._queues[queue_id]

    def queue_for(self, port_id: int, class_index: int = 0) -> SwitchQueue:
        """The queue of traffic class ``class_index`` on ``port_id``."""
        return self._queues[port_id * self.config.queues_per_port + class_index]

    def port(self, port_id: int) -> EgressPort:
        return self.ports[port_id]

    def port_rate_bytes_per_sec(self, port_id: int) -> float:
        return self.ports[port_id].rate_bytes_per_sec

    def set_port_rate(self, port_id: int, rate_bps: float) -> None:
        """Retune one egress port's line rate (per-link rates, degradation).

        The config's ``port_rate_bps`` stays the *nominal* rate (buffer and
        memory-bandwidth sizing derive from it); this only changes the wire
        speed packets serialize at, and notifies the buffer manager so
        schemes caching port rates (ABM) stay consistent.
        """
        if not rate_bps > 0:
            raise ValueError(f"port rate must be positive, got {rate_bps!r}")
        self.ports[port_id].rate_bps = rate_bps
        self.manager.on_port_rate_changed(port_id, rate_bps)

    def active_queue_count(self, priority: Optional[int] = None) -> int:
        """Number of non-empty queues, optionally restricted to a priority.

        O(1): the counts are maintained incrementally on every enqueue /
        dequeue / drop through the queues' activity listener.
        """
        if priority is None:
            return self._active_total
        return self._active_by_priority[priority]

    # -- ActivityListener protocol (called by SwitchQueue) --------------
    def queue_became_active(self, queue: SwitchQueue) -> None:
        self._active_total += 1
        self._active_by_priority[queue.priority] += 1

    def queue_became_inactive(self, queue: SwitchQueue) -> None:
        self._active_total -= 1
        self._active_by_priority[queue.priority] -= 1

    def cells_for_bytes(self, nbytes: int) -> int:
        return self.cell_pool.cells_for(nbytes)

    def buffer_utilization(self) -> float:
        return self.occupancy_bytes / self.buffer_size_bytes

    def memory_bandwidth_utilization(self, now: Optional[float] = None) -> float:
        """Fraction of the memory bandwidth consumed over the recent window."""
        if now is None:
            now = self.sim.now
        consumed_bps = self._memory_rate.rate_bytes_per_sec(now) * 8.0
        return min(1.0, consumed_bps / self.config.total_memory_bandwidth_bps)

    # ------------------------------------------------------------------
    # Ingress: admission and enqueue
    # ------------------------------------------------------------------
    def classify(self, packet: Packet, port_id: int) -> SwitchQueue:
        """Map a packet to a class queue on its egress port.

        The default policy uses ``packet.priority`` as the class index,
        clamped to the number of queues per port.
        """
        class_index = min(packet.priority, self.config.queues_per_port - 1)
        return self.queue_for(port_id, class_index)

    def receive(
        self,
        packet: Packet,
        out_port_id: int,
        class_index: Optional[int] = None,
    ) -> bool:
        """Handle a packet arriving from ingress, destined to ``out_port_id``.

        Returns True if the packet was admitted into the buffer.
        """
        now = self.sim.now
        size = packet.size_bytes
        if not 0 <= out_port_id < len(self.ports):
            raise ValueError(f"invalid egress port {out_port_id}")
        queue = (
            self.queue_for(out_port_id, class_index)
            if class_index is not None
            else self.classify(packet, out_port_id)
        )
        stats = self.stats
        stats.arrived_packets += 1
        stats.arrived_bytes += size

        decision = self.manager.admit(queue, size, now)
        if decision.accept and decision.evictions:
            self._execute_evictions(decision.evictions, now)
            if not self.cell_pool.can_fit(size):
                # Defensive re-check: evictions may have freed less than planned.
                decision = AdmissionDecision(False, reason="buffer_full")

        if not decision.accept:
            self._drop_arrival(queue, packet, decision.reason or "dropped", now)
            self._maybe_expel(now)
            return False

        descriptor = self.cell_pool.allocate(packet, now)
        if descriptor is None:  # pragma: no cover - admit checked the fit
            self._drop_arrival(queue, packet, "buffer_full", now)
            return False

        threshold = queue.ecn_threshold_bytes
        if (threshold is not None and packet.ecn_capable
                and queue.length_bytes + size > threshold
                and not packet.ecn_marked):
            packet.ecn_marked = True
            stats.ecn_marked_packets += 1
        queue.push(descriptor)
        if self._mgr_on_enqueue is not None:
            self._mgr_on_enqueue(queue, size, now)
        stats.admitted_packets += 1
        stats.admitted_bytes += size
        occupancy = self.cell_pool.used_bytes
        if occupancy > stats.max_occupancy_bytes:
            stats.max_occupancy_bytes = occupancy
        self._memory_rate.record(now, size)
        if stats.trace_queues:
            self._trace(queue, now)

        self._try_transmit(self.ports[queue.port_id])
        if self.expulsion_engine is not None:
            self._maybe_expel(now)
        return True

    def _drop_arrival(self, queue: SwitchQueue, packet: Packet, reason: str,
                      now: float) -> None:
        self.stats.record_drop(queue.queue_id, packet.size_bytes, reason,
                               time=now, queue_length=queue.length_bytes)
        queue.record_drop(packet.size_bytes, expelled=False)
        self.manager.on_drop(queue, packet.size_bytes, now, reason)
        self.stats.sample_on_drop(
            self.buffer_utilization(), self.memory_bandwidth_utilization(now)
        )
        self._trace(queue, now)
        if self._packet_pool is not None:
            # Arrival drops are the packet's death: recycle it.
            self._packet_pool.release(packet)

    def _execute_evictions(self, evictions: List[EvictionRequest], now: float) -> None:
        """Carry out Pushout-style evictions coupled to an admission."""
        packet_pool = self._packet_pool
        for request in evictions:
            queue = self._queues[request.queue_id]
            freed = 0
            while freed < request.max_bytes and queue.length_packets > 0:
                descriptor = queue.pop_head() if request.from_head else queue.pop_tail()
                if descriptor is None:
                    break
                # Capture before release: a pooled cell pool clears the
                # descriptor (and may recycle it) on the spot.
                size = descriptor.size_bytes
                packet = descriptor.packet
                self.cell_pool.release(descriptor, read_data=False)
                if packet_pool is not None:
                    packet_pool.release(packet)
                freed += size
                queue.record_drop(size, expelled=True)
                self.stats.record_eviction(queue.queue_id, size)
                self.manager.on_drop(queue, size, now, "pushout_evicted")
            self._trace(queue, now)

    # ------------------------------------------------------------------
    # Egress: scheduling and transmission
    # ------------------------------------------------------------------
    def _try_transmit(self, port: EgressPort) -> None:
        if port.busy:
            return
        queue = port.single_queue
        if queue is not None:
            # Single-queue port: any scheduler serves the one queue, so the
            # selection step collapses into the dequeue itself.
            descriptor = queue.pop_head()
            if descriptor is None:
                return
        else:
            queue = port.select_queue()
            if queue is None:
                return
            descriptor = queue.pop_head()
            if descriptor is None:  # pragma: no cover - scheduler picked active queue
                return
        port.busy = True
        delay = port.serialization_delay(descriptor.packet.size_bytes)
        # The in-flight state lives on the port (one transmission at a time);
        # the scheduled callback is the port's prebuilt bound method, so the
        # inner transmit loop allocates no closures.
        port.tx_queue = queue
        port.tx_descriptor = descriptor
        port.tx_delay = delay
        self.sim.schedule_fast(delay, port.finish_callback)

    def _finish_transmit(self, port: EgressPort) -> None:
        queue: SwitchQueue = port.tx_queue
        descriptor: PacketDescriptor = port.tx_descriptor
        delay = port.tx_delay
        port.tx_queue = None
        port.tx_descriptor = None
        now = self.sim.now
        # Capture before release: a pooled cell pool clears the descriptor.
        packet = descriptor.packet
        size = packet.size_bytes
        self.cell_pool.release(descriptor, read_data=True)
        queue.record_dequeue(size, now)
        if self._mgr_on_dequeue is not None:
            self._mgr_on_dequeue(queue, size, now)
        stats = self.stats
        stats.transmitted_packets += 1
        stats.transmitted_bytes += size
        self._memory_rate.record(now, size)
        engine = self.expulsion_engine
        if engine is not None:
            cells = self.cell_pool.cells_for(size)
            engine.token_bucket.consume_forwarding(cells, now)
        port.transmitted_packets += 1
        port.transmitted_bytes += size
        port.busy_time += delay
        port.last_tx_end = now
        port.busy = False
        if stats.trace_queues:
            self._trace(queue, now)
        if self.on_transmit is not None:
            # Ownership of the packet passes to the network layer (link ->
            # host), which recycles it at its eventual death site.
            self.on_transmit(packet, port.port_id)
        self._try_transmit(port)
        if engine is not None:
            self._maybe_expel(now)

    def _finish_transmit_sink(self, port: EgressPort) -> None:
        """Pooled variant of :meth:`_finish_transmit` for sink switches.

        Bound as an instance attribute at construction (the ``set_failed``
        idiom) when a packet pool is attached and there is no
        ``on_transmit``: the transmitted packet leaves the model here, so it
        is recycled instead of garbage-collected.  Body kept in lockstep
        with :meth:`_finish_transmit`.
        """
        queue: SwitchQueue = port.tx_queue
        descriptor: PacketDescriptor = port.tx_descriptor
        delay = port.tx_delay
        port.tx_queue = None
        port.tx_descriptor = None
        now = self.sim.now
        packet = descriptor.packet
        size = packet.size_bytes
        self.cell_pool.release(descriptor, read_data=True)
        self._packet_pool.release(packet)
        queue.record_dequeue(size, now)
        if self._mgr_on_dequeue is not None:
            self._mgr_on_dequeue(queue, size, now)
        stats = self.stats
        stats.transmitted_packets += 1
        stats.transmitted_bytes += size
        self._memory_rate.record(now, size)
        engine = self.expulsion_engine
        if engine is not None:
            cells = self.cell_pool.cells_for(size)
            engine.token_bucket.consume_forwarding(cells, now)
        port.transmitted_packets += 1
        port.transmitted_bytes += size
        port.busy_time += delay
        port.last_tx_end = now
        port.busy = False
        if stats.trace_queues:
            self._trace(queue, now)
        self._try_transmit(port)
        if engine is not None:
            self._maybe_expel(now)

    # ------------------------------------------------------------------
    # Head drop (expulsion executor)
    # ------------------------------------------------------------------
    def head_packet_bytes(self, queue_id: int) -> Optional[int]:
        """Size of the packet at the head of ``queue_id``, if any."""
        head = self._queues[queue_id].peek_head()
        return None if head is None else head.size_bytes

    def head_drop(self, queue_id: int, now: Optional[float] = None) -> Optional[int]:
        """Expel the head packet of ``queue_id``; returns its size in bytes.

        Head drops only touch PD memory and the cell-pointer free list -- the
        cell data memory is not read (``read_data=False``), which is what lets
        Occamy expel packets using pointer bandwidth only.
        """
        if now is None:
            now = self.sim.now
        queue = self._queues[queue_id]
        descriptor = queue.pop_head()
        if descriptor is None:
            return None
        # Capture before release: a pooled cell pool clears the descriptor.
        size = descriptor.size_bytes
        packet = descriptor.packet
        self.cell_pool.release(descriptor, read_data=False)
        if self._packet_pool is not None:
            self._packet_pool.release(packet)
        queue.record_drop(size, expelled=True)
        self.stats.record_expulsion(queue.queue_id, size)
        self.manager.on_drop(queue, size, now, "expelled")
        self._trace(queue, now)
        return size

    # ------------------------------------------------------------------
    # Expulsion engine driver
    # ------------------------------------------------------------------
    def _maybe_expel(self, now: float) -> None:
        engine = self.expulsion_engine
        if engine is None:
            return
        result = engine.run(now)
        if result.blocked_on_tokens and result.retry_after > 0:
            if self._expulsion_retry_event is None:
                self._expulsion_retry_event = self.sim.schedule(
                    result.retry_after, self._expulsion_retry
                )

    def _expulsion_retry(self) -> None:
        self._expulsion_retry_event = None
        self._maybe_expel(self.sim.now)

    # ------------------------------------------------------------------
    # Tracing and introspection
    # ------------------------------------------------------------------
    def _trace(self, queue: SwitchQueue, now: float) -> None:
        if self.stats.trace_queues:
            self.stats.trace_queue(
                now, queue.queue_id, queue.length_bytes,
                self.manager.threshold(queue, now),
            )

    def threshold_of(self, queue_id: int) -> float:
        """Current admission threshold of a queue (convenience for tests)."""
        return self.manager.threshold(self._queues[queue_id], self.sim.now)

    def total_backlog_bytes(self) -> int:
        return sum(queue.length_bytes for queue in self._queues)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SharedMemorySwitch {self.name!r} ports={self.port_count} "
            f"buffer={self.buffer_size_bytes}B bm={self.manager.describe()}>"
        )
