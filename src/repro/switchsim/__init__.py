"""Cell-granularity model of an on-chip shared-memory switch traffic manager.

The model follows the architecture of Section 2.1 of the paper:

* a shared packet buffer divided into fixed-size **cells**, with a free-cell
  pointer list (:mod:`repro.switchsim.cells`);
* per-port, per-class **queues** organised as linked lists of packet
  descriptors (:mod:`repro.switchsim.queue`);
* an **admission** module consulting a buffer-management scheme from
  :mod:`repro.core`;
* per-port **schedulers** (FIFO, DRR, WRR, strict priority);
* a **memory-bandwidth** token bucket and, for preemptive schemes, the
  expulsion engine that consumes only redundant bandwidth;
* detailed drop/occupancy/utilization **statistics**.
"""

from repro.switchsim.packet import Packet
from repro.switchsim.cells import CellPool, PacketDescriptor
from repro.switchsim.queue import SwitchQueue
from repro.switchsim.scheduler import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    StrictPriorityScheduler,
    WeightedRoundRobinScheduler,
    make_scheduler,
)
from repro.switchsim.port import EgressPort
from repro.switchsim.stats import SwitchStats
from repro.switchsim.switch import SharedMemorySwitch, SwitchConfig
from repro.switchsim.pipeline import DequeuePipeline, PipelineOperation

__all__ = [
    "CellPool",
    "DeficitRoundRobinScheduler",
    "DequeuePipeline",
    "EgressPort",
    "FifoScheduler",
    "Packet",
    "PacketDescriptor",
    "PipelineOperation",
    "SharedMemorySwitch",
    "StrictPriorityScheduler",
    "SwitchConfig",
    "SwitchQueue",
    "SwitchStats",
    "WeightedRoundRobinScheduler",
    "make_scheduler",
]
