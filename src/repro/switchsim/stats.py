"""Switch-level statistics: drops, occupancy, utilization and traces."""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple


@dataclass(slots=True)
class QueueTraceSample:
    """One sample of a queue-length trace (used for Figures 3 and 11)."""

    time: float
    queue_id: int
    length_bytes: int
    threshold_bytes: float


class RateWindow:
    """A sliding-window byte-rate estimator used for bandwidth utilization."""

    def __init__(self, window: float = 50e-6) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._samples: Deque[Tuple[float, int]] = deque()
        self._total = 0

    def record(self, now: float, nbytes: int) -> None:
        samples = self._samples
        samples.append((now, nbytes))
        total = self._total + nbytes
        cutoff = now - self.window
        while samples[0][0] < cutoff:
            total -= samples.popleft()[1]
        self._total = total

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            self._total -= samples.popleft()[1]

    def rate_bytes_per_sec(self, now: float) -> float:
        self._evict(now)
        return self._total / self.window


class SwitchStats:
    """Aggregated counters and samples collected by the traffic manager.

    The paper's Figure 7 plots the CDF of buffer utilization and memory
    bandwidth utilization *at packet-drop time*; those samples are recorded by
    :meth:`sample_on_drop`.
    """

    def __init__(self, trace_queues: bool = False) -> None:
        self.trace_queues = trace_queues

        # Packet/byte counters.
        self.arrived_packets = 0
        self.arrived_bytes = 0
        self.admitted_packets = 0
        self.admitted_bytes = 0
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.expelled_packets = 0
        self.expelled_bytes = 0
        self.evicted_packets = 0  # Pushout-style evictions on admission.
        self.evicted_bytes = 0
        self.ecn_marked_packets = 0

        #: Drop counts keyed by reason string.
        self.drop_reasons: Dict[str, int] = defaultdict(int)
        #: Per-queue admission-drop / expulsion counters.
        self.per_queue_drops: Dict[int, int] = defaultdict(int)
        self.per_queue_expulsions: Dict[int, int] = defaultdict(int)
        #: Time and queue length at each queue's *first* admission drop
        #: (used to detect the "drop before fair share" anomaly).
        self.first_drop_time: Dict[int, float] = {}
        self.first_drop_queue_length: Dict[int, int] = {}

        #: Buffer occupancy (fraction of B) sampled whenever a packet drops.
        self.buffer_utilization_on_drop: List[float] = []
        #: Memory-bandwidth utilization sampled whenever a packet drops.
        self.bandwidth_utilization_on_drop: List[float] = []
        #: Peak buffer occupancy in bytes.
        self.max_occupancy_bytes = 0

        #: Optional queue-length/threshold trace.
        self.queue_trace: List[QueueTraceSample] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_arrival(self, nbytes: int) -> None:
        self.arrived_packets += 1
        self.arrived_bytes += nbytes

    def record_admission(self, nbytes: int) -> None:
        self.admitted_packets += 1
        self.admitted_bytes += nbytes

    def record_transmit(self, nbytes: int) -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += nbytes

    def record_drop(self, queue_id: int, nbytes: int, reason: str,
                    time: float = 0.0, queue_length: int = 0) -> None:
        self.dropped_packets += 1
        self.dropped_bytes += nbytes
        self.drop_reasons[reason] += 1
        self.per_queue_drops[queue_id] += 1
        if queue_id not in self.first_drop_time:
            self.first_drop_time[queue_id] = time
            self.first_drop_queue_length[queue_id] = queue_length

    def record_expulsion(self, queue_id: int, nbytes: int) -> None:
        self.expelled_packets += 1
        self.expelled_bytes += nbytes
        self.drop_reasons["expelled"] += 1
        self.per_queue_expulsions[queue_id] += 1

    def record_eviction(self, queue_id: int, nbytes: int) -> None:
        self.evicted_packets += 1
        self.evicted_bytes += nbytes
        self.drop_reasons["pushout_evicted"] += 1
        self.per_queue_expulsions[queue_id] += 1

    def record_ecn_mark(self) -> None:
        self.ecn_marked_packets += 1

    def record_occupancy(self, occupancy_bytes: int) -> None:
        if occupancy_bytes > self.max_occupancy_bytes:
            self.max_occupancy_bytes = occupancy_bytes

    def sample_on_drop(self, buffer_utilization: float, bandwidth_utilization: float) -> None:
        self.buffer_utilization_on_drop.append(buffer_utilization)
        self.bandwidth_utilization_on_drop.append(bandwidth_utilization)

    def trace_queue(self, time: float, queue_id: int, length_bytes: int,
                    threshold_bytes: float) -> None:
        if self.trace_queues:
            self.queue_trace.append(
                QueueTraceSample(time, queue_id, length_bytes, threshold_bytes)
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_lost_packets(self) -> int:
        """All packets lost inside the switch, however they were lost."""
        return self.dropped_packets + self.expelled_packets + self.evicted_packets

    def loss_rate(self) -> float:
        """Fraction of arrived packets that never left through an egress port."""
        if self.arrived_packets == 0:
            return 0.0
        return self.total_lost_packets / self.arrived_packets

    def admission_drop_rate(self) -> float:
        if self.arrived_packets == 0:
            return 0.0
        return self.dropped_packets / self.arrived_packets

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of headline counters (handy for experiment CSVs)."""
        return {
            "arrived_packets": self.arrived_packets,
            "admitted_packets": self.admitted_packets,
            "transmitted_packets": self.transmitted_packets,
            "dropped_packets": self.dropped_packets,
            "expelled_packets": self.expelled_packets,
            "evicted_packets": self.evicted_packets,
            "ecn_marked_packets": self.ecn_marked_packets,
            "loss_rate": self.loss_rate(),
            "max_occupancy_bytes": self.max_occupancy_bytes,
        }
