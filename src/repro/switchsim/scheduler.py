"""Egress schedulers: FIFO, strict priority, weighted round robin and DRR.

A scheduler selects which of a port's queues transmits next.  All schedulers
implement :meth:`Scheduler.select`, which returns the chosen queue (without
dequeuing) or ``None`` when every queue is empty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.switchsim.queue import SwitchQueue


class Scheduler:
    """Base class for per-port schedulers."""

    name = "base"

    def select(self, queues: Sequence[SwitchQueue]) -> Optional[SwitchQueue]:
        """Pick the next queue to serve, or ``None`` if all are empty."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear scheduler state (round-robin pointers, deficits)."""


class FifoScheduler(Scheduler):
    """Single-queue ports: always serve the first non-empty queue."""

    name = "fifo"

    def select(self, queues: Sequence[SwitchQueue]) -> Optional[SwitchQueue]:
        for queue in queues:
            if queue.is_active:
                return queue
        return None


class StrictPriorityScheduler(Scheduler):
    """Always serve the non-empty queue with the numerically lowest priority."""

    name = "strict"

    def select(self, queues: Sequence[SwitchQueue]) -> Optional[SwitchQueue]:
        best: Optional[SwitchQueue] = None
        for queue in queues:
            if not queue.is_active:
                continue
            if best is None or queue.priority < best.priority:
                best = queue
        return best


class WeightedRoundRobinScheduler(Scheduler):
    """Packet-based weighted round robin.

    Each round, queue *i* may send up to ``weight_i`` packets.  Simple and
    cheap; byte-accurate fairness is provided by the DRR scheduler below.
    """

    name = "wrr"

    def __init__(self) -> None:
        self._credits: dict[int, float] = {}
        self._order: List[int] = []
        self._pointer = 0

    def select(self, queues: Sequence[SwitchQueue]) -> Optional[SwitchQueue]:
        active = [q for q in queues if q.is_active]
        if not active:
            return None
        # Refresh the service order lazily (queues rarely change).
        ids = [q.queue_id for q in queues]
        if ids != self._order:
            self._order = ids
            self._pointer = 0
            self._credits = {q.queue_id: q.weight for q in queues}
        n = len(queues)
        for _ in range(2 * n):
            queue = queues[self._pointer % n]
            self._pointer += 1
            if not queue.is_active:
                continue
            if self._credits.get(queue.queue_id, 0) >= 1:
                self._credits[queue.queue_id] -= 1
                return queue
            # Out of credits: replenish when every active queue is exhausted.
            if all(
                self._credits.get(q.queue_id, 0) < 1 for q in active
            ):
                for q in queues:
                    self._credits[q.queue_id] = q.weight
        return active[0]

    def reset(self) -> None:
        self._credits.clear()
        self._order = []
        self._pointer = 0


class DeficitRoundRobinScheduler(Scheduler):
    """Deficit Round Robin (byte-accurate weighted fairness).

    Each queue has a deficit counter; when its turn comes the counter is
    incremented by ``quantum * weight`` and the queue may transmit packets as
    long as the counter covers them.  This implementation selects one packet
    per call (the port transmits one packet at a time), carrying deficits
    across calls.
    """

    name = "drr"

    def __init__(self, quantum_bytes: int = 1500) -> None:
        if quantum_bytes <= 0:
            raise ValueError("quantum must be positive")
        self.quantum_bytes = quantum_bytes
        self._pointer = 0
        #: Whether the queue currently under the pointer has already received
        #: its quantum for this visit (a visit ends when the pointer moves on).
        self._visit_credited = False

    def _advance(self, n: int) -> None:
        self._pointer = (self._pointer + 1) % n
        self._visit_credited = False

    def select(self, queues: Sequence[SwitchQueue]) -> Optional[SwitchQueue]:
        active = [q for q in queues if q.is_active]
        if not active:
            return None
        n = len(queues)
        # At most two full rounds: one to top up deficits, one to pick.
        for _ in range(2 * n + 1):
            queue = queues[self._pointer % n]
            if not queue.is_active:
                # An idle queue forfeits its deficit (standard DRR).
                queue.deficit_bytes = 0.0
                self._advance(n)
                continue
            if not self._visit_credited:
                queue.deficit_bytes += self.quantum_bytes * queue.weight
                self._visit_credited = True
            head = queue.peek_head()
            assert head is not None
            if queue.deficit_bytes >= head.size_bytes:
                queue.deficit_bytes -= head.size_bytes
                return queue
            self._advance(n)
        # Fallback: guarantee progress even with pathological weights.
        return active[0]

    def reset(self) -> None:
        self._pointer = 0
        self._visit_credited = False


def make_scheduler(name: str, quantum_bytes: int = 1500) -> Scheduler:
    """Factory mapping configuration strings to scheduler instances."""
    name = name.lower()
    if name == "fifo":
        return FifoScheduler()
    if name in ("strict", "sp", "strict_priority"):
        return StrictPriorityScheduler()
    if name == "wrr":
        return WeightedRoundRobinScheduler()
    if name == "drr":
        return DeficitRoundRobinScheduler(quantum_bytes=quantum_bytes)
    raise ValueError(f"unknown scheduler {name!r}")
