"""Per-port, per-class queues of packet descriptors."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol

from repro.switchsim.cells import PacketDescriptor


class ActivityListener(Protocol):
    """Owner interested in empty<->non-empty transitions (the switch)."""

    def queue_became_active(self, queue: "SwitchQueue") -> None: ...

    def queue_became_inactive(self, queue: "SwitchQueue") -> None: ...


class SwitchQueue:
    """A queue of packet descriptors, matching the PD linked list of Figure 2.

    The queue also satisfies the :class:`repro.core.base.QueueView` protocol so
    buffer-management schemes can observe it directly.

    Attributes:
        queue_id: globally unique queue index within the switch.
        port_id: the egress port this queue belongs to.
        class_index: index of the queue within its port (traffic class).
        priority: scheduling priority; lower value = higher priority.
        weight: scheduling weight for WRR/DRR.
        alpha_override: optional per-queue DT/ABM alpha (commodity chips allow
            per-queue alpha configuration, used heavily in the paper's
            priority experiments).
        ecn_threshold_bytes: optional per-queue ECN marking threshold.
        activity_listener: optional owner notified on every empty<->non-empty
            transition; the switch uses it to maintain per-priority active
            queue counts incrementally instead of rescanning all queues.
    """

    __slots__ = (
        "queue_id", "port_id", "class_index", "priority", "weight",
        "alpha_override", "ecn_threshold_bytes", "activity_listener",
        "_descriptors", "_length_bytes", "deficit_bytes", "_drain_rate",
        "_last_dequeue_time", "enqueued_packets", "enqueued_bytes",
        "dequeued_packets", "dequeued_bytes", "dropped_packets",
        "dropped_bytes", "expelled_packets", "expelled_bytes",
    )

    def __init__(
        self,
        queue_id: int,
        port_id: int,
        class_index: int = 0,
        priority: int = 0,
        weight: float = 1.0,
        alpha_override: Optional[float] = None,
        ecn_threshold_bytes: Optional[int] = None,
    ) -> None:
        self.queue_id = queue_id
        self.port_id = port_id
        self.class_index = class_index
        self.priority = priority
        self.weight = weight
        self.alpha_override = alpha_override
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.activity_listener: Optional[ActivityListener] = None

        self._descriptors: Deque[PacketDescriptor] = deque()
        self._length_bytes = 0
        #: Deficit counter used by the DRR scheduler.
        self.deficit_bytes = 0.0
        #: Exponentially weighted drain-rate estimate in bytes/second.
        self._drain_rate = 0.0
        self._last_dequeue_time: Optional[float] = None

        # Cumulative statistics.
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.expelled_packets = 0
        self.expelled_bytes = 0

    # ------------------------------------------------------------------
    # QueueView protocol
    # ------------------------------------------------------------------
    @property
    def length_bytes(self) -> int:
        return self._length_bytes

    @property
    def length_packets(self) -> int:
        return len(self._descriptors)

    @property
    def drain_rate_estimate(self) -> float:
        return self._drain_rate

    @property
    def is_active(self) -> bool:
        """A queue is active when it holds at least one packet."""
        return bool(self._descriptors)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, descriptor: PacketDescriptor) -> None:
        """Append a descriptor at the tail (normal enqueue)."""
        descriptors = self._descriptors
        was_empty = not descriptors
        descriptors.append(descriptor)
        size = descriptor.packet.size_bytes
        self._length_bytes += size
        self.enqueued_packets += 1
        self.enqueued_bytes += size
        if was_empty and self.activity_listener is not None:
            self.activity_listener.queue_became_active(self)

    def peek_head(self) -> Optional[PacketDescriptor]:
        """The descriptor at the head of the queue, without removing it."""
        return self._descriptors[0] if self._descriptors else None

    def peek_tail(self) -> Optional[PacketDescriptor]:
        return self._descriptors[-1] if self._descriptors else None

    def pop_head(self) -> Optional[PacketDescriptor]:
        """Remove and return the head descriptor (dequeue or head drop)."""
        descriptors = self._descriptors
        if not descriptors:
            return None
        descriptor = descriptors.popleft()
        self._length_bytes -= descriptor.packet.size_bytes
        if not descriptors and self.activity_listener is not None:
            self.activity_listener.queue_became_inactive(self)
        return descriptor

    def pop_tail(self) -> Optional[PacketDescriptor]:
        """Remove and return the tail descriptor (classic pushout eviction)."""
        descriptors = self._descriptors
        if not descriptors:
            return None
        descriptor = descriptors.pop()
        self._length_bytes -= descriptor.packet.size_bytes
        if not descriptors and self.activity_listener is not None:
            self.activity_listener.queue_became_inactive(self)
        return descriptor

    # ------------------------------------------------------------------
    # Statistics hooks
    # ------------------------------------------------------------------
    def record_dequeue(self, size_bytes: int, now: float) -> None:
        """Update counters and the drain-rate estimate after a transmission."""
        self.dequeued_packets += 1
        self.dequeued_bytes += size_bytes
        last = self._last_dequeue_time
        if last is not None:
            delta = now - last
            if delta > 0:
                # EWMA with a modest gain: responsive but not jittery.
                self._drain_rate = (0.8 * self._drain_rate
                                    + 0.2 * (size_bytes / delta))
        self._last_dequeue_time = now

    def record_drop(self, size_bytes: int, expelled: bool = False) -> None:
        """Update drop counters (``expelled`` = proactive head drop)."""
        if expelled:
            self.expelled_packets += 1
            self.expelled_bytes += size_bytes
        else:
            self.dropped_packets += 1
            self.dropped_bytes += size_bytes

    def clear(self, release=None) -> None:
        """Empty the queue (used by tests and switch reset).

        ``release`` is an optional per-descriptor callback invoked for each
        discarded descriptor before it is dropped -- pooled callers pass a
        recycling hook so cleared descriptors/packets return to their pools
        instead of leaking.
        """
        was_active = bool(self._descriptors)
        if release is not None:
            for descriptor in self._descriptors:
                release(descriptor)
        self._descriptors.clear()
        self._length_bytes = 0
        self.deficit_bytes = 0.0
        if was_active and self.activity_listener is not None:
            self.activity_listener.queue_became_inactive(self)

    def __len__(self) -> int:
        return len(self._descriptors)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SwitchQueue {self.queue_id} port={self.port_id} "
            f"class={self.class_index} len={self._length_bytes}B>"
        )
