"""Per-port, per-class queues of packet descriptors."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.switchsim.cells import PacketDescriptor


class SwitchQueue:
    """A queue of packet descriptors, matching the PD linked list of Figure 2.

    The queue also satisfies the :class:`repro.core.base.QueueView` protocol so
    buffer-management schemes can observe it directly.

    Attributes:
        queue_id: globally unique queue index within the switch.
        port_id: the egress port this queue belongs to.
        class_index: index of the queue within its port (traffic class).
        priority: scheduling priority; lower value = higher priority.
        weight: scheduling weight for WRR/DRR.
        alpha_override: optional per-queue DT/ABM alpha (commodity chips allow
            per-queue alpha configuration, used heavily in the paper's
            priority experiments).
        ecn_threshold_bytes: optional per-queue ECN marking threshold.
    """

    def __init__(
        self,
        queue_id: int,
        port_id: int,
        class_index: int = 0,
        priority: int = 0,
        weight: float = 1.0,
        alpha_override: Optional[float] = None,
        ecn_threshold_bytes: Optional[int] = None,
    ) -> None:
        self.queue_id = queue_id
        self.port_id = port_id
        self.class_index = class_index
        self.priority = priority
        self.weight = weight
        self.alpha_override = alpha_override
        self.ecn_threshold_bytes = ecn_threshold_bytes

        self._descriptors: Deque[PacketDescriptor] = deque()
        self._length_bytes = 0
        #: Deficit counter used by the DRR scheduler.
        self.deficit_bytes = 0.0
        #: Exponentially weighted drain-rate estimate in bytes/second.
        self._drain_rate = 0.0
        self._last_dequeue_time: Optional[float] = None

        # Cumulative statistics.
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.expelled_packets = 0
        self.expelled_bytes = 0

    # ------------------------------------------------------------------
    # QueueView protocol
    # ------------------------------------------------------------------
    @property
    def length_bytes(self) -> int:
        return self._length_bytes

    @property
    def length_packets(self) -> int:
        return len(self._descriptors)

    @property
    def drain_rate_estimate(self) -> float:
        return self._drain_rate

    @property
    def is_active(self) -> bool:
        """A queue is active when it holds at least one packet."""
        return bool(self._descriptors)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, descriptor: PacketDescriptor) -> None:
        """Append a descriptor at the tail (normal enqueue)."""
        self._descriptors.append(descriptor)
        self._length_bytes += descriptor.size_bytes
        self.enqueued_packets += 1
        self.enqueued_bytes += descriptor.size_bytes

    def peek_head(self) -> Optional[PacketDescriptor]:
        """The descriptor at the head of the queue, without removing it."""
        return self._descriptors[0] if self._descriptors else None

    def peek_tail(self) -> Optional[PacketDescriptor]:
        return self._descriptors[-1] if self._descriptors else None

    def pop_head(self) -> Optional[PacketDescriptor]:
        """Remove and return the head descriptor (dequeue or head drop)."""
        if not self._descriptors:
            return None
        descriptor = self._descriptors.popleft()
        self._length_bytes -= descriptor.size_bytes
        return descriptor

    def pop_tail(self) -> Optional[PacketDescriptor]:
        """Remove and return the tail descriptor (classic pushout eviction)."""
        if not self._descriptors:
            return None
        descriptor = self._descriptors.pop()
        self._length_bytes -= descriptor.size_bytes
        return descriptor

    # ------------------------------------------------------------------
    # Statistics hooks
    # ------------------------------------------------------------------
    def record_dequeue(self, size_bytes: int, now: float) -> None:
        """Update counters and the drain-rate estimate after a transmission."""
        self.dequeued_packets += 1
        self.dequeued_bytes += size_bytes
        if self._last_dequeue_time is not None:
            delta = now - self._last_dequeue_time
            if delta > 0:
                instantaneous = size_bytes / delta
                # EWMA with a modest gain: responsive but not jittery.
                self._drain_rate = 0.8 * self._drain_rate + 0.2 * instantaneous
        self._last_dequeue_time = now

    def record_drop(self, size_bytes: int, expelled: bool = False) -> None:
        """Update drop counters (``expelled`` = proactive head drop)."""
        if expelled:
            self.expelled_packets += 1
            self.expelled_bytes += size_bytes
        else:
            self.dropped_packets += 1
            self.dropped_bytes += size_bytes

    def clear(self) -> None:
        """Empty the queue (used by tests and switch reset)."""
        self._descriptors.clear()
        self._length_bytes = 0
        self.deficit_bytes = 0.0

    def __len__(self) -> int:
        return len(self._descriptors)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SwitchQueue {self.queue_id} port={self.port_id} "
            f"class={self.class_index} len={self._length_bytes}B>"
        )
