"""A functional model of the packet dequeue pipeline (Figure 10).

The pipeline has five operations:

1. read the packet descriptor (PD memory);
2. dequeue the PD (advance the head of the PD linked list);
3. read a cell pointer (cell pointer memory);
4. free the cell (move its pointer to the free cell pointer list);
5. read the cell data (cell data memory).

For a packet of ``n`` cells, operations 3-5 repeat ``n`` times.  A *head drop*
executes the same pipeline **minus operation 5**, which is the paper's key
observation: expelling a packet never touches cell data memory, so it only
consumes pointer bandwidth.  This model counts per-memory accesses and cycles
so tests and the hardware-cost analysis can verify that property and estimate
how many head drops fit into the redundant bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class PipelineOperation(enum.Enum):
    """The five dequeue-pipeline operations of Figure 10."""

    READ_PD = "read_pd"
    DEQUEUE_PD = "dequeue_pd"
    READ_CELL_PTR = "read_cell_ptr"
    FREE_CELL = "free_cell"
    READ_CELL_DATA = "read_cell_data"


#: Which physical memory each operation touches.
OPERATION_MEMORY: Dict[PipelineOperation, str] = {
    PipelineOperation.READ_PD: "pd",
    PipelineOperation.DEQUEUE_PD: "pd",
    PipelineOperation.READ_CELL_PTR: "cell_pointer",
    PipelineOperation.FREE_CELL: "cell_pointer",
    PipelineOperation.READ_CELL_DATA: "cell_data",
}


@dataclass
class PipelineSchedule:
    """The result of running a packet through the dequeue pipeline."""

    operations: List[PipelineOperation] = field(default_factory=list)
    cycles: int = 0
    memory_accesses: Dict[str, int] = field(default_factory=dict)

    def accesses(self, memory: str) -> int:
        return self.memory_accesses.get(memory, 0)


class DequeuePipeline:
    """Counts cycles and memory accesses for dequeues and head drops.

    Args:
        parallel_pointer_lists: number of parallel cell-pointer sub-lists a PD
            maintains; reading ``k`` pointers per cycle multiplies pointer
            throughput by ``k`` (Section 3.2, opportunity 3).
    """

    def __init__(self, parallel_pointer_lists: int = 1) -> None:
        if parallel_pointer_lists <= 0:
            raise ValueError("parallel_pointer_lists must be positive")
        self.parallel_pointer_lists = parallel_pointer_lists

    def _run(self, num_cells: int, read_data: bool) -> PipelineSchedule:
        if num_cells <= 0:
            raise ValueError("a packet occupies at least one cell")
        schedule = PipelineSchedule()
        ops = schedule.operations
        counts: Dict[str, int] = {"pd": 0, "cell_pointer": 0, "cell_data": 0}

        # Cycle 1: read PD. Cycle 2: dequeue PD.
        ops.append(PipelineOperation.READ_PD)
        ops.append(PipelineOperation.DEQUEUE_PD)
        counts["pd"] += 2
        cycles = 2

        # Cell pointer reads/frees proceed at `parallel_pointer_lists` per
        # cycle; the data read (if any) is pipelined with them and therefore
        # does not add cycles, only accesses.
        pointer_cycles = -(-num_cells // self.parallel_pointer_lists)
        cycles += pointer_cycles
        for _ in range(num_cells):
            ops.append(PipelineOperation.READ_CELL_PTR)
            ops.append(PipelineOperation.FREE_CELL)
            counts["cell_pointer"] += 2
            if read_data:
                ops.append(PipelineOperation.READ_CELL_DATA)
                counts["cell_data"] += 1

        schedule.cycles = cycles
        schedule.memory_accesses = counts
        return schedule

    def dequeue(self, num_cells: int) -> PipelineSchedule:
        """Pipeline schedule for a normal dequeue (reads cell data)."""
        return self._run(num_cells, read_data=True)

    def head_drop(self, num_cells: int) -> PipelineSchedule:
        """Pipeline schedule for a head drop (never reads cell data)."""
        return self._run(num_cells, read_data=False)

    def drops_per_second(self, clock_hz: float, cells_per_packet: int) -> float:
        """Upper bound on head drops per second at a given pointer clock."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        cycles = self.head_drop(cells_per_packet).cycles
        return clock_hz / cycles
