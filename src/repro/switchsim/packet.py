"""The packet abstraction shared by the switch and network simulators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A network packet (or a raw traffic-manager cell burst in switch tests).

    Only ``size_bytes`` matters to the traffic manager; the remaining fields
    carry end-to-end semantics for the network simulator (flow identity,
    sequencing, ECN, priority class).

    Attributes:
        size_bytes: wire size of the packet, including headers.
        flow_id: identifier of the owning flow (-1 for anonymous traffic).
        src / dst: host identifiers (netsim) or free-form labels.
        seq: first byte sequence number carried by this packet.
        payload_bytes: number of flow bytes carried (0 for pure ACKs).
        is_ack: whether this is an acknowledgement packet.
        ack_seq: cumulative ACK number (valid when ``is_ack``).
        ecn_capable: whether the packet may be ECN-marked instead of dropped.
        ecn_marked: set by the switch when the queue exceeds the ECN threshold.
        ecn_echo: set on ACKs echoing a mark back to the sender.
        priority: traffic class; lower value = higher priority.
        created_at: simulation time the packet was created (for latency stats).
        metadata: free-form annotations (e.g. query id) used by workloads.
        generation: pool recycling parity (see ``repro.switchsim.pool``):
            even while live, odd while sitting on a free list.  Stays 0 for
            packets never owned by a pool.
    """

    size_bytes: int
    flow_id: int = -1
    src: int = -1
    dst: int = -1
    seq: int = 0
    payload_bytes: int = 0
    is_ack: bool = False
    ack_seq: int = 0
    ecn_capable: bool = True
    ecn_marked: bool = False
    ecn_echo: bool = False
    priority: int = 0
    created_at: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    generation: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    def copy_header(self) -> "Packet":
        """Return a shallow copy with a fresh packet id (used for retransmits)."""
        clone = Packet(
            size_bytes=self.size_bytes,
            flow_id=self.flow_id,
            src=self.src,
            dst=self.dst,
            seq=self.seq,
            payload_bytes=self.payload_bytes,
            is_ack=self.is_ack,
            ack_seq=self.ack_seq,
            ecn_capable=self.ecn_capable,
            priority=self.priority,
            created_at=self.created_at,
            metadata=dict(self.metadata),
        )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"<Packet #{self.packet_id} {kind} flow={self.flow_id} "
            f"seq={self.seq} size={self.size_bytes}B prio={self.priority}>"
        )
