"""Factory mapping transport names to sender classes."""

from __future__ import annotations

from typing import Dict, Type

from repro.netsim.transport.base import SenderTransport
from repro.netsim.transport.cubic import CubicTransport
from repro.netsim.transport.dctcp import DctcpTransport
from repro.netsim.transport.reno import RenoTransport

_TRANSPORTS: Dict[str, Type[SenderTransport]] = {
    "reno": RenoTransport,
    "dctcp": DctcpTransport,
    "cubic": CubicTransport,
}


def make_transport(name: str) -> Type[SenderTransport]:
    """Return the sender class registered under ``name``."""
    try:
        return _TRANSPORTS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown transport {name!r}; available: {', '.join(sorted(_TRANSPORTS))}"
        ) from None


def register_transport(name: str, cls: Type[SenderTransport]) -> None:
    """Register a custom transport class (for extensions and tests)."""
    _TRANSPORTS[name.lower()] = cls
