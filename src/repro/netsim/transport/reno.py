"""TCP Reno (NewReno-flavoured) congestion control."""

from __future__ import annotations

from repro.netsim.transport.base import SenderTransport


class RenoTransport(SenderTransport):
    """Classic AIMD: slow start, congestion avoidance, halve on loss.

    The behaviour is entirely provided by the base class defaults; the class
    exists so experiments can request ``"reno"`` explicitly and so the CC
    hooks have an unambiguous home.
    """

    name = "reno"
