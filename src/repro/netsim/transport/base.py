"""Window-based reliable transport: sender and receiver state machines.

The simulator models transport at packet granularity: a flow of ``S`` bytes is
split into ``ceil(S / mss)`` segments, each carried by one data packet and
acknowledged cumulatively by the receiver.  The sender keeps a congestion
window in segments, detects losses via three duplicate ACKs (fast retransmit)
or a retransmission timeout (go-back-N recovery), and estimates the RTO from
smoothed RTT samples.  Congestion-control variants (Reno, DCTCP, CUBIC)
override the window-adjustment hooks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Set

from repro.switchsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.host import Host
    from repro.workloads.spec import FlowSpec


@dataclass
class TransportConfig:
    """Parameters shared by all transport variants.

    Attributes:
        mss_bytes: maximum segment (payload) size.
        header_bytes: header overhead per packet (IP + TCP).
        ack_bytes: wire size of a pure ACK.
        initial_cwnd: initial window in segments.
        min_rto: lower bound on the retransmission timeout (the paper's
            simulations use 5 ms).
        initial_rto: RTO before the first RTT sample.
        max_rto: upper bound on the (exponentially backed-off) RTO.
        dupack_threshold: duplicate ACKs that trigger fast retransmit.
        ecn_enabled: whether data packets advertise ECN capability.
        dctcp_g: DCTCP's EWMA gain for the marked fraction.
    """

    mss_bytes: int = 1460
    header_bytes: int = 40
    ack_bytes: int = 64
    initial_cwnd: float = 10.0
    min_rto: float = 5e-3
    initial_rto: float = 10e-3
    max_rto: float = 1.0
    dupack_threshold: int = 3
    ecn_enabled: bool = True
    dctcp_g: float = 1.0 / 16.0


class ReceiverState:
    """Receiver side of a flow: reassembly, cumulative ACKs and ECN echo."""

    def __init__(self, flow_spec: "FlowSpec", config: TransportConfig,
                 on_complete: Callable[[int, float], None],
                 packet_pool=None) -> None:
        self.spec = flow_spec
        self.config = config
        self.total_segments = max(1, math.ceil(flow_spec.size_bytes / config.mss_bytes))
        self.rcv_nxt = 0
        self._out_of_order: Set[int] = set()
        self.completed = False
        self._on_complete = on_complete
        self.received_packets = 0
        # ACK allocation factory: the pool's acquire mirrors the Packet
        # constructor signature, so both kernels share the call site below.
        self._make_packet = Packet if packet_pool is None else packet_pool.acquire

    def on_data(self, packet: Packet, now: float) -> Packet:
        """Process a data packet; returns the ACK to send back."""
        self.received_packets += 1
        seq = packet.seq
        if seq >= self.rcv_nxt:
            self._out_of_order.add(seq)
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
        ack = self._make_packet(
            size_bytes=self.config.ack_bytes,
            flow_id=packet.flow_id,
            src=packet.dst,
            dst=packet.src,
            is_ack=True,
            ack_seq=self.rcv_nxt,
            payload_bytes=0,
            ecn_capable=False,
            priority=packet.priority,
            created_at=now,
        )
        ack.ecn_echo = packet.ecn_marked
        # Echo the sender's timestamp so it can take an RTT sample.
        if "ts" in packet.metadata:
            ack.metadata["ts_echo"] = packet.metadata["ts"]
            ack.metadata["ts_seq"] = packet.seq
        if not self.completed and self.rcv_nxt >= self.total_segments:
            self.completed = True
            self._on_complete(self.spec.flow_id, now)
        return ack


class SenderTransport:
    """Sender side of a flow: reliability, RTT estimation and a cwnd.

    Subclasses customise congestion control by overriding
    :meth:`on_new_ack_cc`, :meth:`on_ecn_feedback`, :meth:`on_fast_retransmit`
    and :meth:`on_timeout_cc`.
    """

    name = "base"

    def __init__(self, host: "Host", flow_spec: "FlowSpec",
                 config: Optional[TransportConfig] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.spec = flow_spec
        self.config = config or TransportConfig()
        # Data-packet allocation factory (see ReceiverState): draws from the
        # kernel's packet pool when one exists, else the plain constructor.
        pool = self.sim.kernel.packet_pool
        self._make_packet = Packet if pool is None else pool.acquire

        self.total_segments = max(
            1, math.ceil(flow_spec.size_bytes / self.config.mss_bytes)
        )
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = self.config.initial_cwnd
        self.ssthresh = float("inf")
        self.dup_acks = 0
        self.in_recovery = False
        self.recovery_point = 0
        self.finished = False

        # RTT estimation (RFC 6298 style).
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = self.config.initial_rto
        #: Lazy RTO timer: ``_rto_deadline`` is the authoritative expiry time;
        #: the scheduled event is only moved when it would fire too late, so
        #: restarting the timer on every ACK costs no heap operations.
        self._rto_event = None
        self._rto_event_time = 0.0
        self._rto_deadline: Optional[float] = None
        self._rto_backoff = 1

        # Statistics.
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.start_time: Optional[float] = None
        self.complete_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the flow: begin transmitting up to the initial window."""
        self.start_time = self.sim.now
        self._send_available()

    @property
    def done(self) -> bool:
        return self.snd_una >= self.total_segments

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _segment_payload(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            remainder = self.spec.size_bytes - seq * self.config.mss_bytes
            return max(1, remainder)
        return self.config.mss_bytes

    def _build_packet(self, seq: int) -> Packet:
        payload = self._segment_payload(seq)
        packet = self._make_packet(
            size_bytes=payload + self.config.header_bytes,
            flow_id=self.spec.flow_id,
            src=self.spec.src,
            dst=self.spec.dst,
            seq=seq,
            payload_bytes=payload,
            ecn_capable=self.config.ecn_enabled,
            priority=self.spec.priority,
            created_at=self.sim.now,
        )
        packet.metadata["ts"] = self.sim.now
        return packet

    def _send_segment(self, seq: int, retransmission: bool = False) -> None:
        packet = self._build_packet(seq)
        if retransmission:
            self.retransmissions += 1
            # Karn's algorithm: never sample RTT from retransmitted segments.
            packet.metadata.pop("ts", None)
        self.packets_sent += 1
        self.host.send_packet(packet)

    def _send_available(self) -> None:
        """Send new segments while the window allows."""
        window = max(1, int(self.cwnd))
        while (not self.done and self.snd_nxt < self.total_segments
               and self.snd_nxt - self.snd_una < window):
            self._send_segment(self.snd_nxt)
            self.snd_nxt += 1
        if not self.done:
            self._arm_rto()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        if self.finished:
            return
        now = self.sim.now
        self._maybe_sample_rtt(packet, now)
        ack = packet.ack_seq
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            self.snd_una = ack
            self.dup_acks = 0
            self._rto_backoff = 1
            if self.in_recovery and self.snd_una >= self.recovery_point:
                self.in_recovery = False
            self.on_ecn_feedback(newly_acked, packet.ecn_echo)
            if not self.in_recovery:
                self.on_new_ack_cc(newly_acked)
            if self.done:
                self._complete(now)
                return
            self._send_available()
            self._arm_rto(restart=True)
        else:
            self.dup_acks += 1
            self.on_ecn_feedback(0, packet.ecn_echo)
            if (self.dup_acks == self.config.dupack_threshold
                    and not self.in_recovery and not self.done):
                self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self.in_recovery = True
        self.recovery_point = self.snd_nxt
        self.on_fast_retransmit()
        self.cwnd = max(2.0, self.cwnd)
        self._send_segment(self.snd_una, retransmission=True)
        self._arm_rto(restart=True)

    def _maybe_sample_rtt(self, packet: Packet, now: float) -> None:
        ts = packet.metadata.get("ts_echo")
        if ts is None:
            return
        sample = now - ts
        if sample <= 0:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            self.config.max_rto,
            max(self.config.min_rto, self.srtt + 4 * (self.rttvar or 0.0)),
        )

    # ------------------------------------------------------------------
    # Retransmission timeout
    # ------------------------------------------------------------------
    def _arm_rto(self, restart: bool = False) -> None:
        if self.done:
            self._cancel_rto()
            return
        if self._rto_deadline is not None and not restart:
            return
        timeout = min(self.config.max_rto, self.rto * self._rto_backoff)
        self._rto_deadline = deadline = self.sim.now + timeout
        event = self._rto_event
        if event is not None:
            if self._rto_event_time <= deadline:
                # The pending event fires at or before the new deadline; when
                # it does, _on_rto re-arms for the remainder.  This is the
                # common case, so restarting the timer is free.
                return
            event.cancel()
        self._rto_event = self.sim.at(deadline, self._on_rto)
        self._rto_event_time = deadline

    def _cancel_rto(self) -> None:
        # Lazy: the pending event (if any) no-ops once the deadline is gone.
        self._rto_deadline = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.finished or self.done:
            return
        deadline = self._rto_deadline
        if deadline is None:
            return
        if self.sim.now < deadline:
            # The deadline moved out while this event was pending; re-arm at
            # the exact deadline (absolute scheduling keeps float timing
            # identical to an eagerly restarted timer).
            self._rto_event = self.sim.at(deadline, self._on_rto)
            self._rto_event_time = deadline
            return
        self.timeouts += 1
        self._rto_backoff = min(64, self._rto_backoff * 2)
        self.dup_acks = 0
        self.in_recovery = False
        self.on_timeout_cc()
        # Go-back-N: rewind the send pointer and retransmit the first
        # unacknowledged segment immediately.
        self.snd_nxt = self.snd_una
        self._send_segment(self.snd_una, retransmission=True)
        self.snd_nxt = self.snd_una + 1
        self._arm_rto(restart=True)

    def _complete(self, now: float) -> None:
        self.finished = True
        self.complete_time = now
        self._cancel_rto()
        self.host.sender_finished(self)

    # ------------------------------------------------------------------
    # Congestion-control hooks (Reno defaults)
    # ------------------------------------------------------------------
    def on_new_ack_cc(self, newly_acked: int) -> None:
        """Window growth on new cumulative ACKs (slow start / AIMD)."""
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / max(1.0, self.cwnd)

    def on_ecn_feedback(self, newly_acked: int, ecn_echo: bool) -> None:
        """ECN handling; plain Reno ignores marks."""

    def on_fast_retransmit(self) -> None:
        """Multiplicative decrease on fast retransmit."""
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh

    def on_timeout_cc(self) -> None:
        """Window collapse on a retransmission timeout."""
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<{type(self).__name__} flow={self.spec.flow_id} "
            f"una={self.snd_una}/{self.total_segments} cwnd={self.cwnd:.1f}>"
        )
