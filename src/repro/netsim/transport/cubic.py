"""A simplified TCP CUBIC sender.

CUBIC grows the window as a cubic function of the time since the last loss,
with the plateau anchored at the window size just before that loss.  The
paper uses CUBIC for the background flows of the performance-isolation
experiments (Section 6.2), where the relevant property is simply that the
background traffic is loss-driven and keeps queues full -- which this
simplified model captures.
"""

from __future__ import annotations

from repro.netsim.transport.base import SenderTransport

#: CUBIC scaling constant (RFC 8312).
CUBIC_C = 0.4
#: Multiplicative decrease factor.
CUBIC_BETA = 0.7


class CubicTransport(SenderTransport):
    """CUBIC window growth with beta=0.7 multiplicative decrease."""

    name = "cubic"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._w_max = self.cwnd
        self._epoch_start: float | None = None
        self._k = 0.0

    def _begin_epoch(self) -> None:
        self._epoch_start = self.sim.now
        self._k = ((self._w_max * (1 - CUBIC_BETA)) / CUBIC_C) ** (1.0 / 3.0)

    def on_new_ack_cc(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += float(newly_acked)
            return
        if self._epoch_start is None:
            self._begin_epoch()
        t = self.sim.now - self._epoch_start
        target = CUBIC_C * (t - self._k) ** 3 + self._w_max
        if target > self.cwnd:
            # Approach the cubic target over roughly one RTT worth of ACKs.
            self.cwnd += min(float(newly_acked), (target - self.cwnd) / max(1.0, self.cwnd))
        else:
            # TCP-friendly region: grow at least like Reno.
            self.cwnd += 0.01 * newly_acked / max(1.0, self.cwnd)

    def on_fast_retransmit(self) -> None:
        self._w_max = self.cwnd
        self.cwnd = max(2.0, self.cwnd * CUBIC_BETA)
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_timeout_cc(self) -> None:
        self._w_max = self.cwnd
        self.ssthresh = max(2.0, self.cwnd * CUBIC_BETA)
        self.cwnd = 1.0
        self._epoch_start = None
