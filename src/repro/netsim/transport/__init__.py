"""End-host transport protocols for the packet-level network simulator."""

from repro.netsim.transport.base import ReceiverState, SenderTransport, TransportConfig
from repro.netsim.transport.reno import RenoTransport
from repro.netsim.transport.dctcp import DctcpTransport
from repro.netsim.transport.cubic import CubicTransport
from repro.netsim.transport.factory import make_transport

__all__ = [
    "CubicTransport",
    "DctcpTransport",
    "ReceiverState",
    "RenoTransport",
    "SenderTransport",
    "TransportConfig",
    "make_transport",
]
