"""DCTCP: ECN-proportional window reduction (Alizadeh et al., SIGCOMM 2010).

DCTCP keeps a running estimate ``alpha`` of the fraction of ECN-marked
acknowledged bytes and, once per window, reduces the congestion window by
``alpha / 2`` when any marks were observed.  This yields small, persistent
queues -- the congestion-control algorithm used by all of the paper's
experiments except the CUBIC background flows of the isolation tests.
"""

from __future__ import annotations

from repro.netsim.transport.base import SenderTransport


class DctcpTransport(SenderTransport):
    """DCTCP sender: ECN-fraction-proportional multiplicative decrease."""

    name = "dctcp"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Running estimate of the marked fraction.
        self.alpha = 1.0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_end = self.snd_una + max(1, int(self.cwnd))
        self._cut_this_window = False

    def on_ecn_feedback(self, newly_acked: int, ecn_echo: bool) -> None:
        if newly_acked <= 0:
            return
        self._acked_in_window += newly_acked
        if ecn_echo:
            self._marked_in_window += newly_acked
            # React immediately (once per window) like real DCTCP: cut by
            # alpha/2 as soon as congestion is signalled, then refine alpha at
            # the window boundary.
            if not self._cut_this_window:
                self._cut_this_window = True
                self.cwnd = max(2.0, self.cwnd * (1.0 - self.alpha / 2.0))
                self.ssthresh = self.cwnd
        if self.snd_una >= self._window_end:
            fraction = (
                self._marked_in_window / self._acked_in_window
                if self._acked_in_window else 0.0
            )
            g = self.config.dctcp_g
            self.alpha = (1.0 - g) * self.alpha + g * fraction
            self._acked_in_window = 0
            self._marked_in_window = 0
            self._cut_this_window = False
            self._window_end = self.snd_una + max(1, int(self.cwnd))

    def on_timeout_cc(self) -> None:
        super().on_timeout_cc()
        # A timeout is unequivocal congestion: saturate the estimate.
        self.alpha = 1.0
