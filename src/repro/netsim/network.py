"""The network: hosts, switch nodes, links, workload injection and metrics."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.metrics.flows import FlowRecord, FlowStats
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.switch_node import SwitchNode
from repro.netsim.transport.base import ReceiverState, TransportConfig
from repro.netsim.transport.factory import make_transport
from repro.sim.engine import Simulator
from repro.workloads.spec import FlowSpec


class Network:
    """A complete simulated network.

    Typical usage (usually via the :mod:`repro.topology` builders)::

        sim = Simulator()
        net = Network(sim, bottleneck_bps=10e9, base_rtt=40e-6)
        h0 = net.add_host(0, nic_rate_bps=10e9)
        ...
        net.inject_flows(flows, transport="dctcp")
        net.run(until=0.1)
        print(net.flow_stats.average_qct())
    """

    def __init__(self, sim: Simulator, bottleneck_bps: float, base_rtt: float) -> None:
        self.sim = sim
        self.hosts: Dict[int, Host] = {}
        self.switch_nodes: Dict[str, SwitchNode] = {}
        self.flow_stats = FlowStats(bottleneck_bps=bottleneck_bps, base_rtt=base_rtt)
        self._transport_config = TransportConfig()
        #: Flow specs injected so far, for introspection and experiments.
        self.injected_flows: List[FlowSpec] = []

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_host(self, host_id: int, nic_rate_bps: float) -> Host:
        if host_id in self.hosts:
            raise ValueError(f"host {host_id} already exists")
        host = Host(host_id, self.sim, nic_rate_bps)
        self.hosts[host_id] = host
        return host

    def add_switch(self, node: SwitchNode) -> SwitchNode:
        if node.name in self.switch_nodes:
            raise ValueError(f"switch {node.name} already exists")
        self.switch_nodes[node.name] = node
        return node

    def connect_host_to_switch(self, host: Host, switch: SwitchNode, port_id: int,
                               delay: float) -> None:
        """Create the host<->switch link pair and register the direct route."""
        up = Link(self.sim, switch, delay, name=f"h{host.host_id}->{switch.name}")
        down = Link(self.sim, host, delay, name=f"{switch.name}->h{host.host_id}")
        host.attach_link(up)
        switch.connect(port_id, down)
        switch.routing.add_host_route(host.host_id, port_id)

    def connect_switches(self, a: SwitchNode, port_a: int, b: SwitchNode, port_b: int,
                         delay: float) -> None:
        """Create a bidirectional switch-to-switch link pair."""
        a_to_b = Link(self.sim, b, delay, name=f"{a.name}->{b.name}")
        b_to_a = Link(self.sim, a, delay, name=f"{b.name}->{a.name}")
        a.connect(port_a, a_to_b)
        b.connect(port_b, b_to_a)

    # ------------------------------------------------------------------
    # Workload injection
    # ------------------------------------------------------------------
    def set_transport_config(self, config: TransportConfig) -> None:
        self._transport_config = config

    @property
    def transport_config(self) -> TransportConfig:
        return self._transport_config

    def inject_flows(self, flows: Iterable[FlowSpec], transport: str = "dctcp",
                     transport_config: Optional[TransportConfig] = None) -> None:
        """Register flows: each starts (sender + receiver) at its start time."""
        config = transport_config or self._transport_config
        sender_cls = make_transport(transport)
        for spec in flows:
            if spec.src not in self.hosts or spec.dst not in self.hosts:
                raise ValueError(
                    f"flow {spec.flow_id} references unknown hosts "
                    f"{spec.src}->{spec.dst}"
                )
            self.injected_flows.append(spec)
            self.flow_stats.register_flow(
                FlowRecord(
                    flow_id=spec.flow_id,
                    src=spec.src,
                    dst=spec.dst,
                    size_bytes=spec.size_bytes,
                    start_time=spec.start_time,
                    query_id=spec.query_id,
                    priority=spec.priority,
                )
            )
            self.sim.at(
                spec.start_time,
                lambda s=spec, cls=sender_cls, cfg=config: self._start_flow(s, cls, cfg),
            )

    def _start_flow(self, spec: FlowSpec, sender_cls, config: TransportConfig) -> None:
        src_host = self.hosts[spec.src]
        dst_host = self.hosts[spec.dst]
        receiver = ReceiverState(spec, config, on_complete=self._flow_completed)
        dst_host.add_receiver(receiver)
        sender = sender_cls(src_host, spec, config)
        src_host.add_sender(sender)
        sender.start()

    def _flow_completed(self, flow_id: int, now: float) -> None:
        self.flow_stats.flow_finished(flow_id, now)

    # ------------------------------------------------------------------
    # Execution and reporting
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation until ``until`` (or until the event queue drains)."""
        return self.sim.run(until=until, max_events=max_events)

    def total_switch_drops(self) -> int:
        return sum(node.stats.total_lost_packets for node in self.switch_nodes.values())

    def total_timeouts(self) -> int:
        count = 0
        for host in self.hosts.values():
            for sender in host.senders.values():
                count += sender.timeouts
        return count

    def switch(self, name: str) -> SwitchNode:
        return self.switch_nodes[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switch_nodes)} "
            f"flows={len(self.injected_flows)}>"
        )
