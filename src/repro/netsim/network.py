"""The network: hosts, switch nodes, links, workload injection and metrics.

Besides wiring, :class:`Network` is the home of the *fabric model*: every
link pair created through :meth:`connect_host_to_switch` /
:meth:`connect_switches` is registered by endpoint names (``h3``,
``leaf0``, ``agg0_1``, ...), so failures and degradations can be injected
declaratively after construction:

* :meth:`fail_link` marks both directions of a link as failed, removes the
  affected uplinks from ECMP, and prunes every routing table so no candidate
  path crosses the failed link (a generic reachability pass, not
  topology-specific rules);
* :meth:`degrade_link` scales a link pair's capacity, retunes the sender-side
  serializers (egress port / host NIC), and reweights ECMP so flows spread
  proportionally to surviving capacity;
* :meth:`refresh_ecmp_weights` derives every uplink's ECMP weight from its
  link's effective rate (capacity-weighted multipath).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.metrics.flows import FlowRecord, FlowStats
from repro.netsim.host import Host
from repro.netsim.link import Link, LinkSpec
from repro.netsim.switch_node import SwitchNode
from repro.netsim.transport.base import ReceiverState, TransportConfig
from repro.netsim.transport.factory import make_transport
from repro.sim.engine import Simulator
from repro.workloads.spec import FlowSpec

#: A link endpoint pair by node names, e.g. ``("agg0_0", "core1")``.
Endpoints = Tuple[str, str]


def host_node_name(host_id: int) -> str:
    """The fabric-model name of a host endpoint (``h<id>``)."""
    return f"h{host_id}"


@dataclass
class FabricLink:
    """One *direction* of a registered link: the wire plus its sender side.

    Attributes:
        link: the unidirectional :class:`Link`.
        src_name / dst_name: endpoint names (hosts are ``h<id>``).
        src: the sending object -- a :class:`Host` or :class:`SwitchNode`.
        src_port: the sender's egress port id (``None`` for hosts).
    """

    link: Link
    src_name: str
    dst_name: str
    src: object
    src_port: Optional[int]


class Network:
    """A complete simulated network.

    Typical usage (usually via the :mod:`repro.topology` builders)::

        sim = Simulator()
        net = Network(sim, bottleneck_bps=10e9, base_rtt=40e-6)
        h0 = net.add_host(0, nic_rate_bps=10e9)
        ...
        net.inject_flows(flows, transport="dctcp")
        net.run(until=0.1)
        print(net.flow_stats.average_qct())
    """

    def __init__(self, sim: Simulator, bottleneck_bps: float, base_rtt: float) -> None:
        if not bottleneck_bps > 0:
            raise ValueError(
                f"bottleneck_bps must be positive, got {bottleneck_bps!r}")
        if base_rtt < 0:
            raise ValueError(f"base_rtt cannot be negative, got {base_rtt!r}")
        self.sim = sim
        self.hosts: Dict[int, Host] = {}
        self.switch_nodes: Dict[str, SwitchNode] = {}
        self.flow_stats = FlowStats(bottleneck_bps=bottleneck_bps, base_rtt=base_rtt)
        self._transport_config = TransportConfig()
        #: Flow specs injected so far, for introspection and experiments.
        self.injected_flows: List[FlowSpec] = []
        #: Every link direction keyed by (src_name, dst_name).
        self.links: Dict[Endpoints, FabricLink] = {}
        #: Failed link pairs, in injection order (diagnostics, result docs).
        self.failed_links: List[Endpoints] = []

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_host(self, host_id: int, nic_rate_bps: float) -> Host:
        if host_id in self.hosts:
            raise ValueError(f"host {host_id} already exists")
        if not nic_rate_bps > 0:
            raise ValueError(
                f"host {host_id}: nic_rate_bps must be positive, "
                f"got {nic_rate_bps!r}")
        host = Host(host_id, self.sim, nic_rate_bps)
        self.hosts[host_id] = host
        return host

    def add_switch(self, node: SwitchNode) -> SwitchNode:
        if node.name in self.switch_nodes:
            raise ValueError(f"switch {node.name} already exists")
        self.switch_nodes[node.name] = node
        return node

    def _register_link(self, link: Link, src_name: str, dst_name: str,
                       src: object, src_port: Optional[int]) -> None:
        key = (src_name, dst_name)
        if key in self.links:
            raise ValueError(f"link {src_name}->{dst_name} already exists")
        self.links[key] = FabricLink(link=link, src_name=src_name,
                                     dst_name=dst_name, src=src,
                                     src_port=src_port)

    @staticmethod
    def _link_spec(delay: Optional[float], spec: Optional[LinkSpec],
                   where: str) -> LinkSpec:
        """Resolve the ``delay`` / ``spec`` pair of the connect helpers.

        Exactly one of the two may be given: a bare ``delay`` builds a
        legacy rate-less link, a ``spec`` carries the full identity.  Both
        at once is rejected -- silently preferring one would drop the other.
        """
        if spec is not None:
            if delay is not None:
                raise ValueError(
                    f"{where}: pass either delay= or spec= (the spec "
                    "carries its own delay), not both")
            return spec
        return LinkSpec(delay=delay if delay is not None else 0.0)

    def connect_host_to_switch(self, host: Host, switch: SwitchNode, port_id: int,
                               delay: Optional[float] = None,
                               spec: Optional[LinkSpec] = None) -> None:
        """Create the host<->switch link pair and register the direct route.

        ``spec`` gives the pair a rate identity (both directions share it);
        without one, the legacy model applies: the link only adds ``delay``
        and serialization happens at the sender's configured rate.
        """
        spec = self._link_spec(delay, spec, "connect_host_to_switch")
        hname = host_node_name(host.host_id)
        up = Link.from_spec(self.sim, switch, spec,
                            name=f"{hname}->{switch.name}")
        down = Link.from_spec(self.sim, host, spec,
                              name=f"{switch.name}->{hname}")
        host.attach_link(up)
        switch.connect(port_id, down)
        switch.routing.add_host_route(host.host_id, port_id)
        self._register_link(up, hname, switch.name, host, None)
        self._register_link(down, switch.name, hname, switch, port_id)

    def connect_switches(self, a: SwitchNode, port_a: int, b: SwitchNode, port_b: int,
                         delay: Optional[float] = None,
                         spec: Optional[LinkSpec] = None) -> None:
        """Create a bidirectional switch-to-switch link pair."""
        spec = self._link_spec(delay, spec, "connect_switches")
        a_to_b = Link.from_spec(self.sim, b, spec, name=f"{a.name}->{b.name}")
        b_to_a = Link.from_spec(self.sim, a, spec, name=f"{b.name}->{a.name}")
        a.connect(port_a, a_to_b)
        b.connect(port_b, b_to_a)
        self._register_link(a_to_b, a.name, b.name, a, port_a)
        self._register_link(b_to_a, b.name, a.name, b, port_b)

    def assign_event_priorities(self) -> None:
        """Give every link's arrival events a stable same-timestamp priority.

        Priorities are assigned from the *sorted* ``(src, dst)`` link list,
        so they depend only on the fabric's shape -- any process that builds
        the same topology derives the same priorities.  With them in place,
        two packets arriving anywhere in the fabric at the same instant are
        ordered by which wire they came in on rather than by when their
        arrival events happened to be scheduled; that keeps equal-timestamp
        ordering locally computable, which is what lets the sharded engine
        (:mod:`repro.sim.shard`) interleave cross-shard arrivals
        byte-identically to the single-process oracle.  Called once per
        scenario by the topology builder seam (``make_topology``); networks
        built directly keep the plain FIFO tie-break (priority 0).
        """
        for index, (_key, fabric) in enumerate(sorted(self.links.items())):
            fabric.link.event_priority = index + 1

    # ------------------------------------------------------------------
    # Fabric model: failures, degradation, capacity-weighted ECMP
    # ------------------------------------------------------------------
    def _link_pair(self, a: str, b: str) -> Tuple[FabricLink, FabricLink]:
        """Both directions of the link between named endpoints ``a`` and ``b``."""
        forward = self.links.get((a, b))
        backward = self.links.get((b, a))
        if forward is None or backward is None:
            known = sorted({name for pair in self.links for name in pair})
            raise ValueError(
                f"no link between {a!r} and {b!r}; known endpoints: "
                + ", ".join(known))
        return forward, backward

    def link_pair(self, a: str, b: str) -> Tuple[FabricLink, FabricLink]:
        """Public endpoint resolution (validation tooling); raises unknowns."""
        return self._link_pair(a, b)

    def check_fabric_event(self, event: Mapping[str, object]) -> None:
        """Statically resolve one fabric-timeline event against this network.

        Catches at setup time what would otherwise fail mid-simulation:
        unknown endpoint names, failing a host link (partition), and
        degrading a link without a rate identity.  Event *sequencing*
        (repair-before-fail, sorted timestamps) is already enforced by
        :meth:`~repro.scenario.spec.FabricSpec.validate`.
        """
        a, b = event["link"]
        forward, backward = self._link_pair(a, b)
        if event["action"] == "fail":
            if isinstance(forward.src, Host) or isinstance(backward.src, Host):
                raise ValueError(
                    f"fabric.events cannot fail host link {a!r}<->{b!r}: it "
                    "would partition the host (degrade it instead)")
        elif event["action"] == "degrade":
            if forward.link.rate_bps is None:
                raise ValueError(
                    f"fabric.events cannot degrade {a!r}<->{b!r}: the link "
                    "has no rate identity (build the topology with per-link "
                    "rates)")

    def fail_link(self, a: str, b: str, prune: bool = True) -> None:
        """Fail both directions of the ``a <-> b`` link.

        Host links cannot be failed (that would partition the host -- reject
        loudly instead of blackholing its traffic).  After marking the pair,
        the affected uplinks leave every ECMP candidate set and, unless
        ``prune`` is False (batch injection), routing tables are re-pruned so
        no surviving candidate path crosses a failed link.
        """
        forward, backward = self._link_pair(a, b)
        if isinstance(forward.src, Host) or isinstance(backward.src, Host):
            raise ValueError(
                f"cannot fail host link {a!r}<->{b!r}: it would partition "
                "the host (degrade it instead)")
        for direction in (forward, backward):
            direction.link.set_failed()
            node = direction.src
            if isinstance(node, SwitchNode) and direction.src_port is not None:
                if direction.src_port in node.routing.uplinks:
                    node.routing.disable_uplink(direction.src_port)
        self.failed_links.append((a, b))
        if prune:
            self.prune_failed_routes()

    def repair_link(self, a: str, b: str) -> None:
        """Repair a previously failed ``a <-> b`` link pair (mid-run safe).

        Both directions restore their healthy ``transmit`` (the
        ``Link.set_failed(False)`` method-swap restore), the affected
        uplinks rejoin every ECMP candidate set, and routing health is
        recomputed from scratch: per-destination exclusions encode
        reachability under the *old* failure set, so they are cleared on
        every table and re-derived against the remaining failures.  Flows
        hashed onto the restored members start carrying traffic on the next
        packet (the ECMP memo was invalidated with the membership change).
        """
        for key in ((a, b), (b, a)):
            if key in self.failed_links:
                self.failed_links.remove(key)
                break
        else:
            raise ValueError(
                f"link {a!r}<->{b!r} is not failed (failed links: "
                f"{self.failed_links!r}); repair only follows fail")
        forward, backward = self._link_pair(a, b)
        for direction in (forward, backward):
            direction.link.set_failed(False)
            node = direction.src
            if isinstance(node, SwitchNode) and direction.src_port is not None:
                if direction.src_port in node.routing.uplinks:
                    node.routing.enable_uplink(direction.src_port)
        for node in self.switch_nodes.values():
            node.routing.clear_exclusions()
        self.prune_failed_routes()

    def degrade_link(self, a: str, b: str, factor: float) -> None:
        """Scale both directions of the ``a <-> b`` link to ``factor`` capacity.

        Retunes the sender-side serializers (egress port or host NIC) and the
        ECMP weight of any uplink feeding the degraded pair, so flows spread
        proportionally to the surviving capacity.
        """
        if not 0 < factor <= 1:
            raise ValueError(
                f"degradation factor must be in (0, 1], got {factor!r}")
        forward, backward = self._link_pair(a, b)
        for direction in (forward, backward):
            link = direction.link
            if link.rate_bps is None:
                raise ValueError(
                    f"link {direction.src_name}->{direction.dst_name} has no "
                    "rate identity; build the topology with per-link rates "
                    "(LinkSpec) before degrading links")
            link.degraded_factor *= factor
            effective = link.effective_rate_bps
            node = direction.src
            if isinstance(node, SwitchNode):
                assert direction.src_port is not None
                node.switch.set_port_rate(direction.src_port, effective)
                if direction.src_port in node.routing.uplinks:
                    node.routing.set_uplink_weight(direction.src_port, effective)
            elif isinstance(node, Host):
                node.nic_rate_bps = effective

    def refresh_ecmp_weights(self) -> None:
        """Weight every ECMP uplink by its link's effective rate.

        With symmetric rates every weight is equal and member selection is
        byte-identical to unweighted ECMP; with per-tier or degraded rates,
        flows spread proportionally to capacity (WCMP).
        """
        for node in self.switch_nodes.values():
            for port_id in node.routing.uplinks:
                link = node.link_for(port_id)
                if link is None:
                    continue
                rate = link.effective_rate_bps
                if rate is not None:
                    node.routing.set_uplink_weight(port_id, rate)

    def apply_fabric(self, failures: Optional[Iterable[Sequence[str]]] = None,
                     degraded: Optional[Iterable[Sequence[object]]] = None) -> None:
        """Inject a batch of link failures and degradations.

        ``failures`` is an iterable of ``(a, b)`` endpoint-name pairs;
        ``degraded`` of ``(a, b, factor)`` triples.  Degradations apply
        first (they reweight ECMP), then failures, then one routing prune
        pass covering all of them.
        """
        for entry in degraded or []:
            if len(entry) != 3:
                raise ValueError(
                    f"degraded entry must be [src, dst, factor], got {entry!r}")
            a, b, factor = entry
            self.degrade_link(str(a), str(b), float(factor))
        failure_list = list(failures or [])
        for entry in failure_list:
            if len(entry) != 2:
                raise ValueError(
                    f"failure entry must be [src, dst], got {entry!r}")
            a, b = entry
            self.fail_link(str(a), str(b), prune=False)
        if failure_list:
            self.prune_failed_routes()

    # -- failure-aware route pruning -----------------------------------
    def _viability(self, dst: int) -> Dict[str, bool]:
        """Which switches can still deliver to host ``dst``.

        A least fixed point over the candidate graph: a switch is viable
        iff some candidate port crosses a healthy link to the destination
        host or to a viable switch.  Monotone (viability only ever flips
        False -> True) so the iteration provably terminates, and -- unlike
        a memoized DFS with a cycle cut-off -- it is correct on cyclic
        candidate graphs too.  Exclusions already registered only remove
        dead branches, so they cannot change the result.
        """
        viable: Dict[str, bool] = {}
        changed = True
        while changed:
            changed = False
            for name, node in self.switch_nodes.items():
                if viable.get(name):
                    continue
                try:
                    candidates = node.routing.candidate_ports(dst)
                except LookupError:
                    continue  # every member already failed/excluded
                for port in candidates:
                    link = node.link_for(port)
                    if link is None or link.failed:
                        continue
                    nxt = link.dst_node
                    if not hasattr(nxt, "routing"):
                        ok = getattr(nxt, "host_id", None) == dst
                    else:
                        ok = viable.get(nxt.name, False)
                    if ok:
                        viable[name] = True
                        changed = True
                        break
        return viable

    def prune_failed_routes(self) -> None:
        """Remove every routing candidate whose subtree crosses a failed link.

        A generic reachability pass over the fabric: for every (switch,
        destination host) pair, an uplink stays a candidate only if the node
        behind it can still reach the destination without traversing a
        failed link.  Works for any topology built through the connect
        helpers (including cyclic candidate graphs); raises ``ValueError``
        if a destination becomes unreachable from some host's access switch
        (the failure partitions the fabric).
        """
        if not self.failed_links:
            return
        for dst in self.hosts:
            viable = self._viability(dst)
            for node in self.switch_nodes.values():
                routing = node.routing
                uplinks = set(routing.uplinks) - set(routing.disabled_uplinks)
                if not uplinks:
                    continue
                try:
                    candidates = routing.candidate_ports(dst)
                except LookupError:
                    continue  # already fully pruned; upstream handles it
                for port in candidates:
                    if port not in uplinks:
                        continue  # host routes are pruned via upstream
                    link = node.link_for(port)
                    if link is None:
                        continue
                    nxt = link.dst_node
                    dead = link.failed or (
                        hasattr(nxt, "routing")
                        and not viable.get(nxt.name, False))
                    if dead:
                        routing.exclude_uplink_for(port, dst)
            # Every host must still be reachable from every *other* host's
            # access switch; otherwise the failure partitions the fabric.
            # (Re-derived after pruning: exclusions only removed dead
            # branches, so the map is unchanged and can be reused.)
            for src, src_host in self.hosts.items():
                if src == dst or src_host.link is None:
                    continue
                access = src_host.link.dst_node
                if not hasattr(access, "routing"):
                    continue
                if not viable.get(access.name, False):
                    raise ValueError(
                        f"link failures {self.failed_links} disconnect host "
                        f"{dst} from {access.name}; a fabric must stay "
                        "connected (fail fewer links)")

    # ------------------------------------------------------------------
    # Workload injection
    # ------------------------------------------------------------------
    def set_transport_config(self, config: TransportConfig) -> None:
        self._transport_config = config

    @property
    def transport_config(self) -> TransportConfig:
        return self._transport_config

    def inject_flows(self, flows: Iterable[FlowSpec], transport: str = "dctcp",
                     transport_config: Optional[TransportConfig] = None) -> None:
        """Register flows: each starts (sender + receiver) at its start time."""
        config = transport_config or self._transport_config
        sender_cls = make_transport(transport)
        for spec in flows:
            if spec.src not in self.hosts or spec.dst not in self.hosts:
                raise ValueError(
                    f"flow {spec.flow_id} references unknown hosts "
                    f"{spec.src}->{spec.dst}"
                )
            self.injected_flows.append(spec)
            self.flow_stats.register_flow(
                FlowRecord(
                    flow_id=spec.flow_id,
                    src=spec.src,
                    dst=spec.dst,
                    size_bytes=spec.size_bytes,
                    start_time=spec.start_time,
                    query_id=spec.query_id,
                    priority=spec.priority,
                )
            )
            self.sim.at(
                spec.start_time,
                lambda s=spec, cls=sender_cls, cfg=config: self._start_flow(s, cls, cfg),
            )

    def _start_flow(self, spec: FlowSpec, sender_cls, config: TransportConfig) -> None:
        src_host = self.hosts[spec.src]
        dst_host = self.hosts[spec.dst]
        receiver = ReceiverState(spec, config, on_complete=self._flow_completed,
                                 packet_pool=self.sim.kernel.packet_pool)
        dst_host.add_receiver(receiver)
        sender = sender_cls(src_host, spec, config)
        src_host.add_sender(sender)
        sender.start()

    def _flow_completed(self, flow_id: int, now: float) -> None:
        self.flow_stats.flow_finished(flow_id, now)

    # ------------------------------------------------------------------
    # Execution and reporting
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation until ``until`` (or until the event queue drains)."""
        return self.sim.run(until=until, max_events=max_events)

    def total_switch_drops(self) -> int:
        return sum(node.stats.total_lost_packets for node in self.switch_nodes.values())

    def total_timeouts(self) -> int:
        count = 0
        for host in self.hosts.values():
            for sender in host.senders.values():
                count += sender.timeouts
        return count

    def switch(self, name: str) -> SwitchNode:
        return self.switch_nodes[name]

    def link_between(self, a: Union[str, int], b: Union[str, int]) -> Link:
        """The ``a -> b`` direction of a registered link (names or host ids)."""
        a_name = host_node_name(a) if isinstance(a, int) else a
        b_name = host_node_name(b) if isinstance(b, int) else b
        record = self.links.get((a_name, b_name))
        if record is None:
            raise KeyError(f"no link {a_name}->{b_name}")
        return record.link

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switch_nodes)} "
            f"flows={len(self.injected_flows)}>"
        )
