"""Routing tables for switch nodes, including ECMP over uplinks."""

from __future__ import annotations

from typing import Dict, List

from repro.switchsim.packet import Packet


def _mix(a: int, b: int, c: int) -> int:
    """A small deterministic integer hash (stable across runs/processes)."""
    h = (a * 0x9E3779B1) ^ (b * 0x85EBCA77) ^ (c * 0xC2B2AE3D)
    h ^= h >> 13
    h *= 0x27D4EB2F
    h &= 0xFFFFFFFF
    h ^= h >> 16
    return h


class EcmpRoutingTable:
    """Destination-host routing with ECMP spreading over uplink ports.

    Routes are looked up in two steps: an exact per-destination-host entry
    (downlinks / locally attached hosts), falling back to an ECMP hash over
    the registered uplink ports.  The hash covers (src, dst, flow id) so all
    packets of one flow take the same path -- no reordering due to routing.
    """

    def __init__(self) -> None:
        self._host_routes: Dict[int, int] = {}
        self._uplinks: List[int] = []
        #: Memoized ECMP picks keyed by (src, dst, flow_id).  The hash is a
        #: pure function of that key and the uplink list, so per-flow lookups
        #: replace recomputing the mix for every packet; any topology change
        #: invalidates the cache.
        self._ecmp_cache: Dict[tuple, int] = {}

    def add_host_route(self, dst_host: int, port_id: int) -> None:
        """Send traffic for ``dst_host`` out of ``port_id``."""
        self._host_routes[dst_host] = port_id
        self._ecmp_cache.clear()

    def add_uplink(self, port_id: int) -> None:
        """Register an uplink port participating in ECMP."""
        if port_id not in self._uplinks:
            self._uplinks.append(port_id)
            self._ecmp_cache.clear()

    def add_uplinks(self, port_ids) -> None:
        for port_id in port_ids:
            self.add_uplink(port_id)

    @property
    def uplinks(self) -> List[int]:
        return list(self._uplinks)

    def route(self, packet: Packet) -> int:
        """Return the egress port for ``packet``."""
        port = self._host_routes.get(packet.dst)
        if port is not None:
            return port
        key = (packet.src, packet.dst, packet.flow_id)
        port = self._ecmp_cache.get(key)
        if port is None:
            if not self._uplinks:
                raise LookupError(
                    f"no route for destination host {packet.dst} "
                    "and no uplinks configured"
                )
            index = _mix(packet.src, packet.dst, packet.flow_id) % len(self._uplinks)
            port = self._uplinks[index]
            self._ecmp_cache[key] = port
        return port
